"""secp256k1 elliptic-curve arithmetic, from scratch.

Substrate for the ECVRF backend (:class:`repro.crypto.vrf.ECVRF`) -- the
style of VRF the paper's citations [16, 19] and deployed systems
(Algorand, and RFC 9381's ECVRF) actually use.  Affine arithmetic with
modular inverses: unoptimised but simple to audit, and fast enough for
protocol-scale use (hundreds of operations per run).

Curve: y² = x³ + 7 over F_p, p = 2²⁵⁶ − 2³² − 977, prime group order N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.numtheory import modinv

__all__ = [
    "CURVE_ORDER",
    "FIELD_P",
    "GENERATOR",
    "Point",
    "hash_to_point",
    "point_add",
    "scalar_mult",
]

FIELD_P = 2**256 - 2**32 - 977
CURVE_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_B = 7

_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


@dataclass(frozen=True)
class Point:
    """An affine curve point; ``None`` coordinates encode infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Compressed SEC-style encoding (prefix by y parity)."""
        if self.is_infinity:
            return b"\x00"
        prefix = b"\x03" if self.y & 1 else b"\x02"
        return prefix + self.x.to_bytes(32, "big")


INFINITY = Point(None, None)
GENERATOR = Point(_GX, _GY)


def is_on_curve(point: Point) -> bool:
    """Membership check (infinity counts as on-curve)."""
    if point.is_infinity:
        return True
    if not (0 <= point.x < FIELD_P and 0 <= point.y < FIELD_P):
        return False
    return (point.y * point.y - point.x**3 - _B) % FIELD_P == 0


def point_add(a: Point, b: Point) -> Point:
    """Group addition (affine formulas)."""
    if a.is_infinity:
        return b
    if b.is_infinity:
        return a
    if a.x == b.x and (a.y + b.y) % FIELD_P == 0:
        return INFINITY
    if a == b:
        slope = (3 * a.x * a.x) * modinv(2 * a.y, FIELD_P) % FIELD_P
    else:
        slope = (b.y - a.y) * modinv(b.x - a.x, FIELD_P) % FIELD_P
    x = (slope * slope - a.x - b.x) % FIELD_P
    y = (slope * (a.x - x) - a.y) % FIELD_P
    return Point(x, y)


def scalar_mult(k: int, point: Point) -> Point:
    """Double-and-add scalar multiplication; ``k`` is reduced mod N."""
    k %= CURVE_ORDER
    result = INFINITY
    addend = point
    while k:
        if k & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        k >>= 1
    return result


def _sqrt_mod_p(value: int) -> int | None:
    """Square root modulo the field prime (p ≡ 3 mod 4), or ``None``."""
    candidate = pow(value, (FIELD_P + 1) // 4, FIELD_P)
    if candidate * candidate % FIELD_P == value % FIELD_P:
        return candidate
    return None


def hash_to_point(data: bytes) -> Point:
    """Try-and-increment hash-to-curve (the classic ECVRF H1).

    Deterministic; expected two attempts.  The resulting point's discrete
    log is unknown to everyone, which the VRF's security needs.
    """
    from repro.crypto.hashing import encode, hash_to_int

    counter = 0
    while True:
        x = hash_to_int("ec-h2c", counter, data) % FIELD_P
        y_squared = (x**3 + _B) % FIELD_P
        y = _sqrt_mod_p(y_squared)
        if y is not None:
            # Normalise parity from the hash so the map is deterministic.
            want_odd = hash_to_int("ec-h2c-sign", counter, data, bits=1)
            if (y & 1) != want_odd:
                y = FIELD_P - y
            return Point(x, y)
        counter += 1
