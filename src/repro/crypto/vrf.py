"""Verifiable random functions (VRFs).

The paper (Section 2) assumes a VRF with pseudorandomness, verifiability
and uniqueness.  Two interchangeable backends are provided:

* :class:`RSAFDHVRF` -- the classic RSA-FDH unique-signature VRF
  (Micali-Rabin-Vadhan lineage, RFC 9381's RSA-FDH-VRF shape): the proof is
  the deterministic FDH signature on the input, and the output is a hash of
  that signature.  Uniqueness follows from RSA being a permutation.
* :class:`SimulatedVRF` -- a keyed-hash VRF whose verification goes through
  a registry held by the trusted setup.  It produces the *exact same output
  distribution* and exposes the same API, at a small fraction of the bignum
  cost, so large-n Monte-Carlo sweeps exercise identical protocol paths.
  Unforgeability is enforced by capability discipline: only the key owner
  (and the trusted verifier) can compute the HMAC.

Both satisfy the three properties the protocols consume; DESIGN.md records
the substitution.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import hash_to_int, hmac_sha256
from repro.crypto.rsa import (
    DEFAULT_MODULUS_BITS,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
    rsa_sign,
    rsa_verify,
)

__all__ = [
    "ECVRF",
    "RSAFDHVRF",
    "SimulatedVRF",
    "VRFOutput",
    "VRFScheme",
    "VRF_OUTPUT_BITS",
]

# All VRF outputs are uniform integers in [0, 2**VRF_OUTPUT_BITS).  The
# shared coin compares them as integers and takes the LSB of the minimum.
VRF_OUTPUT_BITS = 256


@dataclass(frozen=True)
class VRFOutput:
    """A VRF evaluation: the pseudorandom value and its correctness proof.

    ``proof`` is hashable in every provided scheme (bytes for the simulated
    VRF, an int for RSA-FDH, a tuple of ints for ECVRF); the PKI's
    verification cache keys on ``(process_id, alpha, value, proof)`` and
    relies on this.  Custom schemes with unhashable proofs still work --
    their verifications just bypass the cache.
    """

    value: int
    proof: Any

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << VRF_OUTPUT_BITS):
            raise ValueError("VRF value out of range")

    def __hash__(self) -> int:
        # Outputs are hashed constantly (verify-cache and validation-memo
        # keys) and the 256-bit value makes each hash non-trivial, so the
        # hash is computed once and cached on the instance.  Same value as
        # the generated ``hash((value, proof))``, so equal outputs still
        # hash equal; unhashable custom proofs still raise TypeError here.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.value, self.proof))
            object.__setattr__(self, "_cached_hash", cached)
        return cached


class VRFScheme(ABC):
    """Abstract VRF: keygen / prove / verify.

    ``prove`` is deterministic in ``(sk, alpha)`` -- this is the uniqueness
    property the shared coin relies on: a Byzantine process cannot choose
    its coin value nor equivocate about it.
    """

    @abstractmethod
    def keygen(self, rng: random.Random) -> tuple[Any, Any]:
        """Generate ``(private_key, public_key)``."""

    @abstractmethod
    def prove(self, private_key: Any, alpha: bytes) -> VRFOutput:
        """Evaluate the VRF on input ``alpha``."""

    @abstractmethod
    def verify(self, public_key: Any, alpha: bytes, output: VRFOutput) -> bool:
        """Check that ``output`` is the unique VRF evaluation for ``alpha``."""


class RSAFDHVRF(VRFScheme):
    """RSA-FDH VRF: proof = FDH signature, value = hash(proof).

    Pseudorandomness reduces to RSA inversion, verifiability is signature
    verification, and uniqueness holds because RSA with a fixed public key
    is a permutation of ``Z_n`` -- there is exactly one valid signature per
    message, hence exactly one value.
    """

    def __init__(self, modulus_bits: int = DEFAULT_MODULUS_BITS) -> None:
        if modulus_bits < 128:
            raise ValueError("modulus too small even for simulation use")
        self.modulus_bits = modulus_bits

    def keygen(self, rng: random.Random) -> tuple[RSAPrivateKey, RSAPublicKey]:
        private = generate_keypair(self.modulus_bits, rng)
        return private, private.public_key()

    def prove(self, private_key: RSAPrivateKey, alpha: bytes) -> VRFOutput:
        signature = rsa_sign(private_key, alpha)
        value = hash_to_int("rsa-fdh-vrf", signature, alpha, bits=VRF_OUTPUT_BITS)
        return VRFOutput(value=value, proof=signature)

    def verify(self, public_key: RSAPublicKey, alpha: bytes, output: VRFOutput) -> bool:
        if not isinstance(output.proof, int):
            return False
        if not rsa_verify(public_key, alpha, output.proof):
            return False
        expected = hash_to_int("rsa-fdh-vrf", output.proof, alpha, bits=VRF_OUTPUT_BITS)
        return expected == output.value


class ECVRF(VRFScheme):
    """Elliptic-curve VRF over secp256k1 (the [16]/[19]/RFC-9381 family).

    * keygen: sk uniform in [1, N); pk = sk·G.
    * prove(alpha): H = hash-to-curve(alpha); Γ = sk·H; output value =
      hash(Γ); proof = a Chaum-Pedersen DLEQ transcript (c, s) showing
      log_G(pk) = log_H(Γ), with the nonce derived deterministically from
      (sk, alpha) so proving is stateless and identical proofs repeat.
    * verify: recompute U = s·G + c·pk, V = s·H + c·Γ and check the
      challenge c = hash(G, H, pk, Γ, U, V).

    Uniqueness is structural: Γ is a function of (sk, H), and the DLEQ
    proof pins Γ to the registered pk, so no second output can verify.
    """

    def keygen(self, rng: random.Random):
        from repro.crypto import ec

        secret = rng.randrange(1, ec.CURVE_ORDER)
        public = ec.scalar_mult(secret, ec.GENERATOR)
        return secret, public

    @staticmethod
    def _challenge(h_point, public_key, gamma, u_point, v_point) -> int:
        from repro.crypto import ec

        return hash_to_int(
            "ecvrf-challenge",
            ec.GENERATOR.encode(),
            h_point.encode(),
            public_key.encode(),
            gamma.encode(),
            u_point.encode(),
            v_point.encode(),
            bits=128,
        )

    def prove(self, private_key: int, alpha: bytes) -> VRFOutput:
        from repro.crypto import ec

        h_point = ec.hash_to_point(alpha)
        gamma = ec.scalar_mult(private_key, h_point)
        public_key = ec.scalar_mult(private_key, ec.GENERATOR)
        # Deterministic nonce (RFC-6979 in spirit): keyed by sk and alpha.
        nonce = (
            hash_to_int("ecvrf-nonce", private_key, alpha, bits=256)
            % (ec.CURVE_ORDER - 1)
            + 1
        )
        u_point = ec.scalar_mult(nonce, ec.GENERATOR)
        v_point = ec.scalar_mult(nonce, h_point)
        challenge = self._challenge(h_point, public_key, gamma, u_point, v_point)
        s = (nonce - challenge * private_key) % ec.CURVE_ORDER
        value = hash_to_int("ecvrf-out", gamma.encode(), bits=VRF_OUTPUT_BITS)
        return VRFOutput(value=value, proof=(gamma.x, gamma.y, challenge, s))

    def verify(self, public_key, alpha: bytes, output: VRFOutput) -> bool:
        from repro.crypto import ec

        proof = output.proof
        if not (isinstance(proof, tuple) and len(proof) == 4):
            return False
        gamma_x, gamma_y, challenge, s = proof
        if not all(isinstance(part, int) for part in proof):
            return False
        gamma = ec.Point(gamma_x, gamma_y)
        if gamma.is_infinity or not ec.is_on_curve(gamma):
            return False
        if not isinstance(public_key, ec.Point) or not ec.is_on_curve(public_key):
            return False
        h_point = ec.hash_to_point(alpha)
        u_point = ec.point_add(
            ec.scalar_mult(s, ec.GENERATOR), ec.scalar_mult(challenge, public_key)
        )
        v_point = ec.point_add(
            ec.scalar_mult(s, h_point), ec.scalar_mult(challenge, gamma)
        )
        if challenge != self._challenge(h_point, public_key, gamma, u_point, v_point):
            return False
        expected = hash_to_int("ecvrf-out", gamma.encode(), bits=VRF_OUTPUT_BITS)
        return expected == output.value


@dataclass(frozen=True)
class _SimulatedVRFPublicKey:
    """Opaque handle naming a key slot in the scheme's trusted registry."""

    key_id: int


@dataclass(frozen=True)
class _SimulatedVRFPrivateKey:
    key_id: int
    secret: bytes


class SimulatedVRF(VRFScheme):
    """Keyed-hash VRF with registry-backed verification.

    ``prove`` computes HMAC(secret, alpha); ``verify`` recomputes it using
    the secret the trusted setup stored for that public key.  Protocol code
    (including Byzantine behaviours) only ever holds its *own* private key,
    so forging another process's output requires guessing a 256-bit HMAC --
    the same infeasibility assumption as the real scheme, enforced
    structurally instead of number-theoretically.
    """

    def __init__(self) -> None:
        self._registry: dict[int, bytes] = {}

    def keygen(self, rng: random.Random) -> tuple[_SimulatedVRFPrivateKey, _SimulatedVRFPublicKey]:
        key_id = len(self._registry)
        secret = rng.getrandbits(256).to_bytes(32, "big")
        self._registry[key_id] = secret
        return (
            _SimulatedVRFPrivateKey(key_id=key_id, secret=secret),
            _SimulatedVRFPublicKey(key_id=key_id),
        )

    def prove(self, private_key: _SimulatedVRFPrivateKey, alpha: bytes) -> VRFOutput:
        digest = hmac_sha256(private_key.secret, alpha)
        value = int.from_bytes(digest, "big")
        return VRFOutput(value=value, proof=digest)

    def verify(
        self, public_key: _SimulatedVRFPublicKey, alpha: bytes, output: VRFOutput
    ) -> bool:
        secret = self._registry.get(public_key.key_id)
        if secret is None:
            return False
        digest = hmac_sha256(secret, alpha)
        return output.proof == digest and output.value == int.from_bytes(digest, "big")
