"""Cryptographic substrate built from scratch for the reproduction.

The paper assumes a trusted PKI and a verifiable random function (VRF).
This package provides:

- :mod:`repro.crypto.hashing` -- canonical encoding and domain-separated
  hashing used by every other module.
- :mod:`repro.crypto.numtheory` -- Miller-Rabin primality, modular
  arithmetic and prime generation.
- :mod:`repro.crypto.rsa` -- textbook RSA key generation and raw
  sign/verify, the basis of the real VRF and signature scheme.
- :mod:`repro.crypto.vrf` -- the VRF abstraction with two backends: a
  genuine RSA-FDH VRF and a fast registry-checked simulated VRF.
- :mod:`repro.crypto.signatures` -- digital signatures with matching
  real/simulated backends (the approver's ``ok`` messages carry them).
- :mod:`repro.crypto.shamir` -- Shamir secret sharing over a prime field.
- :mod:`repro.crypto.threshold` -- a dealer-based threshold common coin
  (substrate for the Rabin and Cachin-style baselines).
- :mod:`repro.crypto.pki` -- the trusted setup that generates and
  registers every process's keys before a run starts.
"""

from repro.crypto.hashing import encode, hash_to_int, sha256, tagged_hash
from repro.crypto.pki import PKI
from repro.crypto.shamir import reconstruct_secret, split_secret
from repro.crypto.signatures import (
    RSASignatureScheme,
    SchnorrSignatureScheme,
    SignatureScheme,
    SimulatedSignatureScheme,
)
from repro.crypto.threshold import ThresholdCoinDealer
from repro.crypto.vrf import (
    ECVRF,
    RSAFDHVRF,
    VRF_OUTPUT_BITS,
    SimulatedVRF,
    VRFOutput,
    VRFScheme,
)

__all__ = [
    "ECVRF",
    "PKI",
    "RSAFDHVRF",
    "RSASignatureScheme",
    "SchnorrSignatureScheme",
    "SignatureScheme",
    "SimulatedSignatureScheme",
    "SimulatedVRF",
    "ThresholdCoinDealer",
    "VRFOutput",
    "VRFScheme",
    "VRF_OUTPUT_BITS",
    "encode",
    "hash_to_int",
    "reconstruct_secret",
    "sha256",
    "split_secret",
    "tagged_hash",
]
