"""Dealer-based threshold common coins.

Two constructions, both used by Table 1 baseline protocols:

* :class:`ThresholdCoinDealer` -- a Cachin-Kursawe-Shoup-style coin: a
  trusted dealer Shamir-shares an exponent ``x`` in a Schnorr group; the
  coin share of process ``i`` for round ``r`` is ``H(r)**x_i`` and any
  ``k`` shares combine, via Lagrange interpolation *in the exponent*, to
  the unique group element ``H(r)**x`` whose hash's low bit is the coin.
  Fewer than ``k`` shares leave the coin unpredictable under CDH.  (CKS
  additionally attach zero-knowledge share-correctness proofs; we verify
  shares through the dealer's registry instead -- see DESIGN.md.)
* :class:`RabinLotteryDealer` -- Rabin's original scheme: the dealer
  pre-distributes Shamir sharings of a sequence of random bits (the
  "lottery tickets"), one sharing per round.

Setup happens once, before the protocol starts, matching the trusted-setup
assumptions of those papers.
"""

from __future__ import annotations

import random

from repro.crypto.hashing import derive_seed, hash_to_int
from repro.crypto.numtheory import modinv
from repro.crypto.shamir import FIELD_PRIME, Share, reconstruct_secret, split_secret

__all__ = [
    "RabinLotteryDealer",
    "ThresholdCoinDealer",
]

# The 768-bit MODP ("Oakley group 1") safe prime from RFC 2409.  P is prime
# and Q = (P - 1) / 2 is prime, so the quadratic residues form a group of
# prime order Q in which we do the threshold exponentiation.
_SCHNORR_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
    16,
)
_SCHNORR_Q = (_SCHNORR_P - 1) // 2


def _hash_to_group(round_id: int) -> int:
    """Map a round id to a generator-independent quadratic residue mod P."""
    raw = hash_to_int("threshold-coin-base", round_id, bits=768) % _SCHNORR_P
    # Squaring lands in the order-Q subgroup; avoid the identity.
    element = raw * raw % _SCHNORR_P
    return element if element != 1 else 4


def _lagrange_at_zero(xs: list[int], modulus: int) -> list[int]:
    """Lagrange coefficients l_i(0) mod ``modulus`` for evaluation points ``xs``."""
    coefficients = []
    for i, x_i in enumerate(xs):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = numerator * (-x_j) % modulus
            denominator = denominator * (x_i - x_j) % modulus
        coefficients.append(numerator * modinv(denominator, modulus) % modulus)
    return coefficients


class ThresholdCoinDealer:
    """Trusted setup for an unbounded-round threshold common coin.

    Parameters
    ----------
    n:
        Number of processes (share holders), identified as ``0 .. n-1``.
    threshold:
        Number of distinct valid shares needed to reconstruct a coin.
    rng:
        Source of randomness for the master secret and the sharing.
    """

    def __init__(self, n: int, threshold: int, rng: random.Random) -> None:
        if not 1 <= threshold <= n:
            raise ValueError("need 1 <= threshold <= n")
        self.n = n
        self.threshold = threshold
        master = rng.randrange(1, _SCHNORR_Q)
        polynomial = [master] + [rng.randrange(_SCHNORR_Q) for _ in range(threshold - 1)]
        self._exponent_shares: list[int] = []
        for i in range(1, n + 1):
            acc = 0
            for coefficient in reversed(polynomial):
                acc = (acc * i + coefficient) % _SCHNORR_Q
            self._exponent_shares.append(acc)

    def coin_share(self, process_id: int, round_id: int) -> int:
        """Process ``process_id``'s share of the round-``round_id`` coin."""
        base = _hash_to_group(round_id)
        return pow(base, self._exponent_shares[process_id], _SCHNORR_P)

    def verify_share(self, process_id: int, round_id: int, share: int) -> bool:
        """Registry-backed share validity check (stands in for CKS's ZK proof)."""
        if not 0 <= process_id < self.n:
            return False
        return share == self.coin_share(process_id, round_id)

    def combine(self, shares: dict[int, int], round_id: int) -> int:
        """Combine ``threshold`` valid shares into the coin bit for the round.

        ``shares`` maps process id -> coin share.  Invalid or excess shares
        raise; the combination is independent of *which* k valid shares are
        used -- the property the baselines' agreement proofs need.
        """
        if len(shares) < self.threshold:
            raise ValueError(
                f"need {self.threshold} shares to reconstruct, got {len(shares)}"
            )
        chosen = sorted(shares.items())[: self.threshold]
        for process_id, share in chosen:
            if not self.verify_share(process_id, round_id, share):
                raise ValueError(f"invalid coin share from process {process_id}")
        xs = [process_id + 1 for process_id, _ in chosen]
        lagrange = _lagrange_at_zero(xs, _SCHNORR_Q)
        sigma = 1
        for (_, share), coefficient in zip(chosen, lagrange):
            sigma = sigma * pow(share, coefficient, _SCHNORR_P) % _SCHNORR_P
        return hash_to_int("threshold-coin-out", round_id, sigma, bits=1)


class RabinLotteryDealer:
    """Rabin's pre-distributed coin: per-round Shamir sharings of random bits.

    Sharings are derived deterministically from the dealer's seed so that
    rounds can be materialised lazily and reproducibly.
    """

    def __init__(self, n: int, threshold: int, rng: random.Random) -> None:
        if not 1 <= threshold <= n:
            raise ValueError("need 1 <= threshold <= n")
        self.n = n
        self.threshold = threshold
        self._seed = rng.getrandbits(128)
        self._rounds: dict[int, tuple[int, list[Share]]] = {}

    def _materialise(self, round_id: int) -> tuple[int, list[Share]]:
        cached = self._rounds.get(round_id)
        if cached is None:
            round_rng = random.Random(derive_seed(self._seed, round_id))
            bit = round_rng.getrandbits(1)
            # Hide the bit inside a random field element of matching parity
            # so shares reveal nothing structurally.
            blind = round_rng.randrange(FIELD_PRIME // 4) * 2 + bit
            shares = split_secret(blind, self.threshold, self.n, round_rng)
            cached = (bit, shares)
            self._rounds[round_id] = cached
        return cached

    def coin_share(self, process_id: int, round_id: int) -> Share:
        """Process ``process_id``'s pre-distributed share for the round."""
        _, shares = self._materialise(round_id)
        return shares[process_id]

    def verify_share(self, process_id: int, round_id: int, share: Share) -> bool:
        if not 0 <= process_id < self.n:
            return False
        return share == self.coin_share(process_id, round_id)

    def combine(self, shares: dict[int, Share], round_id: int) -> int:
        """Reconstruct the round's lottery bit from ``threshold`` valid shares."""
        if len(shares) < self.threshold:
            raise ValueError(
                f"need {self.threshold} shares to reconstruct, got {len(shares)}"
            )
        chosen = sorted(shares.items())[: self.threshold]
        for process_id, share in chosen:
            if not self.verify_share(process_id, round_id, share):
                raise ValueError(f"invalid lottery share from process {process_id}")
        return reconstruct_secret([share for _, share in chosen]) & 1
