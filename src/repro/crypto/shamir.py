"""Shamir secret sharing over a prime field.

Substrate for the dealer-based coins of the Rabin and Cachin-style
baselines (Table 1 rows).  Shares are points on a random degree-(k-1)
polynomial; any k of them reconstruct the secret by Lagrange interpolation
at zero, and fewer than k reveal nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numtheory import modinv

__all__ = [
    "FIELD_PRIME",
    "Share",
    "reconstruct_secret",
    "split_secret",
]

# 2**256 - 189 is the largest 256-bit prime; every 256-bit hash output fits.
FIELD_PRIME = 2**256 - 189


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point ``x`` (1-based) and value ``y``."""

    x: int
    y: int


def _eval_poly(coefficients: list[int], x: int, prime: int) -> int:
    """Horner evaluation of the polynomial mod ``prime``."""
    acc = 0
    for coefficient in reversed(coefficients):
        acc = (acc * x + coefficient) % prime
    return acc


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: random.Random,
    prime: int = FIELD_PRIME,
) -> list[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.
    """
    if not 0 <= secret < prime:
        raise ValueError("secret must lie in the field")
    if not 1 <= threshold <= num_shares:
        raise ValueError("need 1 <= threshold <= num_shares")
    if num_shares >= prime:
        raise ValueError("too many shares for the field")
    coefficients = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    return [Share(x=i, y=_eval_poly(coefficients, i, prime)) for i in range(1, num_shares + 1)]


def reconstruct_secret(shares: list[Share], prime: int = FIELD_PRIME) -> int:
    """Lagrange-interpolate the polynomial at zero from distinct shares.

    The caller must supply at least ``threshold`` *distinct* shares; with
    fewer, the result is an arbitrary field element (information-
    theoretically independent of the secret).
    """
    if not shares:
        raise ValueError("need at least one share")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("shares must have distinct x coordinates")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = numerator * (-share_j.x) % prime
            denominator = denominator * (share_i.x - share_j.x) % prime
        secret = (secret + share_i.y * numerator * modinv(denominator, prime)) % prime
    return secret
