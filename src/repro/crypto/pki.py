"""Trusted public-key infrastructure (paper Section 2).

Keys for all ``n`` processes are generated *before* the protocol begins and
public keys are well known; processes cannot manipulate them.  The PKI
bundles a VRF keypair and a signature keypair per process and hands out
private keys only for the process that owns them (the simulator enforces
this capability discipline even for Byzantine behaviours -- corruption
grants the adversary that process's keys, nothing more).

Verification is memoized.  ``vrf_verify``/``signature_verify`` are pure
functions of ``(process_id, alpha, proof)`` -- the public keys are fixed at
setup and both schemes are deterministic -- so a proof broadcast to ``n``
receivers needs to be checked once, not ``n`` times.  The cache stores
positive *and* negative verdicts (an invalid proof stays invalid), keeps
hit/miss counters that the simulation kernel snapshots into its
:class:`~repro.sim.metrics.MetricsRecorder`, and falls back to direct
verification for exotic unhashable proof objects.  Disable it with
``verify_cache=False`` (or :meth:`PKI.set_verify_cache`) to run the
uncached path, e.g. for the equivalence checks in
``benchmarks/bench_kernel_hotpath.py``.
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.signatures import (
    RSASignatureScheme,
    SchnorrSignatureScheme,
    SignatureScheme,
    SimulatedSignatureScheme,
)
from repro.crypto.vrf import ECVRF, RSAFDHVRF, SimulatedVRF, VRFOutput, VRFScheme

__all__ = ["PKI"]


# Flush-on-overflow bound for the verification caches.  Far above what a
# single BA run produces at simulation scale; the flush keeps a PKI shared
# across thousands of runs from growing without bound, deterministically.
_VERIFY_CACHE_MAX_ENTRIES = 1 << 20

# Sentinel distinguishing "not cached" from a cached ``False`` verdict.
_MISS = object()


class PKI:
    """Per-run trusted setup: VRF and signature keys for ``n`` processes."""

    def __init__(
        self,
        n: int,
        vrf_scheme: VRFScheme,
        signature_scheme: SignatureScheme,
        rng: random.Random,
        verify_cache: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.vrf_scheme = vrf_scheme
        self.signature_scheme = signature_scheme
        self._vrf_private: list[Any] = []
        self._vrf_public: list[Any] = []
        self._sig_private: list[Any] = []
        self._sig_public: list[Any] = []
        self.verify_cache_enabled = verify_cache
        self._vrf_cache: dict[tuple, bool] = {}
        self._sig_cache: dict[tuple, bool] = {}
        # Cross-receiver validation memo for *compound* checks (e.g. the
        # approver's ok-justification: W membership proofs + W signatures
        # validated identically by every receiver).  Protocol code stores
        # ``key -> (verdict, vrf_calls, sig_calls)`` and replays the
        # counter deltas through :meth:`replay_cached` on a hit.  Gated on
        # ``verify_cache_enabled`` by the protocols, cleared with the
        # verify caches; soundness rests on the same purity argument as
        # the per-call caches (fixed keys, deterministic schemes).
        self.shared_validation_memo: dict = {}
        # Monotone counters; the kernel reports per-run deltas of these
        # through MetricsRecorder (see Simulation.run).
        self.vrf_verifications = 0
        self.vrf_cache_hits = 0
        self.sig_verifications = 0
        self.sig_cache_hits = 0
        for _ in range(n):
            vrf_sk, vrf_pk = vrf_scheme.keygen(rng)
            sig_sk, sig_pk = signature_scheme.keygen(rng)
            self._vrf_private.append(vrf_sk)
            self._vrf_public.append(vrf_pk)
            self._sig_private.append(sig_sk)
            self._sig_public.append(sig_pk)

    @classmethod
    def create(
        cls,
        n: int,
        backend: str = "simulated",
        rng: random.Random | None = None,
        modulus_bits: int = 512,
        verify_cache: bool = True,
    ) -> "PKI":
        """Build a PKI with matched VRF/signature backends.

        ``backend`` is ``"simulated"`` (fast keyed-hash, default for
        simulation sweeps), ``"rsa"`` (real RSA-FDH VRF + signatures), or
        ``"ec"`` (real secp256k1 ECVRF + Schnorr signatures -- the VRF
        family the paper's citations and deployed systems use).
        ``verify_cache=False`` disables verification memoization.
        """
        rng = rng or random.Random()
        if backend == "simulated":
            return cls(n, SimulatedVRF(), SimulatedSignatureScheme(), rng,
                       verify_cache=verify_cache)
        if backend == "rsa":
            return cls(n, RSAFDHVRF(modulus_bits), RSASignatureScheme(modulus_bits),
                       rng, verify_cache=verify_cache)
        if backend == "ec":
            return cls(n, ECVRF(), SchnorrSignatureScheme(), rng,
                       verify_cache=verify_cache)
        raise ValueError(f"unknown PKI backend {backend!r}")

    # -- verification cache administration -----------------------------------

    def set_verify_cache(self, enabled: bool) -> None:
        """Switch memoized verification on or off (clears stored verdicts)."""
        self.verify_cache_enabled = enabled
        self.clear_verify_cache()

    def clear_verify_cache(self) -> None:
        self._vrf_cache.clear()
        self._sig_cache.clear()
        self.shared_validation_memo.clear()

    def replay_cached(self, vrf_calls: int, sig_calls: int) -> None:
        """Account for a memoized compound validation's verify calls.

        Replaying the direct path would have made ``vrf_calls`` VRF and
        ``sig_calls`` signature verifications, all answered from the
        per-call caches (the first execution populated them); bump the
        monotone counters exactly as those calls would have.
        """
        self.vrf_verifications += vrf_calls
        self.vrf_cache_hits += vrf_calls
        self.sig_verifications += sig_calls
        self.sig_cache_hits += sig_calls

    def verification_counters(self) -> tuple[int, int, int, int]:
        """``(vrf_calls, vrf_hits, sig_calls, sig_hits)`` since construction."""
        return (
            self.vrf_verifications,
            self.vrf_cache_hits,
            self.sig_verifications,
            self.sig_cache_hits,
        )

    # -- key access ---------------------------------------------------------

    def vrf_private(self, process_id: int) -> Any:
        return self._vrf_private[process_id]

    def vrf_public(self, process_id: int) -> Any:
        return self._vrf_public[process_id]

    def signature_private(self, process_id: int) -> Any:
        return self._sig_private[process_id]

    def signature_public(self, process_id: int) -> Any:
        return self._sig_public[process_id]

    # -- convenience wrappers (public operations) ----------------------------

    def vrf_verify(self, process_id: int, alpha: bytes, output: VRFOutput) -> bool:
        """Verify that ``output`` is process ``process_id``'s VRF value on ``alpha``.

        Memoized on ``(process_id, alpha, value, proof)`` when the cache is
        enabled; soundness rests on verification being a pure function of
        that key (fixed public keys, deterministic schemes).
        """
        if not 0 <= process_id < self.n:
            return False
        self.vrf_verifications += 1
        if self.verify_cache_enabled:
            try:
                key = (process_id, alpha, output.value, output.proof)
                cached = self._vrf_cache.get(key, _MISS)
            except (TypeError, AttributeError):
                # Unhashable or malformed proof object (Byzantine input):
                # verify directly, never cache.
                key = None
                cached = _MISS
            if cached is not _MISS:
                self.vrf_cache_hits += 1
                return cached
            result = self.vrf_scheme.verify(self._vrf_public[process_id], alpha, output)
            if key is not None:
                if len(self._vrf_cache) >= _VERIFY_CACHE_MAX_ENTRIES:
                    self._vrf_cache.clear()
                self._vrf_cache[key] = result
            return result
        return self.vrf_scheme.verify(self._vrf_public[process_id], alpha, output)

    def signature_verify(self, process_id: int, message: bytes, signature: Any) -> bool:
        """Verify process ``process_id``'s signature on ``message``.

        Memoized on ``(process_id, message, signature)`` -- same purity
        argument as :meth:`vrf_verify`.
        """
        if not 0 <= process_id < self.n:
            return False
        self.sig_verifications += 1
        if self.verify_cache_enabled:
            try:
                key = (process_id, message, signature)
                cached = self._sig_cache.get(key, _MISS)
            except TypeError:
                key = None
                cached = _MISS
            if cached is not _MISS:
                self.sig_cache_hits += 1
                return cached
            result = self.signature_scheme.verify(
                self._sig_public[process_id], message, signature
            )
            if key is not None:
                if len(self._sig_cache) >= _VERIFY_CACHE_MAX_ENTRIES:
                    self._sig_cache.clear()
                self._sig_cache[key] = result
            return result
        return self.signature_scheme.verify(
            self._sig_public[process_id], message, signature
        )
