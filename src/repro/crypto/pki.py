"""Trusted public-key infrastructure (paper Section 2).

Keys for all ``n`` processes are generated *before* the protocol begins and
public keys are well known; processes cannot manipulate them.  The PKI
bundles a VRF keypair and a signature keypair per process and hands out
private keys only for the process that owns them (the simulator enforces
this capability discipline even for Byzantine behaviours -- corruption
grants the adversary that process's keys, nothing more).
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.signatures import (
    RSASignatureScheme,
    SchnorrSignatureScheme,
    SignatureScheme,
    SimulatedSignatureScheme,
)
from repro.crypto.vrf import ECVRF, RSAFDHVRF, SimulatedVRF, VRFOutput, VRFScheme

__all__ = ["PKI"]


class PKI:
    """Per-run trusted setup: VRF and signature keys for ``n`` processes."""

    def __init__(
        self,
        n: int,
        vrf_scheme: VRFScheme,
        signature_scheme: SignatureScheme,
        rng: random.Random,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.vrf_scheme = vrf_scheme
        self.signature_scheme = signature_scheme
        self._vrf_private: list[Any] = []
        self._vrf_public: list[Any] = []
        self._sig_private: list[Any] = []
        self._sig_public: list[Any] = []
        for _ in range(n):
            vrf_sk, vrf_pk = vrf_scheme.keygen(rng)
            sig_sk, sig_pk = signature_scheme.keygen(rng)
            self._vrf_private.append(vrf_sk)
            self._vrf_public.append(vrf_pk)
            self._sig_private.append(sig_sk)
            self._sig_public.append(sig_pk)

    @classmethod
    def create(
        cls,
        n: int,
        backend: str = "simulated",
        rng: random.Random | None = None,
        modulus_bits: int = 512,
    ) -> "PKI":
        """Build a PKI with matched VRF/signature backends.

        ``backend`` is ``"simulated"`` (fast keyed-hash, default for
        simulation sweeps), ``"rsa"`` (real RSA-FDH VRF + signatures), or
        ``"ec"`` (real secp256k1 ECVRF + Schnorr signatures -- the VRF
        family the paper's citations and deployed systems use).
        """
        rng = rng or random.Random()
        if backend == "simulated":
            return cls(n, SimulatedVRF(), SimulatedSignatureScheme(), rng)
        if backend == "rsa":
            return cls(n, RSAFDHVRF(modulus_bits), RSASignatureScheme(modulus_bits), rng)
        if backend == "ec":
            return cls(n, ECVRF(), SchnorrSignatureScheme(), rng)
        raise ValueError(f"unknown PKI backend {backend!r}")

    # -- key access ---------------------------------------------------------

    def vrf_private(self, process_id: int) -> Any:
        return self._vrf_private[process_id]

    def vrf_public(self, process_id: int) -> Any:
        return self._vrf_public[process_id]

    def signature_private(self, process_id: int) -> Any:
        return self._sig_private[process_id]

    def signature_public(self, process_id: int) -> Any:
        return self._sig_public[process_id]

    # -- convenience wrappers (public operations) ----------------------------

    def vrf_verify(self, process_id: int, alpha: bytes, output: VRFOutput) -> bool:
        """Verify that ``output`` is process ``process_id``'s VRF value on ``alpha``."""
        if not 0 <= process_id < self.n:
            return False
        return self.vrf_scheme.verify(self._vrf_public[process_id], alpha, output)

    def signature_verify(self, process_id: int, message: bytes, signature: Any) -> bool:
        """Verify process ``process_id``'s signature on ``message``."""
        if not 0 <= process_id < self.n:
            return False
        return self.signature_scheme.verify(
            self._sig_public[process_id], message, signature
        )
