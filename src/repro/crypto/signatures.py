"""Digital signatures with real (RSA-FDH) and simulated (HMAC) backends.

The approver's ``ok`` messages carry W signed ``echo`` messages as a
validity proof (paper Section 6.1); every authenticated channel in the
simulator also rides on these.  The two backends mirror the VRF backends:
identical API, one number-theoretic and one registry-checked.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import hmac_sha256
from repro.crypto.rsa import (
    DEFAULT_MODULUS_BITS,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
    rsa_sign,
    rsa_verify,
)

__all__ = [
    "RSASignatureScheme",
    "SchnorrSignatureScheme",
    "SignatureScheme",
    "SimulatedSignatureScheme",
]


class SignatureScheme(ABC):
    """Abstract signature scheme: keygen / sign / verify."""

    @abstractmethod
    def keygen(self, rng: random.Random) -> tuple[Any, Any]:
        """Generate ``(private_key, public_key)``."""

    @abstractmethod
    def sign(self, private_key: Any, message: bytes) -> Any:
        """Sign ``message``."""

    @abstractmethod
    def verify(self, public_key: Any, message: bytes, signature: Any) -> bool:
        """Verify a signature on ``message``."""


class RSASignatureScheme(SignatureScheme):
    """RSA-FDH signatures (deterministic, existentially unforgeable in ROM)."""

    def __init__(self, modulus_bits: int = DEFAULT_MODULUS_BITS) -> None:
        self.modulus_bits = modulus_bits

    def keygen(self, rng: random.Random) -> tuple[RSAPrivateKey, RSAPublicKey]:
        private = generate_keypair(self.modulus_bits, rng)
        return private, private.public_key()

    def sign(self, private_key: RSAPrivateKey, message: bytes) -> int:
        return rsa_sign(private_key, message)

    def verify(self, public_key: RSAPublicKey, message: bytes, signature: Any) -> bool:
        return isinstance(signature, int) and rsa_verify(public_key, message, signature)


class SchnorrSignatureScheme(SignatureScheme):
    """Schnorr signatures over secp256k1 (pairs with the ECVRF backend).

    Deterministic nonce (derived from the key and message), standard
    Fiat-Shamir transcript: signature (R, s) with e = H(R, pk, m) and
    s·G = R + e·pk.
    """

    def keygen(self, rng: random.Random):
        from repro.crypto import ec

        secret = rng.randrange(1, ec.CURVE_ORDER)
        return secret, ec.scalar_mult(secret, ec.GENERATOR)

    def sign(self, private_key: int, message: bytes):
        from repro.crypto import ec
        from repro.crypto.hashing import hash_to_int

        nonce = (
            hash_to_int("schnorr-nonce", private_key, message, bits=256)
            % (ec.CURVE_ORDER - 1)
            + 1
        )
        r_point = ec.scalar_mult(nonce, ec.GENERATOR)
        public = ec.scalar_mult(private_key, ec.GENERATOR)
        challenge = hash_to_int(
            "schnorr-challenge", r_point.encode(), public.encode(), message, bits=128
        )
        s = (nonce + challenge * private_key) % ec.CURVE_ORDER
        return (r_point.x, r_point.y, s)

    def verify(self, public_key, message: bytes, signature) -> bool:
        from repro.crypto import ec
        from repro.crypto.hashing import hash_to_int

        if not (isinstance(signature, tuple) and len(signature) == 3):
            return False
        r_x, r_y, s = signature
        if not all(isinstance(part, int) for part in signature):
            return False
        r_point = ec.Point(r_x, r_y)
        if r_point.is_infinity or not ec.is_on_curve(r_point):
            return False
        if not isinstance(public_key, ec.Point) or not ec.is_on_curve(public_key):
            return False
        challenge = hash_to_int(
            "schnorr-challenge", r_point.encode(), public_key.encode(), message,
            bits=128,
        )
        left = ec.scalar_mult(s, ec.GENERATOR)
        right = ec.point_add(r_point, ec.scalar_mult(challenge, public_key))
        return left == right


@dataclass(frozen=True)
class _SimulatedSigPublicKey:
    key_id: int


@dataclass(frozen=True)
class _SimulatedSigPrivateKey:
    key_id: int
    secret: bytes


class SimulatedSignatureScheme(SignatureScheme):
    """HMAC 'signatures' verified through the trusted setup's registry.

    Same capability argument as :class:`repro.crypto.vrf.SimulatedVRF`:
    only the key owner can produce the tag, so within the simulation the
    scheme is unforgeable.
    """

    def __init__(self) -> None:
        self._registry: dict[int, bytes] = {}

    def keygen(self, rng: random.Random) -> tuple[_SimulatedSigPrivateKey, _SimulatedSigPublicKey]:
        key_id = len(self._registry)
        secret = rng.getrandbits(256).to_bytes(32, "big")
        self._registry[key_id] = secret
        return (
            _SimulatedSigPrivateKey(key_id=key_id, secret=secret),
            _SimulatedSigPublicKey(key_id=key_id),
        )

    def sign(self, private_key: _SimulatedSigPrivateKey, message: bytes) -> bytes:
        return hmac_sha256(private_key.secret, b"sig/" + message)

    def verify(
        self, public_key: _SimulatedSigPublicKey, message: bytes, signature: Any
    ) -> bool:
        secret = self._registry.get(public_key.key_id)
        if secret is None:
            return False
        return signature == hmac_sha256(secret, b"sig/" + message)
