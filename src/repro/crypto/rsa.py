"""Textbook RSA with full-domain hashing, built on :mod:`repro.crypto.numtheory`.

This is the substrate for the *real* VRF backend (RSA-FDH-VRF, the classic
unique-signature construction) and the real signature scheme.  Key sizes are
deliberately modest -- the reproduction studies protocol behaviour, not
cryptographic strength -- but the construction is the genuine article:
FDH(m) ** d mod N, verified by re-encryption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import encode, sha256
from repro.crypto.numtheory import modinv, random_prime

__all__ = [
    "RSAPrivateKey",
    "RSAPublicKey",
    "full_domain_hash",
    "generate_keypair",
    "rsa_sign",
    "rsa_verify",
]

DEFAULT_MODULUS_BITS = 512
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key; carries the public part for convenience."""

    n: int
    e: int
    d: int
    p: int
    q: int

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)


def generate_keypair(
    bits: int = DEFAULT_MODULUS_BITS, rng: random.Random | None = None
) -> RSAPrivateKey:
    """Generate an RSA keypair with a ``bits``-bit modulus."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = modinv(_PUBLIC_EXPONENT, phi)
        return RSAPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d, p=p, q=q)


def full_domain_hash(message: bytes, n: int) -> int:
    """Hash ``message`` to a uniform element of ``Z_n`` (counter-mode FDH).

    Extends SHA-256 output past the modulus size and rejection-samples so
    the result is statistically uniform over ``[0, n)``.
    """
    target_bytes = (n.bit_length() + 7) // 8 + 8
    counter = 0
    while True:
        out = b""
        block = 0
        while len(out) < target_bytes:
            out += sha256(encode("rsa-fdh", counter, block, message))
            block += 1
        value = int.from_bytes(out[:target_bytes], "big")
        # Rejection sampling: accept only the uniform prefix range.
        limit = (1 << (target_bytes * 8)) // n * n
        if value < limit:
            return value % n
        counter += 1


def rsa_sign(key: RSAPrivateKey, message: bytes) -> int:
    """FDH signature: ``FDH(m) ** d mod n``.  Deterministic and *unique*."""
    return pow(full_domain_hash(message, key.n), key.d, key.n)


def rsa_verify(key: RSAPublicKey, message: bytes, signature: int) -> bool:
    """Verify an FDH signature by re-encryption."""
    if not 0 <= signature < key.n:
        return False
    return pow(signature, key.e, key.n) == full_domain_hash(message, key.n)
