"""Number-theoretic primitives: primality testing and prime generation.

Implemented from scratch (no external crypto dependencies) to support the
RSA-FDH VRF/signatures and the discrete-log group of the threshold coin.
"""

from __future__ import annotations

import random
from typing import Iterable

__all__ = [
    "egcd",
    "is_probable_prime",
    "modinv",
    "next_prime",
    "random_prime",
]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    p
    for p in range(2, 1000)
    if all(p % q for q in range(2, int(p**0.5) + 1))
)

# Deterministic Miller-Rabin witness sets.  Testing against these bases is
# *proven* correct (no false positives) for n below the listed bounds; see
# Sinclair/Jaeschke and the records collected at miller-rabin.appspot.com.
_DETERMINISTIC_BASES: tuple[tuple[int, tuple[int, ...]], ...] = (
    (2_047, (2,)),
    (1_373_653, (2, 3)),
    (9_080_191, (31, 73)),
    (25_326_001, (2, 3, 5)),
    (3_215_031_751, (2, 3, 5, 7)),
    (4_759_123_141, (2, 7, 61)),
    (1_122_004_669_633, (2, 13, 23, 1662803)),
    (2_152_302_898_747, (2, 3, 5, 7, 11)),
    (3_474_749_660_383, (2, 3, 5, 7, 11, 13)),
    (341_550_071_728_321, (2, 3, 5, 7, 11, 13, 17)),
    (3_825_123_056_546_413_051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318_665_857_834_031_151_167_461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises ``ValueError`` if none exists."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def _miller_rabin_witness(n: int, a: int, d: int, s: int) -> bool:
    """Return True iff ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 30, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (provably exact) for ``n < 3.3 * 10**24``; probabilistic
    with error at most ``4**-rounds`` above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    bases: Iterable[int]
    for bound, witnesses in _DETERMINISTIC_BASES:
        if n < bound:
            bases = witnesses
            break
    else:
        rng = rng or random.Random(n & 0xFFFFFFFF)
        bases = (rng.randrange(2, n - 1) for _ in range(rounds))
    return not any(_miller_rabin_witness(n, a, d, s) for a in bases)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Uniform-ish random prime with exactly ``bits`` bits.

    The top two bits are pinned to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, as RSA key generation requires.
    """
    if bits < 4:
        raise ValueError("need at least 4 bits for a prime")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate
