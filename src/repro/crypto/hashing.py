"""Canonical encoding and domain-separated hashing.

Every protocol message, VRF input and committee seed in the reproduction is
hashed through this module so that two semantically different inputs can
never collide byte-wise.  The encoding is an unambiguous, length-prefixed
serialisation of nested tuples of ``int`` / ``str`` / ``bytes`` / ``bool`` /
``None``.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Any

__all__ = [
    "encode",
    "hash_to_int",
    "hmac_sha256",
    "sha256",
    "tagged_hash",
]

# Type tags for the canonical encoding.  One byte each, chosen to be
# mutually distinct so that e.g. the int 5 and the string "5" never encode
# to the same bytes.
_TAG_INT = b"i"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_NONE = b"n"
_TAG_BOOL = b"B"


def _encode_one(value: Any) -> bytes:
    """Encode a single value with a type tag and a length prefix."""
    if value is None:
        return _TAG_NONE + b"\x00" * 4
    if isinstance(value, bool):
        # bool must be checked before int (bool is a subclass of int).
        body = b"\x01" if value else b"\x00"
        return _TAG_BOOL + len(body).to_bytes(4, "big") + body
    if isinstance(value, int):
        # Two's-complement-free signed encoding: sign byte + magnitude.
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        body = sign + magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        return _TAG_INT + len(body).to_bytes(4, "big") + body
    if isinstance(value, str):
        body = value.encode("utf-8")
        return _TAG_STR + len(body).to_bytes(4, "big") + body
    if isinstance(value, (bytes, bytearray)):
        body = bytes(value)
        return _TAG_BYTES + len(body).to_bytes(4, "big") + body
    if isinstance(value, (tuple, list)):
        body = b"".join(_encode_one(item) for item in value)
        return _TAG_TUPLE + len(body).to_bytes(4, "big") + body
    raise TypeError(f"cannot canonically encode value of type {type(value).__name__}")


def encode(*parts: Any) -> bytes:
    """Serialise ``parts`` into unambiguous bytes.

    ``encode(a, b) == encode(c, d)`` implies ``(a, b) == (c, d)`` for all
    supported value types, which is what makes the hash functions below
    safe to use for protocol transcripts.
    """
    return _encode_one(tuple(parts))


def sha256(data: bytes) -> bytes:
    """SHA-256 of raw bytes."""
    return hashlib.sha256(data).digest()


def tagged_hash(tag: str, *parts: Any) -> bytes:
    """Domain-separated hash: SHA-256 over ``tag`` plus canonical parts.

    Distinct tags guarantee that hashes computed for one purpose (say,
    committee seeds) can never be replayed for another (say, coin values).
    """
    return sha256(encode("repro/" + tag, *parts))


def hash_to_int(tag: str, *parts: Any, bits: int = 256) -> int:
    """Hash to a uniform integer in ``[0, 2**bits)``.

    For ``bits > 256`` the digest is extended by counter-mode rehashing so
    the result stays uniform over the full range.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    out = b""
    counter = 0
    while len(out) * 8 < bits:
        out += sha256(encode("repro/int/" + tag, counter, *parts))
        counter += 1
    return int.from_bytes(out, "big") >> (len(out) * 8 - bits)


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256, used by the simulated (fast) VRF and signatures."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def derive_seed(*parts: Any) -> int:
    """Derive a deterministic 64-bit RNG seed from structured parts.

    Used everywhere a sub-RNG is forked from a run seed (per-process
    randomness, per-round dealer sharings) so that runs are reproducible
    and independent streams never collide.
    """
    return hash_to_int("seed", *parts, bits=64)
