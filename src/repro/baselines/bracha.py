"""Bracha's asynchronous Byzantine Agreement [Inf. & Comp. 1987] (Table 1 row 3).

Bracha improved Ben-Or's resilience to the optimal n > 3f by filtering
every vote through *reliable broadcast* (RBC) -- the echo/ready primitive
that prevents equivocation -- at the cost of keeping the local coin and
hence exponential expected time.

RBC per originator: SEND -> everyone ECHOes the first SEND -> READY after
⌈(n+f+1)/2⌉ echoes or f+1 readys (ready amplification) -> deliver after
2f+1 readys.  Ready amplification must stay armed across rounds, so it
lives in a background handler.

BA round structure (three RBC-filtered polls of n-f values each):

1. est <- majority of n-f delivered values;
2. if some value v is held by more than n/2 of the n-f values, mark the
   estimate as a *decision candidate* ``(d, v)``;
3. count decision candidates for the most common v among n-f values:
   2f+1 or more -> decide v;  f+1 or more -> est <- v;  else local coin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = [
    "RBCEchoMsg",
    "RBCReadyMsg",
    "RBCSendMsg",
    "bracha_agreement",
    "reliable_broadcast_all",
]


@dataclass
class RBCSendMsg(Message):
    """The originator's initial broadcast."""

    value: object = None

    def words(self) -> int:
        return 1


@dataclass
class RBCEchoMsg(Message):
    """Echo of origin's value (sent at most once per origin)."""

    origin: int = 0
    value: object = None

    def words(self) -> int:
        return 1


@dataclass
class RBCReadyMsg(Message):
    """Delivery commitment for origin's value."""

    origin: int = 0
    value: object = None

    def words(self) -> int:
        return 1


class _RBCAllState:
    """Reliable-broadcast bookkeeping for all n originators of one step."""

    def __init__(
        self, ctx: ProcessContext, instance: Hashable, params: ProtocolParams, allowed
    ) -> None:
        self.ctx = ctx
        self.instance = instance
        self.allowed = allowed
        self.n, self.f = params.n, params.f
        self.echo_threshold = (self.n + self.f) // 2 + 1  # > (n+f)/2
        self.ready_threshold = 2 * self.f + 1
        self.echoed: set[int] = set()  # origins we already echoed
        self.readied: set[int] = set()  # origins we already sent READY for
        self.echo_senders: dict[tuple, set[int]] = {}
        self.ready_senders: dict[tuple, set[int]] = {}
        self.delivered: dict[int, object] = {}
        self._cursor = 0

    def start(self, value: object) -> None:
        self.ctx.broadcast(RBCSendMsg(self.instance, value=value))
        self.ctx.add_background_handler(self.pump)

    def _maybe_ready(self, origin: int, value: object) -> None:
        if origin in self.readied:
            return
        self.readied.add(origin)
        self.ctx.broadcast(RBCReadyMsg(self.instance, origin=origin, value=value))

    def pump(self, mailbox: Mailbox) -> None:
        stream = mailbox.stream(self.instance)
        while self._cursor < len(stream):
            sender, msg = stream[self._cursor]
            self._cursor += 1
            if isinstance(msg, RBCSendMsg):
                # Echo the first SEND from this originator (equivocation by
                # a Byzantine originator is thereby resolved one way).
                if sender in self.echoed or msg.value not in self.allowed:
                    continue
                self.echoed.add(sender)
                self.ctx.broadcast(
                    RBCEchoMsg(self.instance, origin=sender, value=msg.value)
                )
            elif isinstance(msg, RBCEchoMsg):
                if msg.value not in self.allowed:
                    continue
                key = (msg.origin, msg.value)
                senders = self.echo_senders.setdefault(key, set())
                senders.add(sender)
                if len(senders) >= self.echo_threshold:
                    self._maybe_ready(msg.origin, msg.value)
            elif isinstance(msg, RBCReadyMsg):
                if msg.value not in self.allowed:
                    continue
                key = (msg.origin, msg.value)
                senders = self.ready_senders.setdefault(key, set())
                senders.add(sender)
                # Ready amplification: f+1 readys prove a correct process
                # committed, so join in.
                if len(senders) >= self.f + 1:
                    self._maybe_ready(msg.origin, msg.value)
                if len(senders) >= self.ready_threshold:
                    self.delivered.setdefault(msg.origin, msg.value)


def reliable_broadcast_all(
    ctx: ProcessContext,
    instance: Hashable,
    value: object,
    params: ProtocolParams | None = None,
    allowed=(0, 1),
    quorum: int | None = None,
) -> Protocol:
    """Every process RBCs ``value``; returns ``{origin: value}`` once
    ``quorum`` (default n-f) originators' values have been delivered.

    Usable standalone as an n-instance Bracha-RBC primitive; Byzantine
    originators either deliver one consistent value everywhere or nothing.
    """
    params = params or ctx.params
    quorum = params.quorum if quorum is None else quorum
    state = _RBCAllState(ctx, instance, params, allowed)
    state.start(value)

    def delivered_quorum(mailbox: Mailbox):
        if len(state.delivered) >= quorum:
            return dict(state.delivered)
        return None

    return (yield Wait(delivered_quorum, description=f"rbc{instance}"))


def bracha_agreement(
    ctx: ProcessContext,
    value: int,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
) -> Protocol:
    """Propose binary ``value``; decide through ``ctx.decide`` (w.p. 1).

    Optimal resilience n > 3f; local coin, so exponential expected rounds
    under adversarial scheduling (Table 1).
    """
    if value not in (0, 1):
        raise ValueError("Bracha agreement is binary; propose 0 or 1")
    params = params or ctx.params
    f = params.f
    est: object = value
    round_id = 0
    while max_rounds is None or round_id < max_rounds:
        # Step 1: majority of n-f RBC-delivered estimates.
        step1 = yield from reliable_broadcast_all(
            ctx, ("bracha", round_id, 1), est, params, allowed=(0, 1)
        )
        counts = [sum(1 for v in step1.values() if v == b) for b in (0, 1)]
        est = 0 if counts[0] >= counts[1] else 1

        # Step 2: mark a decision candidate if a strict majority agrees.
        step2 = yield from reliable_broadcast_all(
            ctx, ("bracha", round_id, 2), est, params, allowed=(0, 1)
        )
        for b in (0, 1):
            if sum(1 for v in step2.values() if v == b) > params.n / 2:
                est = ("d", b)

        # Step 3: count decision candidates.
        allowed3 = (0, 1, ("d", 0), ("d", 1))
        step3 = yield from reliable_broadcast_all(
            ctx, ("bracha", round_id, 3), est, params, allowed=allowed3
        )
        decided = None
        boosted = None
        for b in (0, 1):
            candidates = sum(1 for v in step3.values() if v == ("d", b))
            if candidates >= 2 * f + 1:
                decided = b
            if candidates >= f + 1:
                boosted = b
        if decided is not None:
            if not ctx.decided:
                ctx.notes["decision_round"] = round_id
            ctx.decide(decided)
            est = decided
        elif boosted is not None:
            est = boosted
        else:
            est = ctx.rng.getrandbits(1)
        round_id += 1
    return ctx.decision
