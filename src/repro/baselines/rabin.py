"""Rabin's randomized Byzantine Generals [FOCS 1983] (Table 1 row 2).

Rabin's insight was replacing Ben-Or's private coin with a *pre-dealt
common* coin -- a trusted dealer distributes Shamir sharings of a sequence
of random bits ("the lottery") before the run -- collapsing the expected
round count from exponential to constant while keeping O(n²) words per
round.  Rabin stated the protocol for n > 10f; the vote structure we run
is the Ben-Or phase structure (correct for n > 5f ⊃ n > 10f) with the
dealer's lottery as the fallback coin, which preserves the row's three
Table-1 characteristics: resilience bound, O(n²) expected words, and
probability-1 termination in O(1) expected rounds.  DESIGN.md records the
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.baselines.benor import benor_round_structure
from repro.baselines.mmr import CoinProtocol
from repro.core.params import ProtocolParams
from repro.crypto.shamir import Share
from repro.crypto.threshold import RabinLotteryDealer
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["LotteryShareMsg", "make_lottery_coin", "rabin_agreement"]


@dataclass
class LotteryShareMsg(Message):
    """One process's pre-dealt share of the round's lottery bit (one word:
    one field element, the analogue of a signature-sized value)."""

    share: Share = None  # type: ignore[assignment]

    def words(self) -> int:
        return 1


def make_lottery_coin(dealer: RabinLotteryDealer) -> CoinProtocol:
    """A common coin backed by Rabin's pre-distributed lottery shares."""

    def coin(ctx: ProcessContext, round_id: Hashable) -> Protocol:
        instance = ("lottery", round_id)
        ctx.broadcast(
            LotteryShareMsg(instance, share=dealer.coin_share(ctx.pid, round_id))
        )
        shares: dict[int, Share] = {}
        cursor = 0

        def collect(mailbox: Mailbox):
            nonlocal cursor
            stream = mailbox.stream(instance)
            while cursor < len(stream):
                sender, msg = stream[cursor]
                cursor += 1
                if not isinstance(msg, LotteryShareMsg) or sender in shares:
                    continue
                if dealer.verify_share(sender, round_id, msg.share):
                    shares[sender] = msg.share
            if len(shares) >= dealer.threshold:
                return dealer.combine(shares, round_id)
            return None

        return (yield Wait(collect, description=f"lottery{instance}"))

    return coin


def rabin_agreement(
    ctx: ProcessContext,
    value: int,
    dealer: RabinLotteryDealer,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
) -> Protocol:
    """Propose binary ``value``; decide through ``ctx.decide`` (w.p. 1).

    Table-1 operating point: n > 10f, O(n²) words, O(1) expected rounds.
    """
    if value not in (0, 1):
        raise ValueError("Rabin agreement is binary; propose 0 or 1")
    params = params or ctx.params
    coin = make_lottery_coin(dealer)
    est = value
    round_id = 0
    while max_rounds is None or round_id < max_rounds:
        decided, boosted = yield from benor_round_structure(
            ctx, round_id, est, params, namespace="rabin"
        )
        flip = yield from coin(ctx, round_id)
        if decided is not None:
            if not ctx.decided:
                ctx.notes["decision_round"] = round_id
            ctx.decide(decided)
            est = decided
        elif boosted is not None:
            est = boosted
        else:
            est = flip
        round_id += 1
    return ctx.decision
