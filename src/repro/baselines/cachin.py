"""Cachin-Kursawe-Shoup-style Byzantine Agreement (Table 1 row 4).

CKS ("Random oracles in Constantinople", J. Cryptology 2005) were the
first to combine a threshold-cryptography common coin with an O(n²)-word
asynchronous BA at optimal resilience n > 3f.  We reproduce that point in
the design space as *MMR's vote structure + a CKS-style threshold coin*:
the communication pattern (all-to-all votes plus one share exchange per
round), resilience, and word complexity match CKS's ABBA; the vote-rule
details follow MMR, whose correctness argument is simpler and which the
paper itself builds on.  DESIGN.md records this substitution.

The coin: a trusted dealer Shamir-shares an exponent; each round every
process broadcasts its share ``H(r)^{x_i}``; any f+1 valid shares combine
to the same unpredictable bit (see :mod:`repro.crypto.threshold`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.baselines.mmr import CoinProtocol, mmr_agreement
from repro.core.params import ProtocolParams
from repro.crypto.threshold import ThresholdCoinDealer
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["CoinShareMsg", "cachin_agreement", "make_threshold_coin"]


@dataclass
class CoinShareMsg(Message):
    """One process's threshold-coin share for a round (one word: one group
    element, the analogue of a signature share)."""

    share: int = 0

    def words(self) -> int:
        return 1


def make_threshold_coin(dealer: ThresholdCoinDealer) -> CoinProtocol:
    """A common-coin protocol backed by ``dealer``'s threshold setup.

    Each invocation broadcasts the caller's share and waits for
    ``dealer.threshold`` *valid* shares; any such set combines to the same
    bit, so all correct processes output alike with probability 1 -- a
    perfect common coin, which is why CKS terminate in O(1) expected
    rounds with probability 1 rather than whp.
    """

    def coin(ctx: ProcessContext, round_id: Hashable) -> Protocol:
        instance = ("threshold_coin", round_id)
        ctx.broadcast(CoinShareMsg(instance, share=dealer.coin_share(ctx.pid, round_id)))
        shares: dict[int, int] = {}
        cursor = 0

        def collect(mailbox: Mailbox):
            nonlocal cursor
            stream = mailbox.stream(instance)
            while cursor < len(stream):
                sender, msg = stream[cursor]
                cursor += 1
                if not isinstance(msg, CoinShareMsg) or sender in shares:
                    continue
                if dealer.verify_share(sender, round_id, msg.share):
                    shares[sender] = msg.share
            if len(shares) >= dealer.threshold:
                return dealer.combine(shares, round_id)
            return None

        return (yield Wait(collect, description=f"threshold_coin{instance}"))

    return coin


def cachin_agreement(
    ctx: ProcessContext,
    value: int,
    dealer: ThresholdCoinDealer,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
) -> Protocol:
    """CKS-style BA: n > 3f, O(n²) words, O(1) expected rounds."""
    return (
        yield from mmr_agreement(
            ctx, value, coin=make_threshold_coin(dealer), params=params, max_rounds=max_rounds
        )
    )
