"""Baseline asynchronous Byzantine Agreement protocols (paper Table 1).

Every row of the paper's comparison table is implemented against the same
simulator and the same metrics, so the word-complexity and resilience
comparison can be regenerated empirically:

=====================  ==========  =================  =====================
Protocol               Resilience  Coin               Expected complexity
=====================  ==========  =================  =====================
:mod:`benor`           n > 5f      local              O(2^n) words
:mod:`bracha`          n > 3f      local              O(2^n) words
:mod:`rabin`           n > 10f     dealer lottery     O(n²) words
:mod:`cachin`          n > 3f      threshold (CKS)    O(n²) words
:mod:`mmr`             n > 3f      pluggable          O(n²) words
repro.core.agreement   n ≈ 4.5f    WHP coin (VRF)     Õ(n) words
=====================  ==========  =================  =====================

:func:`~repro.baselines.mmr.mmr_agreement` takes the coin as a parameter;
instantiating it with the paper's Algorithm 1 coin yields the O(n²) BA
mentioned at the end of the paper's Section 4 (experiment E7).
"""

from repro.baselines.benor import benor_agreement
from repro.baselines.bracha import bracha_agreement, reliable_broadcast_all
from repro.baselines.cachin import cachin_agreement, make_threshold_coin
from repro.baselines.mmr import local_coin, make_shared_coin, make_whp_coin, mmr_agreement
from repro.baselines.rabin import make_lottery_coin, rabin_agreement

__all__ = [
    "benor_agreement",
    "bracha_agreement",
    "cachin_agreement",
    "local_coin",
    "make_lottery_coin",
    "make_shared_coin",
    "make_threshold_coin",
    "make_whp_coin",
    "mmr_agreement",
    "rabin_agreement",
    "reliable_broadcast_all",
]
