"""Ben-Or's randomized Byzantine Agreement [PODC 1983] (Table 1 row 1).

The original asynchronous BA: resilience n > 5f, a private *local* coin,
probability-1 termination but exponential expected time (constant only for
f = O(√n)).  Round structure:

1. broadcast ``R(r, est)``; wait for n-f reports;
2. if more than (n+f)/2 reports carry the same v, broadcast ``P(r, v)``,
   else broadcast ``P(r, ?)``; wait for n-f proposals;
3. if more than (n+f)/2 proposals carry v -- decide v; if at least f+1
   carry v -- adopt v; otherwise flip the local coin.

The same vote structure is reused by :mod:`repro.baselines.rabin` with the
dealer coin swapped in, which is what collapses the expected round count
to a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["ProposalMsg", "ReportMsg", "benor_agreement", "benor_round_structure"]

# The "?" placeholder of phase-2 proposals (no value was seen often enough).
UNDECIDED = "?"


@dataclass
class ReportMsg(Message):
    """Phase-1 report of the sender's current estimate."""

    value: int = 0

    def words(self) -> int:
        return 1


@dataclass
class ProposalMsg(Message):
    """Phase-2 proposal: a boosted value, or '?' if none qualified."""

    value: object = UNDECIDED

    def words(self) -> int:
        return 1


def _collect_votes(instance: Hashable, quorum: int, kind: type, allowed):
    """A wait-condition collecting ``quorum`` distinct-sender votes."""
    votes: dict[int, object] = {}
    cursor = 0

    def condition(mailbox: Mailbox):
        nonlocal cursor
        stream = mailbox.stream(instance)
        while cursor < len(stream):
            sender, msg = stream[cursor]
            cursor += 1
            if isinstance(msg, kind) and msg.value in allowed and sender not in votes:
                votes[sender] = msg.value
        if len(votes) >= quorum:
            return dict(votes)
        return None

    return condition


def benor_round_structure(
    ctx: ProcessContext,
    round_id: Hashable,
    est: int,
    params: ProtocolParams,
    namespace: str,
) -> Protocol:
    """One Ben-Or round; returns ``(decided_value_or_None, boosted_value_or_None)``.

    Factored out so the Rabin baseline can reuse the exact vote structure
    with a different fallback coin.  ``namespace`` keeps the two
    protocols' instances disjoint.
    """
    n, f, quorum = params.n, params.f, params.quorum
    boost_threshold = (n + f) / 2  # strictly-more-than

    report_instance = (namespace, round_id, "report")
    ctx.broadcast(ReportMsg(report_instance, value=est))
    reports = yield Wait(
        _collect_votes(report_instance, quorum, ReportMsg, (0, 1)),
        description=f"reports{report_instance}",
    )

    proposal: object = UNDECIDED
    for candidate in (0, 1):
        if sum(1 for value in reports.values() if value == candidate) > boost_threshold:
            proposal = candidate
    proposal_instance = (namespace, round_id, "proposal")
    ctx.broadcast(ProposalMsg(proposal_instance, value=proposal))
    proposals = yield Wait(
        _collect_votes(proposal_instance, quorum, ProposalMsg, (0, 1, UNDECIDED)),
        description=f"proposals{proposal_instance}",
    )

    decided = None
    boosted = None
    for candidate in (0, 1):
        count = sum(1 for value in proposals.values() if value == candidate)
        if count > boost_threshold:
            decided = candidate
        if count >= f + 1:
            boosted = candidate
    return decided, boosted


def benor_agreement(
    ctx: ProcessContext,
    value: int,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
) -> Protocol:
    """Propose binary ``value``; decide through ``ctx.decide`` (w.p. 1).

    Requires n > 5f.  Expected rounds O(2^n) in the worst case -- runs at
    scale therefore bound ``max_rounds`` or start from agreeing inputs.
    """
    if value not in (0, 1):
        raise ValueError("Ben-Or agreement is binary; propose 0 or 1")
    params = params or ctx.params
    est = value
    round_id = 0
    while max_rounds is None or round_id < max_rounds:
        decided, boosted = yield from benor_round_structure(
            ctx, round_id, est, params, namespace="benor"
        )
        if decided is not None:
            if not ctx.decided:
                ctx.notes["decision_round"] = round_id
            ctx.decide(decided)
            est = decided
        elif boosted is not None:
            est = boosted
        else:
            est = ctx.rng.getrandbits(1)
        round_id += 1
    return ctx.decision
