"""Mostéfaoui-Moumen-Raynal (MMR) signature-free binary BA [JACM 2015].

The O(n²)-messages, O(1)-expected-time protocol the paper's Algorithm 4 is
modelled on, with the shared coin as a black box.  Structure per round:

1. **BV-broadcast** of the round estimate: broadcast ``BVAL(est)``; relay a
   value received from f+1 distinct senders (at most once per value); a
   value received from 2f+1 distinct senders enters ``bin_values``.
2. Once ``bin_values`` is non-empty, broadcast ``AUX(w)`` for the first
   value that entered; wait for n-f AUX messages whose values all lie in
   (the still-growing) ``bin_values``; call that value set ``vals``.
3. Flip the coin ``c``.  If ``vals == {v}``: adopt v and decide if v == c.
   Otherwise adopt c.

The BV relay rule must stay armed even after a process advances to later
rounds (liveness for laggards depends on it), which is what the simulator's
background handlers exist for.

The coin is pluggable: :func:`local_coin` gives Ben-Or-style exponential
expected time; :func:`make_shared_coin` plugs in the paper's Algorithm 1
(the Section 4 closing remark -- O(n²) words, O(1) expected time,
resilience (1/3 - ε)n); :func:`~repro.baselines.cachin.make_threshold_coin`
gives the Cachin-style instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = [
    "AuxMsg",
    "BValMsg",
    "CoinProtocol",
    "local_coin",
    "make_shared_coin",
    "make_whp_coin",
    "mmr_agreement",
]

# A pluggable coin: (ctx, round_id) -> generator returning a bit.
CoinProtocol = Callable[[ProcessContext, Hashable], Protocol]


@dataclass
class BValMsg(Message):
    """BV-broadcast message: an estimate or its relay."""

    value: int = 0

    def words(self) -> int:
        return 1


@dataclass
class AuxMsg(Message):
    """Second-stage message: one value from the sender's bin_values."""

    value: int = 0

    def words(self) -> int:
        return 1


def local_coin(ctx: ProcessContext, round_id: Hashable) -> Protocol:
    """Ben-Or's local coin: private uniform bit, no communication.

    Gives probability-1 termination but exponential expected time, since
    2^Θ(n) rounds are needed before all correct processes flip alike.
    """
    return ctx.rng.getrandbits(1)
    yield  # pragma: no cover -- makes this function a generator


def make_shared_coin(params: ProtocolParams | None = None) -> CoinProtocol:
    """The paper's Algorithm 1 coin as an MMR plug-in (experiment E7)."""

    def coin(ctx: ProcessContext, round_id: Hashable) -> Protocol:
        return (yield from shared_coin(ctx, ("mmr", round_id), params))

    return coin


def make_whp_coin(params: ProtocolParams | None = None) -> CoinProtocol:
    """The committee-based WHP coin (Algorithm 2) as an MMR plug-in.

    A hybrid the paper does not evaluate but that its components make
    possible: quadratic all-to-all votes with an Õ(n)-word coin.  The
    votes dominate the word count, so this mainly demonstrates that the
    coin abstraction really is black-box; the harness uses it as an
    ablation of where Algorithm 4's savings come from (committees in the
    *vote* phases, not just the coin).
    """
    from repro.core.whp_coin import whp_coin

    def coin(ctx: ProcessContext, round_id: Hashable) -> Protocol:
        return (yield from whp_coin(ctx, ("mmr", round_id), params))

    return coin


class _BVState:
    """One round's BV-broadcast bookkeeping, pumped by a background handler."""

    def __init__(self, ctx: ProcessContext, instance: Hashable, f: int) -> None:
        self.ctx = ctx
        self.instance = instance
        self.f = f
        self.bval_senders: dict[int, set[int]] = {0: set(), 1: set()}
        self.relayed: set[int] = set()
        self.bin_values: set[int] = set()
        self.aux_senders: dict[int, int] = {}
        self._cursor = 0

    def start(self, estimate: int) -> None:
        """Broadcast our estimate and arm the forever-active relay rule."""
        self.relayed.add(estimate)
        self.ctx.broadcast(BValMsg(self.instance, value=estimate))
        self.ctx.add_background_handler(self.pump)

    def pump(self, mailbox: Mailbox) -> None:
        stream = mailbox.stream(self.instance)
        while self._cursor < len(stream):
            sender, msg = stream[self._cursor]
            self._cursor += 1
            if isinstance(msg, BValMsg) and msg.value in (0, 1):
                senders = self.bval_senders[msg.value]
                senders.add(sender)
                if len(senders) > self.f and msg.value not in self.relayed:
                    self.relayed.add(msg.value)
                    self.ctx.broadcast(BValMsg(self.instance, value=msg.value))
                if len(senders) > 2 * self.f:
                    self.bin_values.add(msg.value)
            elif isinstance(msg, AuxMsg) and msg.value in (0, 1):
                self.aux_senders.setdefault(sender, msg.value)

    def valid_aux_count(self) -> int:
        return sum(1 for value in self.aux_senders.values() if value in self.bin_values)

    def aux_values(self) -> set[int]:
        return {value for value in self.aux_senders.values() if value in self.bin_values}


def mmr_agreement(
    ctx: ProcessContext,
    value: int,
    coin: CoinProtocol = local_coin,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
) -> Protocol:
    """Propose binary ``value``; decide through ``ctx.decide`` (w.p. 1).

    Resilience n > 3f; O(n²) messages per round; expected rounds depend on
    the plugged coin (constant for a shared coin with constant success
    rate, exponential for the local coin).
    """
    if value not in (0, 1):
        raise ValueError("MMR agreement is binary; propose 0 or 1")
    params = params or ctx.params
    f = params.f
    quorum = params.quorum
    est = value
    round_id = 0
    while max_rounds is None or round_id < max_rounds:
        instance = ("mmr", round_id)
        bv = _BVState(ctx, instance, f)
        bv.start(est)

        # Wait until bin_values is non-empty, then send AUX for the first
        # value that entered (the background handler keeps pumping).
        def bin_values_nonempty(mailbox: Mailbox, bv: _BVState = bv):
            if bv.bin_values:
                return sorted(bv.bin_values)[0]
            return None

        aux_value = yield Wait(bin_values_nonempty, description=f"mmr-bv{instance}")
        ctx.broadcast(AuxMsg(instance, value=aux_value))

        # Wait for n-f AUX messages whose values are all in bin_values.
        def aux_quorum(mailbox: Mailbox, bv: _BVState = bv):
            if bv.valid_aux_count() >= quorum:
                return frozenset(bv.aux_values())
            return None

        vals = yield Wait(aux_quorum, description=f"mmr-aux{instance}")

        flip = yield from coin(ctx, round_id)

        if len(vals) == 1:
            v = next(iter(vals))
            est = v
            if v == flip:
                if not ctx.decided:
                    ctx.notes["decision_round"] = round_id
                ctx.decide(v)
        else:
            est = flip
        round_id += 1
    return ctx.decision
