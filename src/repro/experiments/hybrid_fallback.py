"""Experiment X1 (extension): the probability-1-termination hybrid.

The paper's conclusion asks which properties can be made probability-1
while staying sub-quadratic.  :mod:`repro.core.hybrid` answers for
termination with a committee-phase / MMR-fallback construction; this
experiment measures the trade-off: as the committee phase gets more
rounds, the fallback rate (and hence the expected quadratic-word cost)
drops geometrically while committee-phase words grow only linearly in
the round count.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.hybrid import hybrid_agreement
from repro.core.params import ProtocolParams
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["HybridPoint", "format_hybrid", "run"]


@dataclass(frozen=True)
class HybridPoint:
    committee_rounds: int
    n: int
    f: int
    trials: int
    terminated: int
    agreement_ok: int
    fallback_runs: int          # runs where >= 1 correct process fell back
    fallback_deciders: int      # processes whose decision came from MMR
    committee_deciders: int
    mean_words: float


def run_point(
    committee_rounds: int, n: int, f: int, params: ProtocolParams, seeds
) -> HybridPoint:
    terminated = agreement_ok = fallback_runs = 0
    fallback_deciders = committee_deciders = 0
    words: list[int] = []
    trials = 0
    for seed in seeds:
        trials += 1
        result = run_protocol(
            n, f,
            lambda ctx: hybrid_agreement(
                ctx, ctx.pid % 2, committee_rounds=committee_rounds
            ),
            corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
        )
        if not (result.live and result.all_correct_decided):
            continue
        terminated += 1
        if result.agreement:
            agreement_ok += 1
        words.append(result.words)
        sources = [
            notes.get("decided_by")
            for pid, notes in result.notes.items()
            if pid in result.decisions
        ]
        fallback_deciders += sum(1 for source in sources if source == "fallback")
        committee_deciders += sum(1 for source in sources if source == "committee")
        if any(notes.get("fallback") for notes in result.notes.values()):
            fallback_runs += 1
    return HybridPoint(
        committee_rounds=committee_rounds,
        n=n,
        f=f,
        trials=trials,
        terminated=terminated,
        agreement_ok=agreement_ok,
        fallback_runs=fallback_runs,
        fallback_deciders=fallback_deciders,
        committee_deciders=committee_deciders,
        mean_words=mean(words) if words else float("nan"),
    )


def run(
    n: int = 60, f: int = 4, committee_round_values=(0, 1, 2, 4), seeds=range(10)
) -> list[HybridPoint]:
    params = ProtocolParams.simulation_scale(n=n, f=f, safety_sigmas=4.0)
    return [
        run_point(rounds, n, f, params, seeds) for rounds in committee_round_values
    ]


def format_hybrid(points: list[HybridPoint]) -> str:
    headers = [
        "committee rounds", "n", "f", "terminated", "agreement",
        "fallback runs", "committee deciders", "fallback deciders", "mean words",
    ]
    rows = [
        [
            point.committee_rounds, point.n, point.f,
            f"{point.terminated}/{point.trials}",
            f"{point.agreement_ok}/{point.terminated}" if point.terminated else "-",
            f"{point.fallback_runs}/{point.terminated}" if point.terminated else "-",
            point.committee_deciders, point.fallback_deciders, point.mean_words,
        ]
        for point in points
    ]
    return format_table(headers, rows)
