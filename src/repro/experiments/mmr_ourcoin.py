"""Experiment E7: MMR instantiated with the paper's Algorithm 1 coin.

The paper's Section 4 closing remark: plugging the VRF shared coin into
MMR yields an asynchronous binary BA with resilience (1/3 − ε)n, O(n²)
words and O(1) expected time.  We compare the three MMR instantiations --
local coin, Algorithm 1 coin, CKS threshold coin -- on rounds-to-decide
and words, at the same n and worst-case split inputs.  The shared-coin
variants must decide in a small constant number of rounds; the local-coin
variant's round count is the one that degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.experiments.parallel import parallel_map
from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["MMRVariantRow", "format_mmr_ourcoin", "run"]

VARIANTS = ("mmr", "mmr+alg1", "cachin")


def _trial(name: str, n: int, seed: int) -> tuple[int, tuple[int, int | None] | None]:
    """One seeded run; top-level so sweep workers can pickle it.

    Returns ``(f_used, (words, max_round) | None)``.
    """
    factory, params, f = make_runner(name, n, seed=seed)
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
    )
    if not (result.live and result.all_correct_decided):
        return f, None
    decision_rounds = [
        notes["decision_round"] + 1
        for notes in result.notes.values()
        if "decision_round" in notes
    ]
    max_round = max(decision_rounds) if decision_rounds else None
    return f, (result.words, max_round)


@dataclass(frozen=True)
class MMRVariantRow:
    variant: str
    n: int
    f: int
    trials: int
    completed: int
    mean_rounds: float
    max_rounds: int
    mean_words: float


def run_variant(
    name: str, n: int, seeds, workers: int | None = None
) -> MMRVariantRow:
    rounds: list[int] = []
    words: list[int] = []
    completed = 0
    outcomes = parallel_map(
        _trial, [(name, n, seed) for seed in seeds], workers=workers
    )
    trials = len(outcomes)
    f_used = outcomes[-1][0] if outcomes else 0
    for _, measured in outcomes:
        if measured is None:
            continue
        completed += 1
        run_words, max_round = measured
        words.append(run_words)
        if max_round is not None:
            rounds.append(max_round)
    return MMRVariantRow(
        variant=name,
        n=n,
        f=f_used,
        trials=trials,
        completed=completed,
        mean_rounds=mean(rounds) if rounds else float("nan"),
        max_rounds=max(rounds) if rounds else 0,
        mean_words=mean(words) if words else float("nan"),
    )


def run(
    n: int = 25, seeds=range(10), variants=VARIANTS, workers: int | None = None
) -> list[MMRVariantRow]:
    return [run_variant(name, n, seeds, workers=workers) for name in variants]


def format_mmr_ourcoin(rows: list[MMRVariantRow]) -> str:
    headers = [
        "variant", "coin", "n", "f", "completed",
        "mean rounds", "max rounds", "mean words",
    ]
    coin_name = {"mmr": "local", "mmr+alg1": "Algorithm 1 (VRF)", "cachin": "CKS threshold"}
    body = [
        [
            row.variant, coin_name[row.variant], row.n, row.f,
            f"{row.completed}/{row.trials}",
            row.mean_rounds, row.max_rounds, row.mean_words,
        ]
        for row in rows
    ]
    return format_table(headers, body)
