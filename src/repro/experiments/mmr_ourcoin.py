"""Experiment E7: MMR instantiated with the paper's Algorithm 1 coin.

The paper's Section 4 closing remark: plugging the VRF shared coin into
MMR yields an asynchronous binary BA with resilience (1/3 − ε)n, O(n²)
words and O(1) expected time.  We compare the three MMR instantiations --
local coin, Algorithm 1 coin, CKS threshold coin -- on rounds-to-decide
and words, at the same n and worst-case split inputs.  The shared-coin
variants must decide in a small constant number of rounds; the local-coin
variant's round count is the one that degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["MMRVariantRow", "format_mmr_ourcoin", "run"]

VARIANTS = ("mmr", "mmr+alg1", "cachin")


@dataclass(frozen=True)
class MMRVariantRow:
    variant: str
    n: int
    f: int
    trials: int
    completed: int
    mean_rounds: float
    max_rounds: int
    mean_words: float


def run_variant(name: str, n: int, seeds) -> MMRVariantRow:
    rounds: list[int] = []
    words: list[int] = []
    completed = 0
    trials = 0
    f_used = 0
    for seed in seeds:
        trials += 1
        factory, params, f = make_runner(name, n, seed=seed)
        f_used = f
        result = run_protocol(
            n, f, factory, corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
        )
        if not (result.live and result.all_correct_decided):
            continue
        completed += 1
        words.append(result.words)
        decision_rounds = [
            notes["decision_round"] + 1
            for notes in result.notes.values()
            if "decision_round" in notes
        ]
        if decision_rounds:
            rounds.append(max(decision_rounds))
    return MMRVariantRow(
        variant=name,
        n=n,
        f=f_used,
        trials=trials,
        completed=completed,
        mean_rounds=mean(rounds) if rounds else float("nan"),
        max_rounds=max(rounds) if rounds else 0,
        mean_words=mean(words) if words else float("nan"),
    )


def run(n: int = 25, seeds=range(10), variants=VARIANTS) -> list[MMRVariantRow]:
    return [run_variant(name, n, seeds) for name in variants]


def format_mmr_ourcoin(rows: list[MMRVariantRow]) -> str:
    headers = [
        "variant", "coin", "n", "f", "completed",
        "mean rounds", "max rounds", "mean words",
    ]
    coin_name = {"mmr": "local", "mmr+alg1": "Algorithm 1 (VRF)", "cachin": "CKS threshold"}
    body = [
        [
            row.variant, coin_name[row.variant], row.n, row.f,
            f"{row.completed}/{row.trials}",
            row.mean_rounds, row.max_rounds, row.mean_words,
        ]
        for row in rows
    ]
    return format_table(headers, body)
