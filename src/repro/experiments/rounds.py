"""Experiment E5: O(1) expected rounds, independent of n (Lemma 6.14).

Runs Algorithm 4 with worst-case split inputs across a sweep of n and
collects the distribution of the deciding round; the mean must stay flat
(bounded by 1/ρ + 1) rather than grow with n.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from statistics import mean

from repro.core.params import ProtocolParams
from repro.experiments.parallel import parallel_map
from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["RoundsPoint", "format_rounds", "run"]


def _trial(protocol: str, n: int, seed: int) -> tuple[int, list[int] | None]:
    """One seeded run; top-level so sweep workers can pickle it.

    Returns ``(f_used, deciding_rounds | None)`` (None = incomplete run).
    """
    factory, params, f = make_runner(protocol, n, seed=seed)
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
    )
    if not (result.live and result.all_correct_decided):
        return f, None
    rounds = [
        notes["decision_round"] + 1
        for notes in result.notes.values()
        if "decision_round" in notes
    ]
    return f, rounds


@dataclass(frozen=True)
class RoundsPoint:
    n: int
    f: int
    trials: int
    completed: int
    mean_rounds: float
    max_rounds: int
    histogram: dict[int, int]  # deciding round (1-based) -> process count


def run_point(
    n: int, seeds, protocol: str = "whp_ba", workers: int | None = None
) -> RoundsPoint:
    histogram: Counter = Counter()
    per_run_max: list[int] = []
    completed = 0
    outcomes = parallel_map(
        _trial, [(protocol, n, seed) for seed in seeds], workers=workers
    )
    trials = len(outcomes)
    f_used = outcomes[-1][0] if outcomes else 0
    for _, rounds in outcomes:
        if rounds is None:
            continue
        completed += 1
        histogram.update(rounds)
        if rounds:
            per_run_max.append(max(rounds))
    return RoundsPoint(
        n=n,
        f=f_used,
        trials=trials,
        completed=completed,
        mean_rounds=mean(per_run_max) if per_run_max else float("nan"),
        max_rounds=max(per_run_max) if per_run_max else 0,
        histogram=dict(sorted(histogram.items())),
    )


def run(
    n_values=(40, 80, 160),
    seeds=range(8),
    protocol: str = "whp_ba",
    workers: int | None = None,
) -> list[RoundsPoint]:
    return [run_point(n, seeds, protocol, workers=workers) for n in n_values]


def format_rounds(points: list[RoundsPoint]) -> str:
    headers = ["n", "f", "completed", "mean deciding round", "max", "histogram"]
    rows = [
        [
            point.n, point.f, f"{point.completed}/{point.trials}",
            point.mean_rounds, point.max_rounds,
            " ".join(f"r{k}:{v}" for k, v in point.histogram.items()),
        ]
        for point in points
    ]
    return format_table(headers, rows)
