"""Experiment E5: O(1) expected rounds, independent of n (Lemma 6.14).

Runs Algorithm 4 with worst-case split inputs across a sweep of n and
collects the distribution of the deciding round; the mean must stay flat
(bounded by 1/ρ + 1) rather than grow with n.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from statistics import mean

from repro.core.params import ProtocolParams
from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["RoundsPoint", "format_rounds", "run"]


@dataclass(frozen=True)
class RoundsPoint:
    n: int
    f: int
    trials: int
    completed: int
    mean_rounds: float
    max_rounds: int
    histogram: dict[int, int]  # deciding round (1-based) -> process count


def run_point(n: int, seeds, protocol: str = "whp_ba") -> RoundsPoint:
    histogram: Counter = Counter()
    per_run_max: list[int] = []
    completed = 0
    trials = 0
    f_used = 0
    for seed in seeds:
        trials += 1
        factory, params, f = make_runner(protocol, n, seed=seed)
        f_used = f
        result = run_protocol(
            n, f, factory, corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
        )
        if not (result.live and result.all_correct_decided):
            continue
        completed += 1
        rounds = [
            notes["decision_round"] + 1
            for notes in result.notes.values()
            if "decision_round" in notes
        ]
        histogram.update(rounds)
        if rounds:
            per_run_max.append(max(rounds))
    return RoundsPoint(
        n=n,
        f=f_used,
        trials=trials,
        completed=completed,
        mean_rounds=mean(per_run_max) if per_run_max else float("nan"),
        max_rounds=max(per_run_max) if per_run_max else 0,
        histogram=dict(sorted(histogram.items())),
    )


def run(n_values=(40, 80, 160), seeds=range(8), protocol: str = "whp_ba") -> list[RoundsPoint]:
    return [run_point(n, seeds, protocol) for n in n_values]


def format_rounds(points: list[RoundsPoint]) -> str:
    headers = ["n", "f", "completed", "mean deciding round", "max", "histogram"]
    rows = [
        [
            point.n, point.f, f"{point.completed}/{point.trials}",
            point.mean_rounds, point.max_rounds,
            " ".join(f"r{k}:{v}" for k, v in point.histogram.items()),
        ]
        for point in points
    ]
    return format_table(headers, rows)
