"""Experiment E1: shared-coin success rate vs ε (Theorem 4.13).

For a sweep of f (hence ε = 1/3 − f/n) we estimate, over seeds, the
probability that *all correct processes output the same bit*, under
content-oblivious random scheduling with silent Byzantine processes, and
print it next to the closed-form lower bound
(18ε² + 24ε − 1)/(6(1+6ε)).  The paper proves the bound for the
worst-case legal adversary; any measured rate must sit above it, and
should approach 1 as ε → 1/3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import shared_coin_success_bound
from repro.analysis.stats import BernoulliEstimate
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.experiments.parallel import parallel_map
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol

__all__ = ["CoinPoint", "format_coin_success", "run"]


@dataclass(frozen=True)
class CoinPoint:
    n: int
    f: int
    epsilon: float
    estimate: BernoulliEstimate
    paper_bound: float  # per-outcome rate rho; agreement >= 2*rho


def _trial(n: int, f: int, seed: int) -> bool:
    """One seeded run; top-level so sweep workers can pickle it."""
    params = ProtocolParams(n=n, f=f)
    result = run_protocol(
        n, f, lambda ctx: shared_coin(ctx, 0),
        corrupt=set(range(f)), params=params, seed=seed,
    )
    return result.live and len(result.returned_values) == 1


def run_point(n: int, f: int, seeds, workers: int | None = None) -> CoinPoint:
    params = ProtocolParams(n=n, f=f)
    outcomes = parallel_map(_trial, [(n, f, seed) for seed in seeds], workers=workers)
    return CoinPoint(
        n=n,
        f=f,
        epsilon=params.epsilon,
        estimate=BernoulliEstimate(successes=sum(outcomes), trials=len(outcomes)),
        paper_bound=shared_coin_success_bound(params.epsilon),
    )


def run(
    n: int = 24,
    f_values=(0, 1, 2, 3, 4, 5, 6, 7),
    seeds=range(40),
    workers: int | None = None,
) -> list[CoinPoint]:
    # Only f < n/3 keeps epsilon in the protocol's domain; silently
    # dropping out-of-range sweep points keeps small-n CLI runs usable.
    return [run_point(n, f, seeds, workers=workers) for f in f_values if f < n / 3]


def format_coin_success(points: list[CoinPoint]) -> str:
    headers = [
        "n", "f", "epsilon", "agreement rate", "95% CI",
        "paper bound (2*rho)", "above bound",
    ]
    rows = []
    for point in points:
        low, high = point.estimate.interval
        bound = max(0.0, 2 * point.paper_bound)
        rows.append([
            point.n, point.f, point.epsilon,
            point.estimate.mean, f"[{low:.3f}, {high:.3f}]",
            bound, "yes" if point.estimate.mean >= bound else "NO",
        ])
    return format_table(headers, rows)
