"""The repro report: record a run's flight data and render it for humans.

Two halves, mirroring the CLI subcommands:

* :func:`record_run` executes one named protocol run with a
  :class:`~repro.sim.flightrecorder.FlightRecorder` attached (and the
  kernel's wall-clock profilers on) and persists the schema-versioned
  JSONL recording.
* :func:`format_report` renders a loaded recording: the per-round
  timeline, the word-complexity breakdown by message kind and protocol
  layer, coin-success and committee-size distributions, kernel phase
  timings and cache counters, and the causal critical path to the
  deepest decision.

Everything renders from the recording alone -- no re-execution -- so a
report is reproducible from the artifact file forever.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.experiments.protocols import PROTOCOLS, make_runner
from repro.experiments.scenarios import (
    describe_scenarios,
    is_scenario,
    make_scenario,
    scenario_adversary,
)
from repro.sim.events import DeliverEvent, SendEvent
from repro.sim.flightrecorder import (
    FlightRecorder,
    Recording,
    critical_path,
    load_recording,
    save_recording,
)
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided
from repro.sim.telemetry import (
    LAYER_OF_KIND as _LAYER_OF_KIND,
    TelemetryProbe,
    load_telemetry,
    save_telemetry,
    telemetry_path_for,
)

__all__ = [
    "format_report",
    "record_run",
    "render_report_file",
    "word_breakdown",
]


def record_run(
    out: str | Path,
    name: str = "whp_ba",
    n: int = 40,
    f: int | None = None,
    seed: int = 0,
    profile: bool = True,
    telemetry: bool = True,
) -> tuple[Path, RunResult]:
    """Run one ``name`` protocol instance, recording its flight data.

    Returns ``(recording_path, result)``.  The run stops when every
    correct process has decided (the BA harness convention).  Unless
    ``telemetry=False``, a :class:`~repro.sim.telemetry.TelemetryProbe`
    rides along and its snapshot lands in the ``.telemetry.json``
    sidecar next to the recording (the dashboard's preferred source).

    ``name`` may also be a :mod:`repro.experiments.scenarios` entry
    (e.g. ``byz_split``, or a rate-suffixed ``lossy_uniform@0.1``): the
    run then faces the scenario's adversary and lossy-link config -- a
    deliberately hostile run whose recording feeds ``python -m repro
    explain``.  Unknown names raise a ``ValueError`` listing the
    protocols and the self-describing scenario zoo.
    """
    recorder = FlightRecorder()
    probe = TelemetryProbe() if telemetry else None
    common = dict(
        seed=seed,
        profile=profile,
        subscribers=[recorder.on_event],
        telemetry=probe,
    )
    if is_scenario(name):
        spec = make_scenario(name, n, f=f, seed=seed)
        name = spec.name  # canonical (rate-suffixed when non-default)
        result = run_protocol(
            n,
            spec.f,
            spec.factory,
            adversary=scenario_adversary(spec, seed),
            params=spec.params,
            stop_condition=spec.stop_condition,
            lossy=spec.lossy,
            **common,
        )
    elif name in PROTOCOLS:
        factory, params, f = make_runner(name, n, f=f, seed=seed)
        result = run_protocol(
            n,
            f,
            factory,
            corrupt=set(range(f)),
            params=params,
            stop_condition=stop_when_all_decided,
            **common,
        )
    else:
        raise ValueError(
            f"unknown protocol or scenario {name!r}\n"
            f"protocols: {', '.join(PROTOCOLS)}\n"
            "scenarios (append @rate to override the hostility rate):\n"
            + describe_scenarios()
        )
    path = save_recording(out, recorder, result, protocol=name)
    if probe is not None:
        save_telemetry(
            telemetry_path_for(path),
            probe,
            header={
                "protocol": name,
                "n": result.n,
                "f": result.f,
                "seed": result.seed,
            },
        )
    return path, result


def word_breakdown(events) -> dict[str, Any]:
    """Word complexity by message kind and by protocol layer.

    Counts correct senders only (the paper's word-complexity convention);
    delivered counts come along for auditability.
    """
    words_by_kind: dict[str, int] = {}
    sent_by_kind: dict[str, int] = {}
    delivered_by_kind: dict[str, int] = {}
    for event in events:
        if type(event) is SendEvent and event.sender_correct:
            words_by_kind[event.message_kind] = (
                words_by_kind.get(event.message_kind, 0) + event.words
            )
            sent_by_kind[event.message_kind] = sent_by_kind.get(event.message_kind, 0) + 1
        elif type(event) is DeliverEvent:
            delivered_by_kind[event.message_kind] = (
                delivered_by_kind.get(event.message_kind, 0) + 1
            )
    words_by_layer: dict[str, int] = {}
    for kind, words in words_by_kind.items():
        layer = _LAYER_OF_KIND.get(kind, "other")
        words_by_layer[layer] = words_by_layer.get(layer, 0) + words
    return {
        "words_by_kind": dict(sorted(words_by_kind.items())),
        "sent_by_kind": dict(sorted(sent_by_kind.items())),
        "delivered_by_kind": dict(sorted(delivered_by_kind.items())),
        "words_by_layer": dict(sorted(words_by_layer.items())),
    }


def _format_histogram(histogram: dict[Any, int], width: int = 30) -> list[str]:
    """Render a value->count map as aligned text bars."""
    if not histogram:
        return ["  (empty)"]
    peak = max(histogram.values())
    lines = []

    def order(key: Any):
        # JSON round-trips turn int keys into strings; sort numerically
        # when the label still parses as a number.
        try:
            return (0, float(key))
        except (TypeError, ValueError):
            return (1, str(key))

    for value in sorted(histogram, key=order):
        count = histogram[value]
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  {value!s:>8} | {bar} {count}")
    return lines


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def format_report(recording: Recording) -> str:
    """Render every report section from one loaded recording."""
    header = recording.header
    summary = recording.summary
    protocol = summary.get("protocol", {})
    metrics = summary.get("metrics", {})
    lines = [
        f"flight recording: schema {header.get('schema')} "
        f"v{header.get('version')}",
        f"run: n={header.get('n')} f={header.get('f')} "
        f"seed={header.get('seed')} corrupted={header.get('corrupted')}",
        f"outcome: deliveries={summary.get('deliveries')} "
        f"duration={summary.get('duration')} words={summary.get('words')} "
        f"live={summary.get('live')} "
        f"all_correct_decided={summary.get('all_correct_decided')}",
    ]

    lines += _section("round timeline")
    rounds = protocol.get("rounds", [])
    if not rounds:
        lines.append("  (no round records)")
    for row in rounds:
        estimates = ", ".join(
            f"{value}x{count}" for value, count in row.get("estimates", {}).items()
        )
        lines.append(
            f"  {row.get('tag')}[{row.get('round')}] "
            f"steps {row.get('first_step')}..{row.get('last_step')} "
            f"processes={len(row.get('pids', []))} "
            f"decided={row.get('decided')} estimates: {estimates}"
        )

    lines += _section("word complexity by kind / layer")
    breakdown = word_breakdown(recording.events)
    for kind, words in breakdown["words_by_kind"].items():
        sent = breakdown["sent_by_kind"].get(kind, 0)
        delivered = breakdown["delivered_by_kind"].get(kind, 0)
        lines.append(
            f"  {kind:>10}: {words:>8} words  "
            f"({sent} sent, {delivered} delivered)"
        )
    for layer, words in breakdown["words_by_layer"].items():
        lines.append(f"  layer {layer:>8}: {words} words")
    lossy = metrics.get("lossy_link", {})
    if lossy:
        lines += _section("link faults (lossy model)")
        lines.append(
            "  words: {sent} sent by correct, {delivered} delivered".format(
                sent=summary.get("words"),
                delivered=metrics.get("words_delivered"),
            )
        )
        by_kind = metrics.get("lossy_by_kind", {})
        for fate in ("drops", "duplicates", "reorders", "corruptions"):
            kinds = by_kind.get(fate, {})
            detail = (
                " (" + ", ".join(f"{k} {c}" for k, c in kinds.items()) + ")"
                if kinds
                else ""
            )
            lines.append(f"  {fate:>12}: {lossy.get(fate, 0)}{detail}")

    per_process = protocol.get("per_process_words")
    if per_process:  # absent in recordings from older builds
        lines += _section("per-process word load (correct senders)")
        if not per_process.get("senders"):
            lines.append("  (no correct sends recorded)")
        else:
            lines.append(
                f"  {per_process['senders']} senders: "
                f"max {per_process.get('max_words')} / "
                f"mean {per_process.get('mean_words', 0.0):.1f} / "
                f"min {per_process.get('min_words')} words"
            )
            for pid, load in per_process.get("top_senders", []):
                lines.append(f"  top: process {pid:>4} sent {load} words")
            for label, key in (
                ("committee", "committee"),
                ("non-committee", "non_committee"),
            ):
                split = per_process.get(key) or {}
                if split.get("senders"):
                    lines.append(
                        f"  {label:>13}: {split['senders']} senders, "
                        f"max {split.get('max_words')} / "
                        f"mean {split.get('mean_words', 0.0):.1f} words"
                    )
                else:
                    lines.append(f"  {label:>13}: (no senders)")

    lines += _section("coin")
    invocations = protocol.get("coin_invocations", [])
    rate = protocol.get("coin_success_rate", 0.0)
    lines.append(
        f"  {len(invocations)} invocation(s), unanimity rate {rate:.2f}"
    )
    for row in invocations:
        outcomes = ", ".join(
            f"{bit}x{count}" for bit, count in row.get("outcomes", {}).items()
        )
        lines.append(
            f"  {row.get('instance')} [{row.get('variant')}] "
            f"participants={row.get('participants')} "
            f"unanimous={row.get('unanimous')} outcomes: {outcomes}"
        )

    lines += _section("committee sizes (observed)")
    for role, histogram in protocol.get("committee_sizes", {}).items():
        lines.append(f"  role {role}:")
        lines += _format_histogram(histogram)
    lines += _section("committee sizes (self-reported samples)")
    for role, histogram in protocol.get("sampled_committee_sizes", {}).items():
        lines.append(f"  role {role}:")
        lines += _format_histogram(histogram)

    grades = protocol.get("approver_grades", {})
    if grades:
        lines += _section("approver grades")
        lines += _format_histogram(grades)

    lines += _section("kernel counters")
    for key in (
        "vrf_verifications",
        "vrf_cache_hits",
        "sig_verifications",
        "sig_cache_hits",
        "wait_evaluations",
        "wait_skips",
    ):
        lines.append(f"  {key}: {metrics.get(key)}")
    timings = metrics.get("phase_timings", {})
    if timings:
        lines += _section("phase timings (wall-clock seconds)")
        total = sum(timings.values()) or 1.0
        for section, seconds in sorted(
            timings.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"  {section:>20}: {seconds:9.4f}s ({seconds / total:5.1%})"
            )

    lines += _section("critical path (deepest decision)")
    path = critical_path(recording.events)
    if not path:
        lines.append("  (no decisions recorded)")
    for entry in path:
        if entry["kind"] == "decide":
            lines.append(
                f"  step {entry['step']:>6}: process {entry['pid']} "
                f"DECIDES {entry['value']!r} at depth {entry['depth']}"
            )
        elif entry["kind"] == "send":
            lines.append(
                f"  step {entry['step']:>6}: {entry['sender']} -> "
                f"{entry['dest']} sends {entry['message_kind']} "
                f"{entry['instance']} (depth {entry['depth']})"
            )
        else:
            lines.append(
                f"  step {entry['step']:>6}: {entry['sender']} -> "
                f"{entry['dest']} delivers {entry['message_kind']} "
                f"({entry['words']} words, depth {entry['depth']})"
            )
    return "\n".join(lines)


def render_report_file(path: str | Path) -> str:
    """Load a recording file and render the full report.

    A telemetry sidecar that exists but cannot be read -- most often a
    snapshot written by a *newer* build than this one -- degrades to a
    one-line note at the end of the report instead of failing the
    render: the report itself needs only the recording.
    """
    report = format_report(load_recording(path))
    sidecar = telemetry_path_for(path)
    if sidecar.exists():
        try:
            load_telemetry(sidecar)
        except (OSError, ValueError) as exc:
            report += f"\n\nnote: telemetry sidecar unusable: {exc}"
    return report
