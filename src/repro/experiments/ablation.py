"""Experiment E6: the delayed-adaptivity ablation (Definition 2.1).

Runs the shared coin under three schedulers:

* ``random`` -- legal, content-oblivious;
* ``targeted`` -- legal, starves a fixed pid set (still oblivious);
* ``content-aware`` -- ILLEGAL under the paper's model: reads VRF values
  in flight and withholds the messages carrying the minimum.

Agreement survives the legal schedulers and collapses under the illegal
one, demonstrating that the adversary restriction is what the coin's
success rate stands on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.stats import BernoulliEstimate
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.experiments.tables import format_table
from repro.sim.adversary import (
    Adversary,
    ContentAwareMinWithholdScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
)
from repro.sim.runner import run_protocol

__all__ = ["AblationRow", "format_ablation", "run"]

SCHEDULERS = ("random", "targeted", "content-aware")


def _make_scheduler(name: str, n: int, seed: int):
    rng = random.Random(seed)
    if name == "random":
        return RandomScheduler(rng)
    if name == "targeted":
        return TargetedDelayScheduler(set(range(n // 4)), rng)
    if name == "content-aware":
        return ContentAwareMinWithholdScheduler(rng)
    raise ValueError(f"unknown scheduler {name!r}")


@dataclass(frozen=True)
class AblationRow:
    scheduler: str
    legal: bool
    n: int
    f: int
    agreement: BernoulliEstimate


def run_row(name: str, n: int, f: int, seeds) -> AblationRow:
    params = ProtocolParams(n=n, f=f)
    agreements = trials = 0
    for seed in seeds:
        trials += 1
        adversary = Adversary(scheduler=_make_scheduler(name, n, seed))
        result = run_protocol(
            n, f, lambda ctx: shared_coin(ctx, 0),
            adversary=adversary, params=params, seed=seed,
        )
        if result.live and len(result.returned_values) == 1:
            agreements += 1
    return AblationRow(
        scheduler=name,
        legal=name != "content-aware",
        n=n,
        f=f,
        agreement=BernoulliEstimate(successes=agreements, trials=trials),
    )


def run(n: int = 16, f: int = 3, seeds=range(40), schedulers=SCHEDULERS) -> list[AblationRow]:
    """Corruption budget f is reserved but unspent: the pure-scheduling
    adversary shows the ablation most sharply (see the scheduler's
    docstring on quorum slack)."""
    return [run_row(name, n, f, seeds) for name in schedulers]


def format_ablation(rows: list[AblationRow]) -> str:
    headers = ["scheduler", "legal under Def 2.1", "n", "f", "agreement rate", "95% CI"]
    body = []
    for row in rows:
        low, high = row.agreement.interval
        body.append([
            row.scheduler, "yes" if row.legal else "NO", row.n, row.f,
            row.agreement.mean, f"[{low:.3f}, {high:.3f}]",
        ])
    return format_table(headers, body)
