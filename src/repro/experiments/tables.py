"""Plain-text table rendering for experiment output.

No external dependencies; produces aligned monospace tables that go
straight into EXPERIMENTS.md and benchmark logs.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) if rendered else len(header)
        for i, header in enumerate(headers)
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
