"""Experiment E4: word-complexity scaling and the quadratic crossover.

Measures words-per-BA-instance as a function of n for the committee-based
protocol versus the quadratic baselines, fits log-log slopes, and reports
the model prediction next to each measurement.  The paper's claim: our
curve grows like n log² n (slope ≈ 1.2 at these scales) while
MMR/Cachin grow like n² (slope ≈ 2), so a crossover exists and moves the
advantage our way as n grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean

from repro.analysis.complexity import fit_loglog_slope, word_complexity_model
from repro.experiments.ascii_plot import loglog_plot
from repro.experiments.parallel import parallel_map
from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["ScalingCurve", "format_scaling", "make_adversary", "run"]

# Scheduler registry for sweep trials.  Trials run in worker processes
# that rebuild everything from primitive (picklable) arguments, so the
# sweep API takes a scheduler *name* rather than an instance; ``None``
# keeps run_protocol's seeded uniform-random default.
_SCHEDULERS = ("fifo", "delay", "random")


def make_adversary(scheduler: str | None, f_used: int, seed: int):
    """Build the (picklable-by-name) adversary for one sweep trial."""
    if scheduler is None:
        return None
    import random as _random

    from repro.crypto.hashing import derive_seed
    from repro.sim.adversary import (
        Adversary,
        DelayBoundedScheduler,
        FIFOScheduler,
        RandomScheduler,
        StaticCorruption,
    )

    rng = _random.Random(derive_seed(seed, "sched"))
    if scheduler == "fifo":
        chosen = FIFOScheduler()
    elif scheduler == "delay":
        chosen = DelayBoundedScheduler(rng=rng)
    elif scheduler == "random":
        chosen = RandomScheduler(rng)
    else:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of {_SCHEDULERS}"
        )
    return Adversary(
        scheduler=chosen, corruption=StaticCorruption(set(range(f_used)))
    )


def _trial(
    name: str,
    n: int,
    f: int | None,
    seed: int,
    whp_sigmas: float,
    max_deliveries: int,
    scheduler: str | None = None,
    delivery_mode: str = "classic",
) -> tuple[float | None, tuple[int, int, int] | None]:
    """One seeded run; top-level so sweep workers can pickle it.

    The protocol closure is rebuilt inside the worker from primitive
    arguments (closures themselves do not pickle).  Returns
    ``(lam, (words, messages, rounds) | None)``.
    """
    factory, params, f_used = make_runner(
        name, n, f=f, seed=seed, whp_sigmas=whp_sigmas
    )
    lam = params.lam if params.lam is not None else 8 * math.log(n)
    adversary = make_adversary(scheduler, f_used, seed)
    result = run_protocol(
        n, f_used, factory,
        adversary=adversary,
        corrupt=None if adversary is not None else set(range(f_used)),
        params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        max_deliveries=max_deliveries,
        delivery_mode=delivery_mode,
    )
    if not (result.live and result.all_correct_decided):
        return lam, None
    decision_rounds = [
        notes["decision_round"] + 1
        for notes in result.notes.values()
        if "decision_round" in notes
    ]
    rounds = max(decision_rounds) if decision_rounds else 1
    return lam, (result.words, result.metrics.messages_sent_correct, rounds)


@dataclass(frozen=True)
class ScalingCurve:
    protocol: str
    n_values: tuple[int, ...]
    mean_words: tuple[float, ...]
    mean_messages: tuple[float, ...]
    mean_rounds: tuple[float, ...]
    words_per_round: tuple[float, ...]
    slope_words: float
    slope_words_per_round: float
    model_words: tuple[float, ...]


def run_curve(
    name: str,
    n_values,
    seeds,
    max_deliveries: int = 8_000_000,
    f: int | None = None,
    whp_sigmas: float = 3.0,
    workers: int | None = None,
    scheduler: str | None = None,
    delivery_mode: str = "classic",
) -> ScalingCurve:
    words_per_n: list[float] = []
    messages_per_n: list[float] = []
    rounds_per_n: list[float] = []
    model = word_complexity_model("whp_ba" if name == "whp_ba" else
                                  "mmr_shared_coin" if name == "mmr+alg1" else name)
    model_points = []
    for n in n_values:
        outcomes = parallel_map(
            _trial,
            [
                (name, n, f, seed, whp_sigmas, max_deliveries,
                 scheduler, delivery_mode)
                for seed in seeds
            ],
            workers=workers,
        )
        lam = outcomes[-1][0] if outcomes else None
        stats = [measured for _, measured in outcomes if measured is not None]
        words = [w for w, _, _ in stats]
        messages = [m for _, m, _ in stats]
        rounds = [r for _, _, r in stats]
        words_per_n.append(mean(words) if words else float("nan"))
        messages_per_n.append(mean(messages) if messages else float("nan"))
        rounds_per_n.append(mean(rounds) if rounds else float("nan"))
        model_points.append(model(n, lam))
    # Words-per-round strips the per-run round-count noise that otherwise
    # dominates the slope fit at small n (rounds are O(1) in expectation
    # but vary 1..4 run to run).
    per_round = [
        w / r if w == w and r == r and r > 0 else float("nan")
        for w, r in zip(words_per_n, rounds_per_n)
    ]

    return ScalingCurve(
        protocol=name,
        n_values=tuple(n_values),
        mean_words=tuple(words_per_n),
        mean_messages=tuple(messages_per_n),
        mean_rounds=tuple(rounds_per_n),
        words_per_round=tuple(per_round),
        slope_words=_fit(n_values, words_per_n, name, "words"),
        slope_words_per_round=_fit(n_values, per_round, name, "words_per_round"),
        model_words=tuple(model_points),
    )


def _fit(n_values, ys, protocol: str, series: str) -> float:
    """Log-log slope over the finite points, or NaN *with a diagnostic*.

    A NaN slope used to be silent; since every downstream consumer (the
    trend gate, the dashboard's fitted-slope line) simply omits NaN, a
    curve whose runs all failed would vanish without a trace.  Name the
    curve and the dropped n-values on stderr instead, dashboard-style:
    one line, no exception.
    """
    import sys

    usable = [(n, y) for n, y in zip(n_values, ys) if y == y]
    if len(usable) < 2:
        dropped = [n for n, y in zip(n_values, ys) if y != y]
        print(
            f"e4: {protocol}/{series}: log-log fit skipped "
            f"({len(usable)} usable point(s); dropped n={dropped})",
            file=sys.stderr,
        )
        return float("nan")
    return fit_loglog_slope(
        [float(n) for n, _ in usable], [y for _, y in usable]
    )


def run(
    n_values=(30, 60, 120),
    seeds=range(3),
    protocols=("mmr+alg1", "cachin", "whp_ba"),
    f: int | None = None,
    whp_sigmas: float = 3.0,
    workers: int | None = None,
    scheduler: str | None = None,
    delivery_mode: str = "classic",
) -> list[ScalingCurve]:
    """Sweep n for each protocol.

    ``f`` fixes the corruption budget across the sweep (default: each
    protocol's resilience fraction).  Scaling runs default to fixed small
    f and 3-sigma committee margins: the sub-quadratic shape only emerges
    once the feasibility-inflated lambda *plateaus* (lambda must absorb
    ~(sigmas/epsilon)^2 regardless of n), so growing f with n would keep
    the measurement pinned in the pre-asymptotic lambda-growth regime --
    the resilience-stressed configurations live in T1/E8 instead.

    ``scheduler`` names the delivery schedule (``"fifo"``, ``"delay"``,
    ``"random"``; ``None`` = run_protocol's seeded random default) and
    ``delivery_mode`` selects the kernel loop (``"classic"``/
    ``"batched"``) -- both paths produce byte-identical results, so
    large-n sweeps can use the batched kernel without changing any
    measurement.
    """
    return [
        run_curve(
            name, n_values, seeds, f=f, whp_sigmas=whp_sigmas,
            workers=workers, scheduler=scheduler, delivery_mode=delivery_mode,
        )
        for name in protocols
    ]


def format_scaling(curves: list[ScalingCurve]) -> str:
    headers = ["protocol", "n", "mean words", "mean msgs", "mean rounds",
               "words/round", "model words"]
    rows = []
    for curve in curves:
        for n, words, msgs, rounds, wpr, model in zip(
            curve.n_values, curve.mean_words, curve.mean_messages,
            curve.mean_rounds, curve.words_per_round, curve.model_words,
        ):
            rows.append([curve.protocol, n, words, msgs, rounds, wpr, model])
    table = format_table(headers, rows)
    slopes = ", ".join(
        f"{curve.protocol}: {curve.slope_words:.2f} "
        f"(per-round {curve.slope_words_per_round:.2f})"
        for curve in curves
    )
    series = {
        curve.protocol: [
            (float(n), w)
            for n, w in zip(curve.n_values, curve.mean_words)
            if w == w  # skip NaNs from failed points
        ]
        for curve in curves
    }
    plot = loglog_plot(series, x_label="n", y_label="words")
    return table + f"\n\nfitted log-log word slopes: {slopes}\n\n{plot}"
