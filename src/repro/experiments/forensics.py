"""`repro explain`: replay a recording, re-detect its failure, minimize it.

The forensics driver glues the recording layer to the schedule
machinery:

* :func:`replay_recording` re-executes a flight recording under a
  seq-exact :class:`~repro.sim.adversary.ReplayScheduler`, rebuilding
  the run from its header alone (the ``protocol`` header names a
  :mod:`repro.experiments.protocols` or
  :mod:`repro.experiments.scenarios` registry entry).
* :func:`explain_recording` then turns a red check into an explanation:
  it re-runs the conformance monitors on the replay, identifies the
  failure (a safety violation, or a decision disagreement baked into the
  recording), shrinks the schedule behind it with
  :func:`repro.sim.minimize.minimize_schedule`, and attaches the causal
  slice.  The payload persists as ``*.divergence.json`` -- the same
  artifact family ``repro diff`` writes -- so the dashboard and CI
  handle both uniformly.

Everything here is offline tooling over recorded runs; the kernel hot
path is untouched.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Sequence

from repro.experiments.protocols import PROTOCOLS, make_runner
from repro.experiments.scenarios import (
    SCENARIOS,
    is_scenario,
    make_scenario,
)
from repro.sim.adversary import Adversary, ReplayScheduler, StaticCorruption
from repro.sim.diffing import (
    DEFAULT_MAX_SLICE,
    diff_events,
    format_slice,
)
from repro.sim.flightrecorder import FlightRecorder, Recording, load_recording
from repro.sim.minimize import minimize_schedule
from repro.sim.monitors import MonitorSuite
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided

__all__ = [
    "explain_recording",
    "format_explain",
    "replay_recording",
    "resolve_protocol",
]


class _RunPlan:
    """Everything needed to re-execute a recording's run under any scheduler."""

    def __init__(
        self,
        name: str,
        factory,
        params,
        corruption,
        behavior_factory,
        stop_condition,
        lossy=None,
    ) -> None:
        self.name = name
        self.factory = factory
        self.params = params
        self.corruption = corruption
        self.behavior_factory = behavior_factory
        self.stop_condition = stop_condition
        # The scenario's LossyLinkConfig (None for the reliable model).
        # Fates are deterministic in (seed, seq), so replays and fuzz
        # mutations must carry the config to reproduce the faults.
        self.lossy = lossy


def resolve_protocol(recording: Recording, protocol: str | None = None) -> str:
    """The registry name a recording's run came from.

    Prefers the explicit ``protocol`` argument, then the recording's
    ``protocol`` header (written by :func:`repro.experiments.report.record_run`);
    raises ``ValueError`` when neither is available -- older recordings
    predate the header and need ``--protocol`` on the CLI.
    """
    name = protocol or recording.header.get("protocol")
    if not name:
        raise ValueError(
            "recording has no protocol name in its header; pass --protocol "
            f"(one of {PROTOCOLS + SCENARIOS})"
        )
    if name not in PROTOCOLS and not is_scenario(name):
        raise ValueError(
            f"unknown protocol {name!r}; one of {PROTOCOLS + SCENARIOS} "
            "(scenarios also accept a rate suffix, e.g. lossy_uniform@0.1)"
        )
    return name


def _plan(recording: Recording, name: str) -> _RunPlan:
    header = recording.header
    n, f, seed = header["n"], header["f"], header["seed"]
    if is_scenario(name):
        spec = make_scenario(name, n, f=f, seed=seed)
        return _RunPlan(
            name,
            spec.factory,
            spec.params,
            spec.corruption,
            spec.behavior_factory,
            spec.stop_condition,
            lossy=spec.lossy,
        )
    factory, params, _ = make_runner(name, n, f=f, seed=seed)
    return _RunPlan(
        name,
        factory,
        params,
        StaticCorruption(set(header.get("corrupted", ()))),
        None,
        stop_when_all_decided,
    )


def _execute(
    recording: Recording,
    plan: _RunPlan,
    order: Sequence[tuple[int, int]],
    seqs: Sequence[int],
    monitors: MonitorSuite | None = None,
    recorder: FlightRecorder | None = None,
) -> RunResult:
    header = recording.header
    adversary = Adversary(
        scheduler=ReplayScheduler(list(order), seqs=list(seqs)),
        corruption=plan.corruption,
        behavior_factory=plan.behavior_factory,
    )
    return run_protocol(
        header["n"],
        header["f"],
        plan.factory,
        adversary=adversary,
        seed=header["seed"],
        params=plan.params,
        stop_condition=plan.stop_condition,
        max_deliveries=len(order),
        lossy=plan.lossy,
        subscribers=[recorder.on_event] if recorder is not None else None,
        monitors=monitors,
    )


def replay_recording(
    recording: Recording,
    protocol: str | None = None,
    order: Sequence[tuple[int, int]] | None = None,
    seqs: Sequence[int] | None = None,
    monitors: MonitorSuite | None = None,
    recorder: FlightRecorder | None = None,
) -> RunResult:
    """Re-execute a recording seq-exactly (or under a modified schedule).

    By default replays the recorded delivery schedule; pass
    ``order``/``seqs`` to replay a shrunk or perturbed schedule instead
    (the minimizer does).  Raises ``RuntimeError`` from the replay
    scheduler if the run diverges from the requested schedule.
    """
    plan = _plan(recording, resolve_protocol(recording, protocol))
    if order is None:
        order = recording.delivery_order()
    if seqs is None:
        seqs = recording.delivery_seqs()
    return _execute(recording, plan, order, seqs, monitors=monitors, recorder=recorder)


def _decisions_of(result: RunResult) -> dict[str, Any]:
    return {str(pid): result.decisions[pid] for pid in sorted(result.decisions)}


def _correct_decided_values(result: RunResult) -> set[Any]:
    return {
        result.decisions[pid]
        for pid in result.correct_pids
        if pid in result.decisions
    }


def _find_failure(
    recording: Recording, suite: MonitorSuite, result: RunResult
) -> dict[str, Any] | None:
    """Identify the failure the explanation should target, if any."""
    violations = suite.safety_violations or suite.violations
    if violations:
        violation = violations[0]
        return {
            "type": "violation",
            "monitor": violation.monitor,
            "prop": violation.prop,
            "severity": violation.severity,
            "message": violation.message,
            "step": violation.step,
            "violation": violation.to_dict(),
        }
    if len(_correct_decided_values(result)) > 1:
        return {
            "type": "decision_disagreement",
            "message": (
                "correct processes decided differently: "
                f"{_decisions_of(result)}"
            ),
            "decisions": _decisions_of(result),
        }
    recorded = recording.summary.get("decisions", {})
    replayed = _decisions_of(result)
    if recorded and recorded != replayed:
        return {
            "type": "decision_mismatch",
            "message": (
                f"replay decided {replayed} but the recording says {recorded}"
            ),
            "recorded": recorded,
            "replayed": replayed,
        }
    return None


def _reproducer(
    recording: Recording, plan: _RunPlan, failure: dict[str, Any]
) -> Callable[[Sequence[tuple[int, int]], Sequence[int]], bool]:
    """``reproduce(order, seqs)`` deciding if the failure recurs."""
    target = (failure.get("monitor"), failure.get("prop"))

    def reproduce(order: Sequence[tuple[int, int]], seqs: Sequence[int]) -> bool:
        suite = MonitorSuite()
        try:
            result = _execute(recording, plan, order, seqs, monitors=suite)
        except RuntimeError:
            return False  # schedule not realizable -> failure not reproduced
        if failure["type"] == "violation":
            return any(
                (violation.monitor, violation.prop) == target
                for violation in suite.violations
            )
        return len(_correct_decided_values(result)) > 1

    return reproduce


def explain_recording(
    source: str | Path | Recording,
    protocol: str | None = None,
    max_slice: int = DEFAULT_MAX_SLICE,
    minimize: bool = True,
    minimize_budget: int | None = None,
) -> dict[str, Any]:
    """The full `repro explain` pipeline over one recording.

    Replays the recording seq-exactly with a fresh monitor suite and
    flight recorder, checks replay fidelity (recorded vs replayed event
    logs), identifies the failure, and -- when one reproduces -- shrinks
    its schedule to the deliveries that matter.  Returns the JSON-ready
    payload (``kind: "explain"``); ``failure is None`` means the
    recording is clean.  ``minimize_budget`` caps the ddmin phase's
    replay count (the fuzzer bounds per-counterexample work this way).
    """
    if isinstance(source, Recording):
        recording, path = source, None
    else:
        path, recording = Path(source), load_recording(source)
    name = resolve_protocol(recording, protocol)
    plan = _plan(recording, name)
    order = recording.delivery_order()
    seqs = recording.delivery_seqs()

    suite = MonitorSuite()
    recorder = FlightRecorder()
    replay_error: str | None = None
    result = None
    try:
        result = _execute(
            recording, plan, order, seqs, monitors=suite, recorder=recorder
        )
    except RuntimeError as exc:
        replay_error = str(exc)

    payload: dict[str, Any] = {
        "kind": "explain",
        "recording": str(path) if path is not None else None,
        "protocol": name,
        "n": recording.header.get("n"),
        "f": recording.header.get("f"),
        "seed": recording.header.get("seed"),
        "deliveries": len(order),
    }
    if replay_error is not None:
        payload["replay_error"] = replay_error
        payload["failure"] = {
            "type": "replay_divergence",
            "message": (
                "seq-exact replay diverged from the recording -- the protocol "
                "build or setup differs from the one that recorded it: "
                + replay_error
            ),
        }
        return payload

    fidelity = diff_events(recording.events, recorder.events, max_slice=max_slice)
    payload["replay_identical"] = fidelity.identical
    if not fidelity.identical:
        payload["replay_divergence"] = fidelity.to_dict()

    failure = _find_failure(recording, suite, result)
    payload["failure"] = failure
    if failure is None:
        return payload

    violation = failure.get("violation") or {}
    slice_entries = violation.get("critical_slice") or []
    if slice_entries:
        payload["slice"] = slice_entries[-max_slice:]

    if minimize and failure["type"] in ("violation", "decision_disagreement"):
        try:
            minimized = minimize_schedule(
                _reproducer(recording, plan, failure),
                order,
                seqs,
                max_tests=minimize_budget,
            )
            payload["minimized"] = minimized.to_dict()
        except ValueError as exc:
            payload["minimize_error"] = str(exc)
    return payload


def format_explain(payload: dict[str, Any]) -> str:
    """Human rendering of an :func:`explain_recording` payload."""
    lines = []
    if payload.get("recording"):
        lines.append(f"recording: {payload['recording']}")
    lines.append(
        f"run: protocol={payload.get('protocol')} n={payload.get('n')} "
        f"f={payload.get('f')} seed={payload.get('seed')} "
        f"deliveries={payload.get('deliveries')}"
    )
    if "replay_identical" in payload:
        lines.append(
            "replay: event log identical to the recording"
            if payload["replay_identical"]
            else "replay: DIVERGED -- "
            + payload["replay_divergence"]["describe"]
        )
    failure = payload.get("failure")
    if failure is None:
        lines.append(
            "no failure found: monitors clean, decisions consistent -- "
            "nothing to explain"
        )
        return "\n".join(lines)
    lines.append(f"failure [{failure['type']}]: {failure['message']}")
    minimized = payload.get("minimized")
    if minimized:
        lines.append(f"minimized: {minimized['describe']}")
        lines.append("minimal schedule (the deliveries that matter):")
        for link, seq in zip(minimized["order"], minimized["seqs"]):
            lines.append(
                f"  deliver seq {seq} on link {link[0]} -> {link[1]}"
            )
        if minimized["dropped_seqs"]:
            lines.append(
                "delayed past the end (droppable): seqs "
                + ", ".join(map(str, minimized["dropped_seqs"]))
            )
    if payload.get("minimize_error"):
        lines.append(f"minimization skipped: {payload['minimize_error']}")
    slice_entries = payload.get("slice") or []
    if slice_entries:
        lines.append(f"causal slice ({len(slice_entries)} events):")
        lines += format_slice(slice_entries)
    return "\n".join(lines)
