"""Experiment E1b: Lemma 4.2 -- counting *common* values directly.

The shared coin's analysis pivots on ``c``, the number of values received
by at least f+1 correct processes by the end of phase 1; Lemma 4.2 lower
bounds it by 9ε/(1+6ε)·n via the ones-in-a-table argument.  Here we
measure ``c`` itself: a traced run records which FIRST values each
correct process delivered *before broadcasting its SECOND*, and we count
values over the f+1 threshold.  We also record whether the global minimum
was among them (Lemma 4.4's event) and whether the run agreed -- wiring
the lemma chain 4.2 -> 4.4 -> 4.6 to data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean

from repro.analysis.bounds import common_values_fraction_bound
from repro.core.messages import FirstMsg, SecondMsg, coin_value_alpha
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.experiments.parallel import parallel_map
from repro.experiments.tables import format_table
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.events import DeliverEvent
from repro.sim.network import Simulation
from repro.sim.trace import attach_trace

__all__ = ["CommonValuesPoint", "format_common_values", "run"]


@dataclass(frozen=True)
class CommonValuesRun:
    c: int
    min_was_common: bool
    agreed: bool


@dataclass(frozen=True)
class CommonValuesPoint:
    n: int
    f: int
    epsilon: float
    trials: int
    mean_c: float
    min_c: int
    paper_bound_c: float
    min_common_rate: float
    agreement_rate: float


def run_once(n: int, f: int, seed: int) -> CommonValuesRun:
    params = ProtocolParams(n=n, f=f)
    pki = PKI.create(n, rng=random.Random(derive_seed("e1b", seed)))
    sim = Simulation(
        n=n, f=f, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(derive_seed("e1b-s", seed))),
            corruption=StaticCorruption(set(range(f))),
        ),
        seed=seed, params=params,
    )
    trace = attach_trace(sim)

    # Trusted-measurement subscriber: FIRST-value origins are read from the
    # live payload *during* the delivery callback (trace rows only keep an
    # immutable summary).  The trace is an observer's tool, not part of the
    # adversary interface, so this does not weaken the model.
    first_deliveries: list[tuple[int, int, int]] = []  # (step, dest, origin)

    def collect_first(event) -> None:
        if isinstance(event, DeliverEvent) and isinstance(event.payload, FirstMsg):
            first_deliveries.append(
                (event.step, event.dest, event.payload.coin_value.origin)
            )

    sim.events.subscribe(collect_first)
    sim.set_protocol_all(lambda ctx: shared_coin(ctx, 0))
    sim.run()

    correct = set(sim.correct_pids)
    # Step at which each correct process broadcast its SECOND (the end of
    # its phase 1).
    second_step = {
        pid: trace.sends_by(pid, "SecondMsg")[0].step
        for pid in correct
        if trace.sends_by(pid, "SecondMsg")
    }
    # Which origins' FIRST values each correct process received in phase 1.
    receivers_per_origin: dict[int, set[int]] = {}
    for step, dest, origin in first_deliveries:
        if dest not in correct:
            continue
        if dest not in second_step or step > second_step[dest]:
            continue
        receivers_per_origin.setdefault(origin, set()).add(dest)
    c = sum(1 for receivers in receivers_per_origin.values() if len(receivers) > f)

    alpha = coin_value_alpha(("shared_coin", 0))
    values = {
        pid: pki.vrf_scheme.prove(pki.vrf_private(pid), alpha).value
        for pid in range(n)
    }
    min_origin = min(values, key=values.get)
    min_common = len(receivers_per_origin.get(min_origin, ())) > f
    outputs = {sim.returns[pid] for pid in correct if pid in sim.returns}
    return CommonValuesRun(c=c, min_was_common=min_common, agreed=len(outputs) == 1)


def run_point(n: int, f: int, seeds, workers: int | None = None) -> CommonValuesPoint:
    runs = parallel_map(run_once, [(n, f, seed) for seed in seeds], workers=workers)
    params = ProtocolParams(n=n, f=f)
    return CommonValuesPoint(
        n=n,
        f=f,
        epsilon=params.epsilon,
        trials=len(runs),
        mean_c=mean(r.c for r in runs),
        min_c=min(r.c for r in runs),
        paper_bound_c=common_values_fraction_bound(params.epsilon) * n,
        min_common_rate=mean(r.min_was_common for r in runs),
        agreement_rate=mean(r.agreed for r in runs),
    )


def run(
    n: int = 24,
    f_values=(0, 2, 4, 6),
    seeds=range(20),
    workers: int | None = None,
) -> list[CommonValuesPoint]:
    return [run_point(n, f, seeds, workers=workers) for f in f_values if f < n / 3]


def format_common_values(points: list[CommonValuesPoint]) -> str:
    headers = [
        "n", "f", "epsilon", "mean c", "min c", "Lemma 4.2 bound",
        "P[min common]", "agreement",
    ]
    rows = [
        [
            point.n, point.f, point.epsilon, point.mean_c, point.min_c,
            point.paper_bound_c, point.min_common_rate, point.agreement_rate,
        ]
        for point in points
    ]
    return format_table(headers, rows)
