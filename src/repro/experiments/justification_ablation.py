"""Experiment X2 (extension): why ok messages carry W signed echoes.

The approver's word complexity is O(nλ²) *because* each ok message hauls
W signed echo messages as a validity proof (paper Section 6.1: "no
Byzantine process can send a valid ok,w").  This ablation removes the
justification, pits the approver against Byzantine ok-committee members
that inject a never-proposed value, and measures both sides of the trade:

* words per instance -- the λ² term disappears;
* Validity -- collapses: return sets start containing the injected value.

With justifications on, the same attack is a no-op.  This is the λ² term
earning its keep, quantified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean

from repro.core.approver import approve
from repro.core.committees import sample
from repro.core.messages import OkMsg
from repro.core.params import ProtocolParams
from repro.crypto.hashing import derive_seed
from repro.experiments.tables import format_table
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol

__all__ = ["JustificationPoint", "format_justification", "run"]

INSTANCE = ("x2-approver",)
HONEST_VALUE = 1
INJECTED_VALUE = "<injected>"


@dataclass(frozen=True)
class JustificationPoint:
    justify: bool
    attack: bool
    n: int
    f: int
    trials: int
    live: int
    validity_violations: int  # runs where INJECTED_VALUE reached a return set
    mean_words: float


def _injector(params: ProtocolParams):
    """A Byzantine ok-committee member voting for a never-proposed value."""

    def on_start(ctx):
        sampled, proof = sample(ctx, INSTANCE, "ok", params)
        if sampled:
            ctx.broadcast(
                OkMsg(INSTANCE, value=INJECTED_VALUE, membership=proof,
                      justification=())
            )

    return lambda pid: ScriptedBehavior(on_start=on_start)


def run_point(
    justify: bool, attack: bool, n: int, f: int, params: ProtocolParams, seeds
) -> JustificationPoint:
    live = violations = trials = 0
    words: list[int] = []
    for seed in seeds:
        trials += 1
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(derive_seed("x2", seed))),
            corruption=StaticCorruption(set(range(f))),
            behavior_factory=_injector(params) if attack else None,
        )
        result = run_protocol(
            n, f,
            lambda ctx: approve(ctx, INSTANCE, HONEST_VALUE, params, justify=justify),
            adversary=adversary, params=params, seed=seed,
        )
        if not result.live:
            continue
        live += 1
        words.append(result.words)
        if any(INJECTED_VALUE in rv for rv in result.returned_values):
            violations += 1
    return JustificationPoint(
        justify=justify,
        attack=attack,
        n=n,
        f=f,
        trials=trials,
        live=live,
        validity_violations=violations,
        mean_words=mean(words) if words else float("nan"),
    )


def run(n: int = 60, f: int = 4, seeds=range(10)) -> list[JustificationPoint]:
    params = ProtocolParams.simulation_scale(n=n, f=f, safety_sigmas=4.0)
    points = []
    for justify in (True, False):
        for attack in (False, True):
            points.append(run_point(justify, attack, n, f, params, seeds))
    return points


def format_justification(points: list[JustificationPoint]) -> str:
    headers = [
        "justified ok", "ok-injection attack", "n", "f", "live",
        "validity violations", "mean words",
    ]
    rows = [
        [
            "yes" if point.justify else "NO (ablation)",
            "yes" if point.attack else "no",
            point.n, point.f, f"{point.live}/{point.trials}",
            f"{point.validity_violations}/{point.live}" if point.live else "-",
            point.mean_words,
        ]
        for point in points
    ]
    return format_table(headers, rows)
