"""Cross-run trend store: every benchmark leaves a machine-readable trail.

The text tables under ``benchmarks/results`` answer "what happened this
run"; this module answers "what has been happening".  A
:class:`TrendStore` is a schema-versioned JSONL journal
(``BENCH_trends.jsonl`` at the repository root, written through
:mod:`repro.experiments.store`) that benchmarks and the conformance
checker append one record per run to, plus a ``BENCH_<name>.json``
latest-snapshot per series so CI artifacts and quick inspection never
need to scan the journal.

Records are ``{schema, version, ts, name, payload}``; foreign or
future-versioned records fail loudly on load (same policy as flight
recordings).  :meth:`TrendStore.regressions` diffs the two newest
payloads of a series with :func:`repro.experiments.store.compare_results`,
which is what ``python -m repro trends`` renders as the drift column.

The store also *enforces*: :func:`gate_trends` walks the numeric leaves
of each series' newest-vs-baseline payloads and fails on any drift
beyond a relative tolerance -- ``python -m repro trends --gate
--tolerance <pct>`` exits non-zero, which is what the CI conformance
job runs.  Volatile fields (wall-clock timings, timestamps, rendered
report text) are excluded by path substring so the gate only judges the
deterministic quantities the paper's claims are about: words, rounds,
coin-success rates, deliveries (see :data:`GATE_EXCLUDED_SUBSTRINGS`).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Any

from repro.experiments.store import compare_results, load_jsonl, to_jsonable

__all__ = [
    "GATE_EXCLUDED_SUBSTRINGS",
    "TREND_SCHEMA",
    "TREND_SCHEMA_VERSION",
    "TrendStore",
    "bench_json_path",
    "format_gate",
    "gate_trends",
    "numeric_drifts",
    "payload_fingerprint",
    "record_bench",
    "render_trends",
    "sparkline",
]

TREND_SCHEMA = "repro.trends"
TREND_SCHEMA_VERSION = 1
TRENDS_FILENAME = "BENCH_trends.jsonl"


def bench_json_path(name: str, root: str | Path = ".") -> Path:
    """Where the latest snapshot of series ``name`` lives."""
    return Path(root) / f"BENCH_{name}.json"


_DROPPED = object()


def _strip_volatile(payload: Any, path: str = "$") -> Any:
    """``payload`` with every gate-excluded (volatile) path removed --
    the configuration-and-results view a fingerprint should hash."""
    if _gate_excluded(path):
        return _DROPPED
    if isinstance(payload, dict):
        stripped = {}
        for key in sorted(payload):
            value = _strip_volatile(payload[key], f"{path}.{key}")
            if value is not _DROPPED:
                stripped[key] = value
        return stripped
    if isinstance(payload, (list, tuple)):
        return [
            item
            for index, entry in enumerate(payload)
            for item in (_strip_volatile(entry, f"{path}[{index}]"),)
            if item is not _DROPPED
        ]
    return payload


def payload_fingerprint(payload: Any) -> str:
    """Deterministic config fingerprint of a payload's non-volatile part.

    Wall-clock timings, timestamps and rendered report text are stripped
    (same :data:`GATE_EXCLUDED_SUBSTRINGS` rules as the gate) before
    hashing, so two runs of the same benchmark at the same configuration
    fingerprint identically even though their wall clocks differ.
    Payloads that are *all* volatile (e.g. a rendered-report-only
    record) hash whole, so they only ever dedupe byte-identical twins.
    """
    jsonable = to_jsonable(payload)
    stripped = _strip_volatile(jsonable)
    if stripped is _DROPPED or stripped == {} or stripped == []:
        stripped = jsonable
    digest = hashlib.sha256(
        json.dumps(stripped, sort_keys=True).encode()
    )
    return digest.hexdigest()[:16]


def _current_commit(root: str | Path) -> str | None:
    """The working tree's HEAD commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(Path(root).resolve()), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


class TrendStore:
    """Append-only journal of benchmark/conformance summaries."""

    def __init__(self, root: str | Path = ".") -> None:
        self.root = Path(root)
        self.path = self.root / TRENDS_FILENAME

    def append(
        self,
        name: str,
        payload: Any,
        ts: float | None = None,
        dedupe: bool = True,
    ) -> dict:
        """Append one record for series ``name``; returns the record.

        Re-running a benchmark in an unchanged working tree used to
        append a second, numerically identical record -- which widened
        sparkline windows with noise and made ``regressions`` diff a
        record against its own clone.  Records therefore carry a
        ``fingerprint`` (:func:`payload_fingerprint`: config + results,
        volatile fields stripped) and the checkout's ``commit``; when
        ``dedupe`` is on (default) and the series' newest record matches
        on both, the append is skipped and the existing record returned.
        Records written by older builds lack the fields and never match.
        """
        fingerprint = payload_fingerprint(payload)
        commit = _current_commit(self.root)
        if dedupe:
            try:
                last = self.latest(name)
            except (OSError, ValueError):
                last = None  # a damaged journal must not block appends
            if (
                last is not None
                and last.get("fingerprint") == fingerprint
                and last.get("commit") == commit
            ):
                return last
        record = {
            "schema": TREND_SCHEMA,
            "version": TREND_SCHEMA_VERSION,
            "ts": time.time() if ts is None else ts,
            "name": name,
            "payload": to_jsonable(payload),
            "fingerprint": fingerprint,
            "commit": commit,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        return record

    def load(self) -> list[dict]:
        """All records, oldest first.  Raises ``ValueError`` on records
        from a different schema or a future version (don't silently
        misread someone else's journal)."""
        if not self.path.exists():
            return []
        records = load_jsonl(self.path)
        for index, record in enumerate(records, start=1):
            if record.get("schema") != TREND_SCHEMA:
                raise ValueError(
                    f"{self.path}: record {index} has schema "
                    f"{record.get('schema')!r}, expected {TREND_SCHEMA!r}"
                )
            if record.get("version") != TREND_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: record {index} has version "
                    f"{record.get('version')!r}, this build reads "
                    f"{TREND_SCHEMA_VERSION}"
                )
        return records

    def names(self) -> list[str]:
        return sorted({record["name"] for record in self.load()})

    def history(self, name: str) -> list[dict]:
        """All records of one series, oldest first."""
        return [record for record in self.load() if record["name"] == name]

    def latest(self, name: str) -> dict | None:
        history = self.history(name)
        return history[-1] if history else None

    def regressions(self, name: str, rel_tol: float = 0.1) -> list[str]:
        """Numeric drift between the two newest records of ``name``
        (empty when within tolerance, or with fewer than two records)."""
        history = self.history(name)
        if len(history) < 2:
            return []
        return compare_results(
            history[-2]["payload"], history[-1]["payload"], rel_tol=rel_tol
        )

    def window(self, name: str, last: int = 2) -> list[dict]:
        """The newest ``last`` records of a series, oldest first."""
        history = self.history(name)
        return history[-max(1, last):]


def record_bench(
    name: str, payload: Any, root: str | Path = "."
) -> tuple[Path, dict]:
    """Record one benchmark summary: append to the journal AND refresh
    the ``BENCH_<name>.json`` snapshot.  Returns (snapshot path, record).

    This is the one call sites use (``benchmarks/conftest.py``, the
    conformance checker); keeping journal and snapshot in lockstep means
    the snapshot is always the journal's newest record.
    """
    store = TrendStore(root)
    record = store.append(name, payload)
    path = bench_json_path(name, root)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path, record


# -- numeric drift extraction (the gate's view of a payload) -----------------

# Path substrings excluded from gating and sparklines: legitimately
# volatile between otherwise identical runs (wall clock, timestamps,
# rendered text, machine-speed-derived bounds, and coverage-novelty
# counts, which depend on how much the atlas had accumulated *before*
# the run rather than on the run itself).
GATE_EXCLUDED_SUBSTRINGS = (
    "phase_timings",
    "wallclock",
    "elapsed",
    "seconds",
    ".ts",
    ".report",
    "interval",
    "new_signatures",
    "new_rate",
    "runs_with_new",
    "baseline_signatures",
    "novelty",
    "corpus",
)


def _gate_excluded(path: str) -> bool:
    lowered = path.lower()
    return any(token in lowered for token in GATE_EXCLUDED_SUBSTRINGS)


def numeric_leaves(payload: Any, path: str = "$") -> dict[str, float]:
    """Flatten a payload's gate-relevant numeric leaves to ``path -> value``.

    Bools are skipped (they are verdicts, not magnitudes), as is every
    path matching :data:`GATE_EXCLUDED_SUBSTRINGS`.
    """
    leaves: dict[str, float] = {}
    if _gate_excluded(path):
        return leaves
    if isinstance(payload, dict):
        for key in sorted(payload):
            leaves.update(numeric_leaves(payload[key], f"{path}.{key}"))
    elif isinstance(payload, (list, tuple)):
        for index, item in enumerate(payload):
            leaves.update(numeric_leaves(item, f"{path}[{index}]"))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        leaves[path] = float(payload)
    return leaves


def numeric_drifts(
    baseline: Any, current: Any, rel_tol: float = 0.1
) -> list[str]:
    """Out-of-tolerance numeric drift between two payloads, gate rules.

    Unlike :func:`repro.experiments.store.compare_results` this only
    judges numeric leaves present in *both* payloads and skips the
    excluded (volatile) paths -- structure growth (a new field, a longer
    table) is evolution, not regression.  A leaf flipping between NaN
    and a number is a drift (a statistic appearing or vanishing is a
    real change); a leaf that is NaN on *both* sides is skipped -- NaN
    compares unequal to itself, so the naive tolerance check would
    silently pass it forever (:func:`gate_trends` surfaces those as a
    per-series note instead).
    """
    before = numeric_leaves(baseline)
    after = numeric_leaves(current)
    drifts = []
    for path in sorted(set(before) & set(after)):
        old, new = before[path], after[path]
        old_nan, new_nan = old != old, new != new
        if old_nan and new_nan:
            continue
        if old_nan or new_nan:
            drifts.append(f"{path}: {old:g} -> {new:g} (NaN transition)")
            continue
        tolerance = max(abs(old) * rel_tol, 1e-9)
        if abs(old - new) > tolerance:
            drifts.append(f"{path}: {old:g} -> {new:g} (beyond {rel_tol:.0%})")
    return drifts


_SPARK_LEVELS = "_.:-=+*#%@"  # low -> high; NaN renders as a blank


def sparkline(values: list[float]) -> str:
    """Render a numeric series as a fixed-charset ASCII sparkline.

    Flat series render as all-middle characters; a single value is one
    character.  Used by the trends table and the gate report to show
    drift *direction*, not just magnitude.
    """
    finite = [v for v in values if v == v]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    if hi == lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    chars = []
    for value in values:
        if value != value:
            chars.append(" ")
            continue
        level = round((value - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


# Preference order for the one scalar a series is sparklined by: the
# quantities the paper's trajectory claims are about, then anything.
_CANONICAL_PREFERENCES = (
    "words", "round", "coin", "rate", "duration", "deliver", "bound",
)


def canonical_scalar(window: list[dict]) -> tuple[str, list[float]] | None:
    """Pick one numeric leaf path present across a window of records and
    return ``(path, values oldest-first)``; None when nothing qualifies."""
    flattened = [numeric_leaves(record["payload"]) for record in window]
    common = set(flattened[0])
    for leaves in flattened[1:]:
        common &= set(leaves)
    if not common:
        return None

    def rank(path: str) -> tuple[int, str]:
        lowered = path.lower()
        for position, token in enumerate(_CANONICAL_PREFERENCES):
            if token in lowered:
                return (position, path)
        return (len(_CANONICAL_PREFERENCES), path)

    chosen = min(common, key=rank)
    return chosen, [leaves[chosen] for leaves in flattened]


def render_trends(store: TrendStore, rel_tol: float = 0.1, last: int = 2) -> str:
    """The ``python -m repro trends`` table: one row per series with its
    record count, newest timestamp, a sparkline over the newest ``last``
    records, and drift of the newest record vs the window's oldest."""
    names = store.names()
    if not names:
        return (
            f"no trend records at {store.path}\n"
            "(benchmarks and `repro check` append here as they run)"
        )
    last = max(2, last)
    spark_width = max(5, last)
    lines = [
        f"trend store: {store.path}",
        "",
        f"{'series':<28} {'records':>7}  {'latest':<19}  "
        f"{'trend':<{spark_width}}  drift vs {last - 1} back",
    ]
    for name in names:
        history = store.history(name)
        newest = history[-1]
        window = history[-last:]
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(newest["ts"]))
        scalar = canonical_scalar(window) if len(window) > 1 else None
        spark = sparkline(scalar[1]) if scalar else ""
        if len(history) < 2:
            drift, drifts = "(first record)", []
        else:
            drifts = numeric_drifts(
                window[0]["payload"], newest["payload"], rel_tol=rel_tol
            )
            drift = (
                f"none (within {rel_tol:.0%})" if not drifts
                else f"{len(drifts)} field(s)"
            )
        lines.append(
            f"{name:<28} {len(history):>7}  {stamp:<19}  "
            f"{spark:<{spark_width}}  {drift}"
        )
        if scalar:
            lines.append(f"{'':<28}   tracking {scalar[0]}")
        for description in drifts[:8]:
            lines.append(f"{'':<28}   {description}")
        if len(drifts) > 8:
            lines.append(f"{'':<28}   ... and {len(drifts) - 8} more")
    return "\n".join(lines)


# -- the gate ----------------------------------------------------------------


def gate_trends(
    store: TrendStore, rel_tol: float = 0.25, last: int = 2
) -> dict[str, Any]:
    """Machine-readable regression verdict over every series in the store.

    For each series with at least two records, diffs the newest payload
    against the oldest record in the newest-``last`` window with
    :func:`numeric_drifts`.  Returns ``{ok, tolerance, window, series}``
    where ``series`` maps each name to its record count, drift list and
    per-series verdict.  An empty or missing store passes vacuously
    (``checked == 0``): the gate enforces trajectories once they exist,
    it does not demand one on day zero.  Degenerate inputs are named
    instead of silently passing: an empty store, a store where no series
    has two records, and series whose shared leaves are all-NaN each get
    a one-line diagnostic (``verdict["note"]`` / ``entry["note"]``).
    """
    verdict: dict[str, Any] = {
        "ok": True,
        "tolerance": rel_tol,
        "window": last,
        "checked": 0,
        "series": {},
    }
    for name in store.names():
        window = store.window(name, last=last)
        entry: dict[str, Any] = {"records": len(store.history(name))}
        if len(window) < 2:
            entry["drifts"] = []
            entry["ok"] = True
            entry["note"] = "first record; nothing to diff"
        else:
            before = numeric_leaves(window[0]["payload"])
            after = numeric_leaves(window[-1]["payload"])
            drifts = numeric_drifts(
                window[0]["payload"], window[-1]["payload"], rel_tol=rel_tol
            )
            entry["drifts"] = drifts
            entry["ok"] = not drifts
            verdict["checked"] += 1
            if drifts:
                verdict["ok"] = False
            shared = set(before) & set(after)
            both_nan = sorted(
                path for path in shared
                if before[path] != before[path] and after[path] != after[path]
            )
            if both_nan:
                entry["note"] = (
                    f"{len(both_nan)} all-NaN leaf/leaves skipped "
                    f"(e.g. {both_nan[0]})"
                )
            elif not shared:
                entry["note"] = (
                    "no numeric leaves shared between the window's records; "
                    "nothing to diff"
                )
        scalar = canonical_scalar(window) if len(window) > 1 else None
        if scalar:
            entry["tracking"] = scalar[0]
            entry["trend"] = scalar[1]
        verdict["series"][name] = entry
    if not verdict["series"]:
        verdict["note"] = (
            f"trend store empty or missing at {store.path}; nothing to gate "
            "(benchmarks and `repro check` append here as they run)"
        )
    elif verdict["checked"] == 0:
        verdict["note"] = (
            "no series has two records in the window yet; nothing to gate"
        )
    return verdict


def format_gate(verdict: dict[str, Any]) -> str:
    """Human-readable gate report (`repro trends --gate` output)."""
    lines = [
        f"trend gate: tolerance {verdict['tolerance']:.0%}, "
        f"window {verdict['window']}, {verdict['checked']} series checked"
    ]
    if verdict.get("note"):
        lines.append(f"  note: {verdict['note']}")
    for name, entry in verdict["series"].items():
        status = "ok" if entry["ok"] else "DRIFT"
        spark = sparkline(entry["trend"]) if "trend" in entry else ""
        suffix = f"  [{spark}] {entry.get('tracking', '')}" if spark else ""
        note = f"  ({entry['note']})" if "note" in entry else ""
        lines.append(f"  {status:>5}  {name}{note}{suffix}")
        for description in entry["drifts"]:
            lines.append(f"         {description}")
    lines.append(
        "GATE: " + ("PASS" if verdict["ok"] else "FAIL (out-of-tolerance drift)")
    )
    if not verdict["ok"]:
        from repro.sim.diffing import divergence_hint

        lines.append(divergence_hint("to localize a drifted run"))
    return "\n".join(lines)
