"""Cross-run trend store: every benchmark leaves a machine-readable trail.

The text tables under ``benchmarks/results`` answer "what happened this
run"; this module answers "what has been happening".  A
:class:`TrendStore` is a schema-versioned JSONL journal
(``BENCH_trends.jsonl`` at the repository root, written through
:mod:`repro.experiments.store`) that benchmarks and the conformance
checker append one record per run to, plus a ``BENCH_<name>.json``
latest-snapshot per series so CI artifacts and quick inspection never
need to scan the journal.

Records are ``{schema, version, ts, name, payload}``; foreign or
future-versioned records fail loudly on load (same policy as flight
recordings).  :meth:`TrendStore.regressions` diffs the two newest
payloads of a series with :func:`repro.experiments.store.compare_results`,
which is what ``python -m repro trends`` renders as the drift column.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.experiments.store import compare_results, load_jsonl, to_jsonable

__all__ = [
    "TREND_SCHEMA",
    "TREND_SCHEMA_VERSION",
    "TrendStore",
    "bench_json_path",
    "record_bench",
    "render_trends",
]

TREND_SCHEMA = "repro.trends"
TREND_SCHEMA_VERSION = 1
TRENDS_FILENAME = "BENCH_trends.jsonl"


def bench_json_path(name: str, root: str | Path = ".") -> Path:
    """Where the latest snapshot of series ``name`` lives."""
    return Path(root) / f"BENCH_{name}.json"


class TrendStore:
    """Append-only journal of benchmark/conformance summaries."""

    def __init__(self, root: str | Path = ".") -> None:
        self.root = Path(root)
        self.path = self.root / TRENDS_FILENAME

    def append(self, name: str, payload: Any, ts: float | None = None) -> dict:
        """Append one record for series ``name``; returns the record."""
        record = {
            "schema": TREND_SCHEMA,
            "version": TREND_SCHEMA_VERSION,
            "ts": time.time() if ts is None else ts,
            "name": name,
            "payload": to_jsonable(payload),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        return record

    def load(self) -> list[dict]:
        """All records, oldest first.  Raises ``ValueError`` on records
        from a different schema or a future version (don't silently
        misread someone else's journal)."""
        if not self.path.exists():
            return []
        records = load_jsonl(self.path)
        for index, record in enumerate(records, start=1):
            if record.get("schema") != TREND_SCHEMA:
                raise ValueError(
                    f"{self.path}: record {index} has schema "
                    f"{record.get('schema')!r}, expected {TREND_SCHEMA!r}"
                )
            if record.get("version") != TREND_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: record {index} has version "
                    f"{record.get('version')!r}, this build reads "
                    f"{TREND_SCHEMA_VERSION}"
                )
        return records

    def names(self) -> list[str]:
        return sorted({record["name"] for record in self.load()})

    def history(self, name: str) -> list[dict]:
        """All records of one series, oldest first."""
        return [record for record in self.load() if record["name"] == name]

    def latest(self, name: str) -> dict | None:
        history = self.history(name)
        return history[-1] if history else None

    def regressions(self, name: str, rel_tol: float = 0.1) -> list[str]:
        """Numeric drift between the two newest records of ``name``
        (empty when within tolerance, or with fewer than two records)."""
        history = self.history(name)
        if len(history) < 2:
            return []
        return compare_results(
            history[-2]["payload"], history[-1]["payload"], rel_tol=rel_tol
        )


def record_bench(
    name: str, payload: Any, root: str | Path = "."
) -> tuple[Path, dict]:
    """Record one benchmark summary: append to the journal AND refresh
    the ``BENCH_<name>.json`` snapshot.  Returns (snapshot path, record).

    This is the one call sites use (``benchmarks/conftest.py``, the
    conformance checker); keeping journal and snapshot in lockstep means
    the snapshot is always the journal's newest record.
    """
    store = TrendStore(root)
    record = store.append(name, payload)
    path = bench_json_path(name, root)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path, record


def render_trends(store: TrendStore, rel_tol: float = 0.1) -> str:
    """The ``python -m repro trends`` table: one row per series with its
    record count, newest timestamp, and drift vs the previous record."""
    names = store.names()
    if not names:
        return (
            f"no trend records at {store.path}\n"
            "(benchmarks and `repro check` append here as they run)"
        )
    lines = [
        f"trend store: {store.path}",
        "",
        f"{'series':<28} {'records':>7}  {'latest':<19}  drift vs previous",
    ]
    for name in names:
        history = store.history(name)
        newest = history[-1]
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(newest["ts"]))
        drifts = store.regressions(name, rel_tol=rel_tol)
        if len(history) < 2:
            drift = "(first record)"
        elif not drifts:
            drift = f"none (within {rel_tol:.0%})"
        else:
            drift = f"{len(drifts)} field(s)"
        lines.append(f"{name:<28} {len(history):>7}  {stamp:<19}  {drift}")
        for description in drifts[:8]:
            lines.append(f"{'':<28}   {description}")
        if len(drifts) > 8:
            lines.append(f"{'':<28}   ... and {len(drifts) - 8} more")
    return "\n".join(lines)
