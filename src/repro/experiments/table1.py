"""Experiment T1: regenerate the paper's Table 1 empirically.

For each protocol row we run binary BA with adversarial split inputs and
silent Byzantine faults at the row's resilience operating point, and
measure what the paper's table states analytically: resilience, expected
word complexity, termination behaviour and safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.experiments.parallel import parallel_map
from repro.experiments.protocols import PROTOCOLS, make_runner
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["Table1Row", "format_table1", "run"]


def _trial(
    name: str, n: int, seed: int, max_deliveries: int
) -> tuple[int, tuple[bool, int, int, float | None] | None]:
    """One seeded run; top-level so sweep workers can pickle it.

    Returns ``(f_used, (agreed, words, duration, max_round) | None)``.
    """
    factory, params, f = make_runner(name, n, seed=seed)
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        max_deliveries=max_deliveries,
    )
    if not (result.live and result.all_correct_decided):
        return f, None
    decision_rounds = [
        notes["decision_round"] + 1
        for notes in result.notes.values()
        if "decision_round" in notes
    ]
    max_round = max(decision_rounds) if decision_rounds else None
    return f, (result.agreement, result.words, result.duration, max_round)

# The paper's analytic claims per row (n > x*f, word complexity class).
PAPER_CLAIMS = {
    "benor": ("5f", "O(2^n)", "w.p. 1"),
    "rabin": ("10f", "O(n^2)", "w.p. 1"),
    "bracha": ("3f", "O(2^n)", "w.p. 1"),
    "cachin": ("3f", "O(n^2)", "w.p. 1"),
    "mmr": ("3f", "O(n^2)", "w.p. 1"),
    "mmr+alg1": ("~4.5f", "O(n^2)", "w.p. 1"),
    "whp_ba": ("~4.5f", "O(n log^2 n)", "whp"),
}


@dataclass(frozen=True)
class Table1Row:
    protocol: str
    n: int
    f: int
    trials: int
    terminated: int
    agreed: int
    mean_words: float
    mean_duration: float
    mean_rounds: float


def run_row(
    name: str,
    n: int,
    seeds,
    max_deliveries: int = 2_000_000,
    workers: int | None = None,
) -> Table1Row:
    """Run one protocol at its operating point over the given seeds."""
    terminated = agreed = 0
    words: list[int] = []
    durations: list[int] = []
    rounds: list[float] = []
    outcomes = parallel_map(
        _trial,
        [(name, n, seed, max_deliveries) for seed in seeds],
        workers=workers,
    )
    trials = len(outcomes)
    f_used = outcomes[-1][0] if outcomes else 0
    for _, measured in outcomes:
        if measured is None:
            continue
        run_agreed, run_words, run_duration, max_round = measured
        terminated += 1
        if run_agreed:
            agreed += 1
        words.append(run_words)
        durations.append(run_duration)
        if max_round is not None:
            rounds.append(max_round)
    return Table1Row(
        protocol=name,
        n=n,
        f=f_used,
        trials=trials,
        terminated=terminated,
        agreed=agreed,
        mean_words=mean(words) if words else float("nan"),
        mean_duration=mean(durations) if durations else float("nan"),
        mean_rounds=mean(rounds) if rounds else float("nan"),
    )


def run(
    n: int = 45, seeds=range(5), protocols=PROTOCOLS, workers: int | None = None
) -> list[Table1Row]:
    """Regenerate Table 1 at system size ``n`` over ``seeds``."""
    return [run_row(name, n, seeds, workers=workers) for name in protocols]


def format_table1(rows: list[Table1Row]) -> str:
    headers = [
        "protocol", "n >", "paper words", "paper term.",
        "n", "f", "terminated", "agreement", "mean words", "mean rounds",
        "causal depth",
    ]
    body = []
    for row in rows:
        resilience, words_class, termination = PAPER_CLAIMS[row.protocol]
        body.append([
            row.protocol, resilience, words_class, termination,
            row.n, row.f,
            f"{row.terminated}/{row.trials}",
            f"{row.agreed}/{row.terminated}" if row.terminated else "-",
            row.mean_words, row.mean_rounds, row.mean_duration,
        ])
    return format_table(headers, body)
