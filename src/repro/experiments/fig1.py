"""Experiment F1: the approver's committee structure (paper Figure 1).

Figure 1 is a diagram of the four committees one approver instance
samples: init, echo(v) per value, and ok.  We regenerate it as measured
statistics: per-committee sizes against the S1/S2 band (1±d)λ, correct/
Byzantine member counts against W and B (S3/S4), and pairwise overlaps --
the quantities Claim 1 asserts and the proofs consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean

from repro.core.committees import sample_committee
from repro.core.params import ProtocolParams
from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.experiments.tables import format_table

__all__ = ["CommitteeStats", "format_fig1", "run"]

ROLES = ("init", ("echo", 0), ("echo", 1), "ok")


@dataclass(frozen=True)
class CommitteeStats:
    role: str
    mean_size: float
    min_size: int
    max_size: int
    mean_correct: float
    min_correct: int
    mean_byzantine: float
    max_byzantine: int
    s1_violations: int  # size > (1+d) lam
    s2_violations: int  # size < (1-d) lam
    s3_violations: int  # correct < W
    s4_violations: int  # byzantine > B
    trials: int


def run(
    n: int = 200, f: int | None = None, seeds=range(20), params: ProtocolParams | None = None
) -> tuple[ProtocolParams, list[CommitteeStats]]:
    """Sample the approver's committees over fresh keysets."""
    if params is None:
        params = ProtocolParams.simulation_scale(n=n, f=f if f is not None else max(1, n // 20))
    n = params.n
    f = params.f
    W = params.committee_quorum
    B = params.committee_byzantine_bound
    high = (1 + params.d) * params.lam
    low = (1 - params.d) * params.lam

    per_role: dict[object, dict[str, list[int]]] = {
        role: {"size": [], "correct": [], "byz": []} for role in ROLES
    }
    for seed in seeds:
        pki = PKI.create(n, rng=random.Random(derive_seed("fig1", seed)))
        byzantine = set(range(f))
        for role in ROLES:
            members = sample_committee(pki, ("approver", seed), role, params)
            per_role[role]["size"].append(len(members))
            per_role[role]["correct"].append(len(members - byzantine))
            per_role[role]["byz"].append(len(members & byzantine))

    stats = []
    for role in ROLES:
        sizes = per_role[role]["size"]
        corrects = per_role[role]["correct"]
        byz = per_role[role]["byz"]
        stats.append(
            CommitteeStats(
                role=str(role),
                mean_size=mean(sizes),
                min_size=min(sizes),
                max_size=max(sizes),
                mean_correct=mean(corrects),
                min_correct=min(corrects),
                mean_byzantine=mean(byz),
                max_byzantine=max(byz),
                s1_violations=sum(1 for s in sizes if s > high),
                s2_violations=sum(1 for s in sizes if s < low),
                s3_violations=sum(1 for c in corrects if c < W),
                s4_violations=sum(1 for b in byz if b > B),
                trials=len(sizes),
            )
        )
    return params, stats


def format_fig1(params: ProtocolParams, stats: list[CommitteeStats]) -> str:
    headers = [
        "committee", "mean size", "size range", "mean correct", "min correct",
        "mean byz", "max byz", "S1 viol", "S2 viol", "S3 viol", "S4 viol",
    ]
    rows = [
        [
            s.role, s.mean_size, f"[{s.min_size}, {s.max_size}]",
            s.mean_correct, s.min_correct, s.mean_byzantine, s.max_byzantine,
            f"{s.s1_violations}/{s.trials}", f"{s.s2_violations}/{s.trials}",
            f"{s.s3_violations}/{s.trials}", f"{s.s4_violations}/{s.trials}",
        ]
        for s in stats
    ]
    header = (
        f"Approver committees at {params.describe()}  "
        f"(band ({(1 - params.d) * params.lam:.1f}, {(1 + params.d) * params.lam:.1f}))\n"
    )
    return header + format_table(headers, rows)
