"""Experiment E3: WHP-coin success rate vs d and λ (Lemma B.7).

Like E1 but for Algorithm 2: agreement probability over seeds against the
closed-form whp bound (18d² + 27d − 1)/(3(5+6d)(1−d)(1+9d)), plus the
liveness rate (the 'whp' part of the theorem -- runs that deadlock because
a committee undershot W count against liveness, not agreement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import whp_coin_success_bound
from repro.analysis.stats import BernoulliEstimate
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.experiments.parallel import parallel_map
from repro.experiments.tables import format_table
from repro.sim.runner import run_protocol

__all__ = ["WhpCoinPoint", "format_whp_coin", "run"]


@dataclass(frozen=True)
class WhpCoinPoint:
    params: ProtocolParams
    live: int
    trials: int
    agreement: BernoulliEstimate  # over live runs
    paper_bound: float


def _trial(
    params: ProtocolParams, seed: int, max_deliveries: int
) -> tuple[bool, bool]:
    """One seeded run; top-level so sweep workers can pickle it.

    Returns ``(live, agreed)`` (``agreed`` only meaningful when live).
    """
    n, f = params.n, params.f
    result = run_protocol(
        n, f, lambda ctx: whp_coin(ctx, 0),
        corrupt=set(range(f)), params=params, seed=seed,
        max_deliveries=max_deliveries,
    )
    live = result.live and len(result.returns) == n - f
    return live, live and len(result.returned_values) == 1


def run_point(
    params: ProtocolParams,
    seeds,
    max_deliveries: int = 2_000_000,
    workers: int | None = None,
) -> WhpCoinPoint:
    outcomes = parallel_map(
        _trial,
        [(params, seed, max_deliveries) for seed in seeds],
        workers=workers,
    )
    live = sum(1 for alive, _ in outcomes if alive)
    agreements = sum(1 for _, agreed in outcomes if agreed)
    return WhpCoinPoint(
        params=params,
        live=live,
        trials=len(outcomes),
        agreement=BernoulliEstimate(successes=agreements, trials=max(live, 1)),
        paper_bound=whp_coin_success_bound(params.d),
    )


def run(
    n: int = 120,
    f: int = 4,
    d_values=(0.01, 0.03, 0.05),
    lam: float | None = None,
    seeds=range(25),
    workers: int | None = None,
) -> list[WhpCoinPoint]:
    """Sweep d at fixed n, f, λ (default: feasibility-inflated 8 ln n)."""
    if lam is None:
        lam = ProtocolParams.simulation_scale(n=n, f=f).lam
    points = []
    for d in d_values:
        params = ProtocolParams(n=n, f=f, lam=lam, d=d)
        points.append(run_point(params, seeds, workers=workers))
    return points


def format_whp_coin(points: list[WhpCoinPoint]) -> str:
    headers = [
        "n", "f", "lam", "d", "W", "B", "live", "agreement", "95% CI",
        "paper bound (2*rho)",
    ]
    rows = []
    for point in points:
        p = point.params
        low, high = point.agreement.interval
        rows.append([
            p.n, p.f, p.lam, p.d, p.committee_quorum, p.committee_byzantine_bound,
            f"{point.live}/{point.trials}",
            point.agreement.mean, f"[{low:.3f}, {high:.3f}]",
            max(0.0, 2 * point.paper_bound),
        ])
    return format_table(headers, rows)
