"""Parallel multi-seed sweep execution for experiment drivers.

Monte-Carlo sweeps are embarrassingly parallel: every run is a pure
function of ``(configuration, seed)``.  :func:`parallel_map` fans such
runs out over a ``ProcessPoolExecutor`` while keeping results in
submission order, so a sweep aggregates *identical* numbers no matter
how many workers execute it -- determinism lives in the per-run seeds
(see :func:`derive_sweep_seeds`), never in scheduling.

Workers must be top-level (picklable) functions taking picklable
arguments; each driver defines a module-level ``_worker`` that rebuilds
its protocol closure inside the child process from primitive arguments.

Worker-count resolution order: explicit ``workers`` argument, else the
``REPRO_WORKERS`` environment variable, else serial.  ``workers=1`` (the
default) runs everything inline in the parent -- no executor, no pickle
round-trips -- which is also the fallback when a pool cannot be spawned
(sandboxed interpreters).  Values ``<= 0`` mean "one per CPU".
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.crypto.hashing import derive_seed

__all__ = ["derive_sweep_seeds", "parallel_map", "resolve_workers"]

T = TypeVar("T")

_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, else ``REPRO_WORKERS``, else 1.

    ``workers <= 0`` (or a non-positive env value) requests one worker
    per CPU.  The result is always >= 1.
    """
    if workers is None:
        raw = os.environ.get(_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def derive_sweep_seeds(root_seed: int, count: int, *labels: Any) -> list[int]:
    """``count`` independent per-run seeds, deterministic in ``root_seed``.

    Uses the same :func:`derive_seed` tree as the rest of the repo, so a
    sweep's run ``i`` sees one fixed seed whether it executes serially,
    in a pool, or alone in a re-run of that single index.  Float labels
    (a sweep's d or epsilon) are canonicalised via ``repr`` -- the hash
    encoding only accepts ints/strings/bytes.
    """
    canonical = tuple(
        repr(label) if isinstance(label, float) else label for label in labels
    )
    return [derive_seed(root_seed, "sweep", *canonical, i) for i in range(count)]


def parallel_map(
    worker: Callable[..., T],
    argument_tuples: Iterable[tuple],
    *,
    workers: int | None = None,
) -> list[T]:
    """Apply ``worker(*args)`` to every tuple, in submission order.

    Serial when the resolved worker count is 1 (the default); otherwise
    fans out over a ``ProcessPoolExecutor``.  Falls back to serial
    execution if the pool cannot be created (e.g. no ``fork``/``spawn``
    support in the sandbox).  Results are ordered by input position, so
    callers aggregate identically either way.
    """
    jobs = [tuple(args) for args in argument_tuples]
    count = resolve_workers(workers)
    if count <= 1 or len(jobs) <= 1:
        return [worker(*args) for args in jobs]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(count, len(jobs))) as pool:
            futures = [pool.submit(worker, *args) for args in jobs]
            return [future.result() for future in futures]
    except (OSError, ImportError, PermissionError):
        return [worker(*args) for args in jobs]


def chunk_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` runs into ``parts`` near-equal positive chunks.

    Helper for drivers that batch several runs per task to amortise
    process start-up; chunks differ by at most one and sum to ``total``.
    """
    parts = max(1, min(parts, total)) if total else 1
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)] if total else []
