"""Persist experiment results as JSON and diff them across runs.

The text tables in ``benchmarks/results`` are for humans; this module
gives the same data a machine-readable life: experiment dataclasses
serialise to JSON (NaN-safe), reload as plain dicts, and
:func:`compare_results` reports numeric drift beyond a tolerance --
enough to use any stored run as a golden baseline for regression
tracking.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any

__all__ = [
    "compare_results",
    "load_jsonl",
    "load_results",
    "save_jsonl",
    "save_results",
    "to_jsonable",
]


def to_jsonable(value: Any) -> Any:
    """Convert experiment results (nested dataclasses / tuples / dicts)
    into JSON-encodable structures.

    Floats that JSON cannot represent (NaN, ±inf) become ``None`` --
    experiments use NaN for "no data", which round-trips as null.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [to_jsonable(item) for item in items]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def save_results(name: str, payload: Any, directory: str | Path) -> Path:
    """Serialise ``payload`` to ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(to_jsonable(payload), indent=2, sort_keys=True) + "\n")
    return path


def load_results(name: str, directory: str | Path) -> Any:
    """Load a previously saved result set."""
    path = Path(directory) / f"{name}.json"
    return json.loads(path.read_text())


def save_jsonl(path: str | Path, records: Any) -> Path:
    """Write an iterable of records to ``path``, one JSON object per line.

    The streaming sibling of :func:`save_results`: flight recordings are
    schedule-sized (one line per kernel event), so they are written
    line-by-line instead of as one indented document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(to_jsonable(record), sort_keys=True))
            handle.write("\n")
    return path


def load_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL file back as a list of dicts (blank lines skipped).

    A line that is not valid JSON raises ``ValueError`` naming the file
    and line number -- the usual cause is a truncated write (killed run,
    full disk), and "line 812 is cut short" beats a bare decoder
    traceback.
    """
    records = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: line {lineno} is not valid JSON ({exc.msg}); "
                    "truncated or corrupt file?"
                ) from exc
    return records


def compare_results(
    baseline: Any, current: Any, rel_tol: float = 0.1, path: str = "$"
) -> list[str]:
    """Structural diff with numeric tolerance; returns human-readable
    drift descriptions (empty list = within tolerance everywhere).

    Numbers compare with relative tolerance ``rel_tol`` (absolute 1e-9
    floor); structure mismatches (missing keys, length changes, type
    changes) always report.
    """
    drifts: list[str] = []
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            if key not in baseline:
                drifts.append(f"{path}.{key}: only in current")
            elif key not in current:
                drifts.append(f"{path}.{key}: only in baseline")
            else:
                drifts.extend(
                    compare_results(
                        baseline[key], current[key], rel_tol, f"{path}.{key}"
                    )
                )
        return drifts
    if isinstance(baseline, list) and isinstance(current, list):
        if len(baseline) != len(current):
            return [f"{path}: length {len(baseline)} -> {len(current)}"]
        for index, (old, new) in enumerate(zip(baseline, current)):
            drifts.extend(compare_results(old, new, rel_tol, f"{path}[{index}]"))
        return drifts
    if isinstance(baseline, bool) or isinstance(current, bool):
        # bool is an int subclass; compare exactly (and flag bool<->int
        # type changes, which == would hide: True == 1).
        if baseline != current or (
            isinstance(baseline, bool) != isinstance(current, bool)
        ):
            drifts.append(f"{path}: {baseline!r} -> {current!r}")
        return drifts
    if isinstance(baseline, (int, float)) and isinstance(current, (int, float)):
        tolerance = max(abs(baseline) * rel_tol, 1e-9)
        if abs(baseline - current) > tolerance:
            drifts.append(f"{path}: {baseline} -> {current} (beyond {rel_tol:.0%})")
        return drifts
    if baseline != current:
        drifts.append(f"{path}: {baseline!r} -> {current!r}")
    return drifts
