"""`repro fuzz`: coverage-guided schedule fuzzing over a flight recording.

This is the loop that closes the ROADMAP's coverage-fuzzing item: the
coverage atlas (PR 6) is the feedback signal, seq-exact replay + ddmin
(PR 8) is the triage pipeline, and :mod:`repro.sim.fuzz` supplies the
typed mutations.  One invocation:

1. loads a recording and replays it seq-exactly under a fresh
   :class:`~repro.sim.monitors.MonitorSuite` +
   :class:`~repro.sim.coverage.CoverageProbe` -- that run's violations
   are the *baseline* (a recording of a known-broken scenario should not
   fail the fuzz gate for re-finding its own bug), and its signatures
   seed the corpus;
2. spends ``budget`` candidates mutating corpus entries
   (:func:`repro.sim.fuzz.mutate`), executing each mutant, keeping those
   whose signature sets add anything the atlas + corpus have not seen
   (novelty-guided corpus growth, recorded in the atlas journal);
3. for each distinct violating ``(monitor, property)`` target (baseline
   or not), re-executes the first offending candidate under a flight
   recorder, persists the recording, minimizes the schedule (bounded
   ddmin) and writes a ``*.divergence.json`` counterexample bundle that
   ``repro explain``/the dashboard classify like any other;
4. reports a corpus/novelty/violations summary and fails (``ok: False``)
   only when a *safety*-severity target outside the baseline appeared.

Candidates that the protocol cannot realize (the replay scheduler raises
``RuntimeError``) are skipped, exactly like the minimizer skips them.
Everything is deterministic given (recording, seed, budget) except atlas
novelty, which by design depends on what previous runs already explored.
"""

from __future__ import annotations

import json
import random
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.crypto.hashing import derive_seed
from repro.experiments.coverage_atlas import CoverageAtlas
from repro.experiments.forensics import _plan, explain_recording, resolve_protocol
from repro.experiments.trends import record_bench
from repro.sim.adversary import Adversary, RandomScheduler, ReplayScheduler
from repro.sim.coverage import CoverageProbe, signature_families, signature_set
from repro.sim.diffing import save_divergence
from repro.sim.flightrecorder import FlightRecorder, Recording, load_recording
from repro.sim.fuzz import FuzzCandidate, MutationContext, ScheduledCorruption, mutate
from repro.sim.minimize import minimize_schedule
from repro.sim.monitors import SEVERITY_SAFETY, MonitorSuite
from repro.sim.runner import run_protocol

__all__ = ["FUZZ_SCHEMA", "FUZZ_SCHEMA_VERSION", "format_fuzz", "fuzz_recording"]

FUZZ_SCHEMA = "repro.fuzz"
FUZZ_SCHEMA_VERSION = 1

DEFAULT_BUDGET = 200
DEFAULT_MINIMIZE_BUDGET = 48
DEFAULT_MAX_BUNDLES = 3


def _execute_candidate(
    header: dict[str, Any],
    plan,
    candidate: FuzzCandidate,
    explore_cap: int,
    monitors: MonitorSuite | None = None,
    coverage: CoverageProbe | None = None,
    recorder: FlightRecorder | None = None,
):
    """Run one candidate; raises ``RuntimeError`` when unrealizable."""
    if candidate.explore_seed is not None:
        scheduler = RandomScheduler(random.Random(candidate.explore_seed))
        max_deliveries = explore_cap
    else:
        scheduler = ReplayScheduler(
            list(candidate.order), seqs=list(candidate.seqs)
        )
        max_deliveries = len(candidate.order)
    corruption = (
        ScheduledCorruption(candidate.corrupt_after)
        if candidate.corrupt_after is not None
        else plan.corruption
    )
    adversary = Adversary(
        scheduler=scheduler,
        corruption=corruption,
        behavior_factory=plan.behavior_factory,
    )
    return run_protocol(
        header["n"],
        header["f"],
        plan.factory,
        adversary=adversary,
        seed=header["seed"],
        params=plan.params,
        stop_condition=plan.stop_condition,
        max_deliveries=max_deliveries,
        lossy=candidate.lossy,
        monitors=monitors,
        coverage=coverage,
        subscribers=[recorder.on_event] if recorder is not None else None,
    )


def _bundle_counterexample(
    out_prefix: str,
    index: int,
    header: dict[str, Any],
    plan,
    name: str,
    candidate: FuzzCandidate,
    target: tuple[str, str],
    explore_cap: int,
    minimize_budget: int,
) -> dict[str, Any]:
    """Persist one violating candidate: recording + minimized bundle.

    Plain schedule candidates go through :func:`explain_recording`
    unchanged (the recording alone reproduces them).  Candidates that
    need extra machinery to re-execute -- a lossy config, a re-sited
    corruption -- get the same bundle shape built here, with the
    candidate recipe embedded and minimization run under a
    candidate-aware reproducer (lossy fates are functions of the seq, so
    a lossy run still replays seq-exactly under its own config).
    """
    recorder = FlightRecorder()
    suite = MonitorSuite()
    result = _execute_candidate(
        header, plan, candidate, explore_cap, monitors=suite, recorder=recorder
    )
    recording_path = Path(f"{out_prefix}_ce{index}.jsonl")
    from repro.sim.flightrecorder import save_recording

    save_recording(recording_path, recorder, result, protocol=name)
    divergence_path = Path(f"{out_prefix}_ce{index}.divergence.json")

    plain = (
        candidate.lossy is None
        and candidate.corrupt_after is None
        and candidate.explore_seed is None
    )
    if plain:
        payload = explain_recording(
            recording_path, protocol=name, minimize_budget=minimize_budget
        )
    else:
        order = recorder.delivery_order()
        seqs = recorder.delivery_seqs()
        violation = next(
            v for v in suite.violations if (v.monitor, v.prop) == target
        )
        payload = {
            "kind": "explain",
            "recording": str(recording_path),
            "protocol": name,
            "n": header["n"],
            "f": header["f"],
            "seed": header["seed"],
            "deliveries": len(order),
            "failure": {
                "type": "violation",
                "monitor": violation.monitor,
                "prop": violation.prop,
                "severity": violation.severity,
                "message": violation.message,
                "step": violation.step,
                "violation": violation.to_dict(),
            },
        }

        def reproduce(order_part, seqs_part) -> bool:
            probe_suite = MonitorSuite()
            shrunk = replace(
                candidate,
                order=tuple(tuple(link) for link in order_part),
                seqs=tuple(seqs_part),
                explore_seed=None,
            )
            try:
                _execute_candidate(
                    header, plan, shrunk, explore_cap, monitors=probe_suite
                )
            except RuntimeError:
                return False
            return any(
                (v.monitor, v.prop) == target for v in probe_suite.violations
            )

        try:
            minimized = minimize_schedule(
                reproduce, order, seqs, max_tests=minimize_budget
            )
            payload["minimized"] = minimized.to_dict()
        except ValueError as exc:
            payload["minimize_error"] = str(exc)

    payload["source"] = "fuzz"
    payload["candidate"] = candidate.to_dict()
    save_divergence(divergence_path, payload)
    minimized = payload.get("minimized")
    return {
        "recording": str(recording_path),
        "divergence": str(divergence_path),
        "monitor": target[0],
        "property": target[1],
        "mutation": candidate.mutation,
        "failure_type": (payload.get("failure") or {}).get("type"),
        "minimized_deliveries": (
            minimized["deliveries"] if minimized else None
        ),
        "minimize_error": payload.get("minimize_error"),
    }


def fuzz_recording(
    source: str | Path | Recording,
    protocol: str | None = None,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    atlas_root: str | Path = ".",
    out: str | None = None,
    minimize_budget: int = DEFAULT_MINIMIZE_BUDGET,
    max_bundles: int = DEFAULT_MAX_BUNDLES,
) -> dict[str, Any]:
    """The full `repro fuzz` pipeline over one recording.

    Returns the JSON-ready summary payload (``schema: "repro.fuzz"``);
    ``payload["ok"]`` is False only when a safety-severity violation
    target *outside the seed recording's own baseline* was found.
    Artifacts land next to ``out`` (default: the recording path minus
    its extension, plus ``.fuzz``): ``<out>_corpus.json`` plus one
    ``<out>_ce<k>.jsonl`` + ``.divergence.json`` pair per bundled
    counterexample.
    """
    if isinstance(source, Recording):
        recording, path = source, None
    else:
        path, recording = Path(source), load_recording(source)
    if out is None:
        if path is None:
            raise ValueError("pass `out` when fuzzing an in-memory recording")
        out = str(path.with_suffix("")) + ".fuzz"
    name = resolve_protocol(recording, protocol)
    plan = _plan(recording, name)
    header = recording.header
    base_order = tuple(tuple(link) for link in recording.delivery_order())
    base_seqs = tuple(recording.delivery_seqs())
    explore_cap = max(4 * len(base_order), 64)
    ctx = MutationContext(
        corrupted=tuple(sorted(header.get("corrupted", ()))),
        deliveries=len(base_order),
    )

    payload: dict[str, Any] = {
        "schema": FUZZ_SCHEMA,
        "version": FUZZ_SCHEMA_VERSION,
        "kind": "fuzz",
        "recording": str(path) if path is not None else None,
        "protocol": name,
        "n": header.get("n"),
        "f": header.get("f"),
        "seed": header.get("seed"),
        "deliveries": len(base_order),
        "budget": budget,
    }

    # -- the seed candidate: baseline violations + seed coverage ----------------
    # Zoo scenarios carry a lossy config; the seed candidate must inherit
    # it or the recorded schedule is unrealizable (the fates that shaped
    # the recording never fire on replay).
    seed_candidate = FuzzCandidate(
        order=base_order, seqs=base_seqs, lossy=plan.lossy
    )
    seed_suite = MonitorSuite()
    seed_probe = CoverageProbe()
    try:
        _execute_candidate(
            header, plan, seed_candidate, explore_cap,
            monitors=seed_suite, coverage=seed_probe,
        )
    except RuntimeError as exc:
        payload["error"] = (
            "seed recording does not replay seq-exactly -- the protocol "
            f"build or setup differs from the one that recorded it: {exc}"
        )
        payload["ok"] = False
        return payload

    baseline_targets = {
        (v.monitor, v.prop): v.severity for v in seed_suite.violations
    }
    seed_signatures = signature_set(seed_probe.snapshot())
    payload["baseline_violations"] = sorted(
        f"{monitor}/{prop}" for monitor, prop in baseline_targets
    )

    atlas = CoverageAtlas(atlas_root)
    atlas_known = atlas.known_signatures()
    atlas.record_run(
        {
            "source": "fuzz",
            "protocol": name,
            "n": header.get("n"),
            "f": header.get("f"),
            "seed": header.get("seed"),
            "scheduler": "replay",
            "mutation": "seed",
        },
        seed_signatures,
    )
    known = atlas_known | seed_signatures
    known_families = set(signature_families(known))

    corpus: list[FuzzCandidate] = [seed_candidate]
    corpus_novelty: list[list[str]] = [sorted(seed_signatures - atlas_known)]
    rng = random.Random(derive_seed(seed, "fuzz", name))
    mutation_stats: dict[str, dict[str, int]] = {}
    new_signatures: set[str] = set()
    new_families: set[str] = set()
    found_targets: dict[tuple[str, str], str] = {}
    bundles: list[dict[str, Any]] = []
    bundled_targets: set[tuple[str, str]] = set()
    realizable = 0
    unrealizable = 0
    skipped = 0

    for index in range(budget):
        parent = rng.randrange(len(corpus))
        candidate = mutate(corpus[parent], rng, ctx)
        if candidate is None:
            skipped += 1
            continue
        candidate = replace(candidate, parent=parent)
        stats = mutation_stats.setdefault(
            candidate.mutation,
            {"tried": 0, "realizable": 0, "novel": 0, "violations": 0},
        )
        stats["tried"] += 1
        suite = MonitorSuite()
        probe = CoverageProbe()
        try:
            _execute_candidate(
                header, plan, candidate, explore_cap,
                monitors=suite, coverage=probe,
            )
        except RuntimeError:
            unrealizable += 1
            continue
        realizable += 1
        stats["realizable"] += 1

        signatures = signature_set(probe.snapshot())
        novel = signatures - known
        if novel:
            stats["novel"] += 1
            known |= novel
            new_signatures |= novel
            new_families |= set(signature_families(novel)) - known_families
            known_families |= set(signature_families(novel))
            corpus.append(candidate)
            corpus_novelty.append(sorted(novel))
            atlas.record_run(
                {
                    "source": "fuzz",
                    "protocol": name,
                    "n": header.get("n"),
                    "f": header.get("f"),
                    "seed": header.get("seed"),
                    "scheduler": (
                        "lossy+random"
                        if candidate.explore_seed is not None
                        else "replay"
                    ),
                    "mutation": candidate.mutation,
                    "candidate": index,
                },
                signatures,
            )

        if suite.violations:
            stats["violations"] += 1
        for violation in suite.violations:
            target = (violation.monitor, violation.prop)
            if target not in found_targets:
                found_targets[target] = violation.severity
            if target in bundled_targets or len(bundles) >= max_bundles:
                continue
            bundled_targets.add(target)
            bundles.append(
                _bundle_counterexample(
                    out, len(bundles), header, plan, name, candidate,
                    target, explore_cap, minimize_budget,
                )
            )

    new_safety = sorted(
        f"{monitor}/{prop}"
        for (monitor, prop), severity in found_targets.items()
        if severity == SEVERITY_SAFETY and (monitor, prop) not in baseline_targets
    )

    corpus_path = Path(f"{out}_corpus.json")
    corpus_path.parent.mkdir(parents=True, exist_ok=True)
    corpus_path.write_text(
        json.dumps(
            {
                "schema": FUZZ_SCHEMA,
                "version": FUZZ_SCHEMA_VERSION,
                "kind": "fuzz_corpus",
                "recording": payload["recording"],
                "protocol": name,
                "entries": [
                    dict(entry.to_dict(), new_signatures=novelty)
                    for entry, novelty in zip(corpus, corpus_novelty)
                ],
            },
            indent=2,
        )
        + "\n"
    )

    payload.update(
        {
            "candidates": budget,
            "realizable": realizable,
            "unrealizable": unrealizable,
            "skipped": skipped,
            "violating_targets": sorted(
                f"{monitor}/{prop} [{severity}]"
                for (monitor, prop), severity in found_targets.items()
            ),
            "new_violations": new_safety,
            "mutations": {
                name: mutation_stats[name] for name in sorted(mutation_stats)
            },
            "counterexamples": bundles,
            "corpus_file": str(corpus_path),
            "novelty": {
                "corpus_size": len(corpus),
                "new_signatures": len(new_signatures),
                "new_families": sorted(new_families),
                "atlas_known_before": len(atlas_known),
                "atlas_known_after": len(known),
            },
            "ok": not new_safety,
        }
    )

    # One trend-store record per fuzz run so `repro trends` and the
    # dashboard track the campaign.  Atlas-dependent quantities (corpus
    # growth, realizability -- both functions of what previous runs
    # already explored) live under "novelty", which the trend gate
    # excludes; the stable configuration stays at the top level.
    bench_path, _ = record_bench(
        "fuzzing",
        {
            "recording": payload["recording"],
            "protocol": name,
            "n": header.get("n"),
            "f": header.get("f"),
            "seed": header.get("seed"),
            "budget": budget,
            "deliveries": len(base_order),
            "baseline_violations": payload["baseline_violations"],
            "new_violations": new_safety,
            "ok": payload["ok"],
            "novelty": dict(
                payload["novelty"],
                realizable=realizable,
                unrealizable=unrealizable,
                skipped=skipped,
                violating_targets=len(found_targets),
                counterexamples=len(bundles),
            ),
        },
        root=atlas_root,
    )
    payload["bench_file"] = str(bench_path)
    return payload


def format_fuzz(payload: dict[str, Any]) -> str:
    """Human rendering of a :func:`fuzz_recording` payload."""
    lines = []
    if payload.get("recording"):
        lines.append(f"fuzz: {payload['recording']}")
    lines.append(
        f"run: protocol={payload.get('protocol')} n={payload.get('n')} "
        f"f={payload.get('f')} seed={payload.get('seed')} "
        f"deliveries={payload.get('deliveries')}"
    )
    if payload.get("error"):
        lines.append(f"error: {payload['error']}")
        return "\n".join(lines)
    baseline = payload.get("baseline_violations") or []
    lines.append(
        "baseline violations: "
        + (", ".join(baseline) if baseline else "none (seed replay clean)")
    )
    lines.append(
        f"budget {payload['budget']}: {payload['realizable']} realizable, "
        f"{payload['unrealizable']} unrealizable, "
        f"{payload['skipped']} mutation no-ops"
    )
    novelty = payload.get("novelty", {})
    lines.append(
        f"corpus: {novelty.get('corpus_size', 1)} entries "
        f"(+{novelty.get('new_signatures', 0)} new signatures vs atlas of "
        f"{novelty.get('atlas_known_before', 0)}; "
        f"new families: "
        + (", ".join(novelty.get("new_families") or []) or "none")
        + ")"
    )
    lines.append("mutation yield (tried / realizable / novel / violating):")
    for name, stats in (payload.get("mutations") or {}).items():
        lines.append(
            f"  {name:<16} {stats['tried']:>4} / {stats['realizable']:>4} / "
            f"{stats['novel']:>4} / {stats['violations']:>4}"
        )
    targets = payload.get("violating_targets") or []
    lines.append(
        "violating targets: " + (", ".join(targets) if targets else "none")
    )
    for bundle in payload.get("counterexamples") or []:
        shrunk = (
            f"minimized to {bundle['minimized_deliveries']} deliveries"
            if bundle.get("minimized_deliveries") is not None
            else f"not minimized ({bundle.get('minimize_error') or 'n/a'})"
        )
        lines.append(
            f"  counterexample [{bundle['monitor']}/{bundle['property']}] "
            f"via {bundle['mutation']}: {bundle['recording']} ({shrunk})"
        )
    new = payload.get("new_violations") or []
    if new:
        lines.append(
            "NEW safety violations (outside the recording's baseline): "
            + ", ".join(new)
        )
    lines.append("ok" if payload.get("ok") else "FUZZ GATE FAILED")
    return "\n".join(lines)
