"""Experiment E2: committee properties S1-S4 (Claim 1) -- Monte-Carlo
violation rates against the Chernoff bounds of Appendix A.

Sampling only, no network: for each n we draw fresh keysets, sample one
committee per seed, and count how often each property fails, next to the
analytic tail bound.  This makes the 'whp' claim quantitative at finite n
-- including showing honestly how slowly the paper's λ = 8 ln n converges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.bounds import committee_property_bounds
from repro.core.committees import sample_committee
from repro.core.params import ProtocolParams
from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.experiments.tables import format_table

__all__ = ["BoundsPoint", "format_committee_bounds", "run"]


@dataclass(frozen=True)
class BoundsPoint:
    params: ProtocolParams
    trials: int
    violations: dict[str, int]  # S1..S4 -> count
    chernoff: dict[str, float]  # S1..S4 -> analytic bound


def run_point(params: ProtocolParams, seeds) -> BoundsPoint:
    n, f = params.n, params.f
    W = params.committee_quorum
    B = params.committee_byzantine_bound
    high = (1 + params.d) * params.lam
    low = (1 - params.d) * params.lam
    violations = {"S1": 0, "S2": 0, "S3": 0, "S4": 0}
    trials = 0
    byzantine = set(range(f))
    for seed in seeds:
        trials += 1
        pki = PKI.create(n, rng=random.Random(derive_seed("e2", n, seed)))
        members = sample_committee(pki, ("e2", seed), "probe", params)
        size = len(members)
        correct = len(members - byzantine)
        byz = size - correct
        if size > high:
            violations["S1"] += 1
        if size < low:
            violations["S2"] += 1
        if correct < W:
            violations["S3"] += 1
        if byz > B:
            violations["S4"] += 1
    return BoundsPoint(
        params=params,
        trials=trials,
        violations=violations,
        chernoff=committee_property_bounds(params),
    )


def run(
    n_values=(100, 400, 1600), f_fraction: float = 0.1, seeds=range(60),
    paper_lambda: bool = True,
) -> list[BoundsPoint]:
    """Sweep n; with ``paper_lambda`` use λ = 8 ln n and mid-window d,
    otherwise the feasibility-inflated simulation defaults."""
    import math

    points = []
    for n in n_values:
        f = max(1, int(f_fraction * n))
        if paper_lambda:
            lam = 8 * math.log(n)
            eps = 1 / 3 - f / n
            d_high = eps / 3 - 1 / (3 * lam)
            d = max(min(0.05, d_high), 0.02)
            params = ProtocolParams(n=n, f=f, lam=lam, d=d)
        else:
            params = ProtocolParams.simulation_scale(n=n, f=f)
        points.append(run_point(params, seeds))
    return points


def format_committee_bounds(points: list[BoundsPoint]) -> str:
    headers = ["n", "f", "lam", "d"]
    for name in ("S1", "S2", "S3", "S4"):
        headers += [f"{name} measured", f"{name} Chernoff"]
    rows = []
    for point in points:
        row = [point.params.n, point.params.f, point.params.lam, point.params.d]
        for name in ("S1", "S2", "S3", "S4"):
            row.append(point.violations[name] / point.trials)
            row.append(min(1.0, point.chernoff[name]))
        rows.append(row)
    return format_table(headers, rows)
