"""The experiment harness: one module per artefact in DESIGN.md's index.

Each module exposes ``run(...)`` returning structured rows and
``format_table(rows)`` rendering the same table the paper's artefact
shows.  The ``benchmarks/`` tree drives these with publication-scale
parameters; the test suite drives them with smoke-scale ones.

=========  ====================================================
T1         Table 1 -- all six BA protocols compared empirically
F1         Figure 1 -- the approver's four sampled committees
E1         Theorem 4.13 -- shared-coin success rate vs epsilon
E1b        Lemma 4.2 -- common values counted from run traces
E2         Claim 1 -- S1-S4 violation rates vs Chernoff bounds
E3         Lemma B.7 -- WHP-coin success rate vs d and lambda
E4         Section 6.2 -- word-complexity scaling and crossover
E5         Lemma 6.14 -- O(1) expected rounds, independent of n
E6         Definition 2.1 -- delayed-adaptivity ablation
E7         Section 4 -- MMR instantiated with the Algorithm 1 coin
E8         Definition 6.6 -- safety/liveness violation sweep
X1         Section 7 future work -- probability-1-termination hybrid
X2         Section 6.1 ablation -- the ok-justification / lambda^2 trade
=========  ====================================================

Modules: ``table1``, ``fig1``, ``coin_success``, ``common_values``,
``committee_bounds``, ``whp_coin_sweep``, ``scaling``, ``rounds``,
``ablation``, ``mmr_ourcoin``, ``safety``, ``hybrid_fallback``,
``justification_ablation``; plus ``protocols`` (the registry),
``parallel`` (deterministic multi-seed sweep execution),
``tables``/``ascii_plot`` (rendering), ``store`` (JSON persistence
with drift comparison), ``trends`` (the cross-run BENCH_* trend store)
and ``conformance`` (the monitored `repro check` sweep).
"""

from repro.experiments.tables import format_table
from repro.experiments.parallel import derive_sweep_seeds, parallel_map, resolve_workers
from repro.experiments.protocols import PROTOCOLS, make_runner

__all__ = [
    "PROTOCOLS",
    "derive_sweep_seeds",
    "format_table",
    "make_runner",
    "parallel_map",
    "resolve_workers",
]
