"""Uniform construction of every Table 1 protocol for the harness.

``make_runner(name, n, f, seed)`` returns ``(factory, params)`` ready for
:func:`repro.sim.runner.run_protocol`: the per-protocol trusted setup
(lottery / threshold dealers, committee parameters) is derived
deterministically from the seed so sweeps are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.baselines.benor import benor_agreement
from repro.baselines.bracha import bracha_agreement
from repro.baselines.cachin import cachin_agreement
from repro.baselines.mmr import local_coin, make_shared_coin, mmr_agreement
from repro.baselines.rabin import rabin_agreement
from repro.core.agreement import byzantine_agreement
from repro.core.params import ProtocolParams
from repro.crypto.hashing import derive_seed
from repro.crypto.threshold import RabinLotteryDealer, ThresholdCoinDealer
from repro.sim.process import ProcessContext, Protocol, ProtocolFactory

__all__ = ["PROTOCOLS", "default_f", "make_runner"]

# Table 1 resilience operating points, as a fraction of n (conservative so
# protocols run *within* their stated bounds).
_RESILIENCE_FRACTION = {
    "benor": 1 / 6,       # n > 5f
    "bracha": 1 / 4,      # n > 3f
    "rabin": 1 / 12,      # n > 10f
    "cachin": 1 / 4,      # n > 3f
    "mmr": 1 / 4,         # n > 3f
    "mmr+alg1": 1 / 5,    # (1/3 - eps) n with eps comfortably positive
    "whp_ba": 1 / 12,     # small f keeps committee liveness margins
}

PROTOCOLS = tuple(_RESILIENCE_FRACTION)


def default_f(name: str, n: int) -> int:
    """The corruption budget each protocol is benchmarked at."""
    if name not in _RESILIENCE_FRACTION:
        raise ValueError(f"unknown protocol {name!r}; one of {PROTOCOLS}")
    return max(1, int(_RESILIENCE_FRACTION[name] * n)) if n > 4 else 0


def make_runner(
    name: str,
    n: int,
    f: int | None = None,
    seed: int = 0,
    value_fn: Callable[[ProcessContext], int] | None = None,
    max_rounds: int | None = None,
    whp_sigmas: float = 4.0,
) -> tuple[ProtocolFactory, ProtocolParams, int]:
    """Build ``(protocol_factory, params, f)`` for one named protocol.

    ``value_fn`` maps a context to the binary proposal (default: split
    inputs, ``pid % 2`` -- the adversarial input pattern).
    """
    if f is None:
        f = default_f(name, n)
    value_fn = value_fn or (lambda ctx: ctx.pid % 2)
    setup_rng = random.Random(derive_seed(seed, "dealer", name, n, f))

    if name == "whp_ba":
        # 4-sigma committee margins: at harness scales a BA run samples
        # ~10 committees per round, so 3-sigma tails (~0.07% each) still
        # deadlock a few percent of runs; 4 sigma cuts that ~6x while
        # barely moving lambda.  Residual shortfalls are the protocol's
        # honest 'whp' and the benches tolerate/report them.
        params = ProtocolParams.simulation_scale(n=n, f=f, safety_sigmas=whp_sigmas)

        def factory(ctx: ProcessContext) -> Protocol:
            return byzantine_agreement(ctx, value_fn(ctx), max_rounds=max_rounds)

        return factory, params, f

    params = ProtocolParams(n=n, f=f)
    if name == "benor":
        def factory(ctx: ProcessContext) -> Protocol:
            return benor_agreement(ctx, value_fn(ctx), max_rounds=max_rounds)
    elif name == "bracha":
        def factory(ctx: ProcessContext) -> Protocol:
            return bracha_agreement(ctx, value_fn(ctx), max_rounds=max_rounds)
    elif name == "rabin":
        dealer = RabinLotteryDealer(n, f + 1, setup_rng)

        def factory(ctx: ProcessContext) -> Protocol:
            return rabin_agreement(ctx, value_fn(ctx), dealer, max_rounds=max_rounds)
    elif name == "cachin":
        dealer = ThresholdCoinDealer(n, f + 1, setup_rng)

        def factory(ctx: ProcessContext) -> Protocol:
            return cachin_agreement(ctx, value_fn(ctx), dealer, max_rounds=max_rounds)
    elif name == "mmr":
        def factory(ctx: ProcessContext) -> Protocol:
            return mmr_agreement(ctx, value_fn(ctx), local_coin, max_rounds=max_rounds)
    elif name == "mmr+alg1":
        coin = make_shared_coin()

        def factory(ctx: ProcessContext) -> Protocol:
            return mmr_agreement(ctx, value_fn(ctx), coin, max_rounds=max_rounds)
    else:
        raise ValueError(f"unknown protocol {name!r}; one of {PROTOCOLS}")
    return factory, params, f
