"""`repro degrade`: how BA-WHP degrades as the network gets hostile.

The paper's guarantees -- agreement and termination WHP, O(n polylog n)
words -- are stated for reliable asynchronous links.  The lossy-link
extension (:class:`repro.sim.network.LossyLinkConfig`) can break a run;
this module measures *curves*, not pass/fail: it sweeps a hostility rate
across the scenario zoo (:mod:`repro.experiments.scenarios`) and many
seeds per point, and reports per rate

* decide-rate (with a Wilson interval), deadlock and step-cap fractions,
* rounds-to-decide and coin invocation/success-rate quantiles,
* words sent by correct processes vs words actually delivered,
* aggregate link-fault counters (drops/duplicates/reorders/corruptions),
* the monitor suite's whp-anomaly and safety-violation rates,

plus the estimated *knee*: the first swept rate whose decide-rate falls
below a threshold -- where the WHP argument stops carrying.

Everything is deterministic given ``(scenario, n, rates, seeds)``: runs
are seeded ``0..seeds-1``, lossy fates are functions of (seed, seq), and
the payload carries no timestamps, so the same sweep always produces the
same curve JSON (``benchmarks/bench_degradation.py`` asserts this).  The
``--smoke`` configuration feeds the trend store's ``degradation`` series
(gated by ``repro trends --gate``); full sweeps write standalone
``degradation_<scenario>.json`` artifacts that the dashboard renders as
rate-vs-metric curves with knee markers.  Failing cells export one
recording per swept rate (protocol header ``scenario@rate``), so
``python -m repro explain`` can replay and classify any point on a
curve from its file alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.stats import wilson_interval
from repro.experiments.scenarios import (
    make_scenario,
    parse_scenario_name,
    scenario_adversary,
)
from repro.sim.monitors import SEVERITY_WHP, MonitorSuite
from repro.sim.runner import RunResult, run_protocol

__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_THRESHOLD",
    "SMOKE_SWEEP",
    "format_degradation",
    "run_cell",
    "save_degradation",
    "smoke_degradation",
    "sweep_degradation",
]

DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1)
DEFAULT_THRESHOLD = 0.5

# The CI conformance job's configuration: tiny (2 rates x 2 seeds x one
# scenario) but it walks the whole pipeline, and its payload is the
# trend store's `degradation` series -- so it must be byte-stable across
# machines.  `benchmarks/bench_degradation.py --smoke` records the same
# payload (the journal dedupes the twin).
SMOKE_SWEEP: dict[str, Any] = {
    "scenario": "lossy_uniform",
    "n": 8,
    "rates": (0.0, 0.3),
    "seeds": 2,
}


def _quantile(values: Sequence[float], q: float) -> float | None:
    """Nearest-rank quantile; ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _round(value: float | None, digits: int = 4) -> float | None:
    return None if value is None else round(value, digits)


def run_cell(
    scenario: str,
    n: int,
    rate: float,
    seed: int,
    f: int | None = None,
    max_deliveries: int | None = None,
    subscribers: list | None = None,
) -> tuple[Any, RunResult, MonitorSuite]:
    """Execute one (scenario, rate, seed) cell with a fresh monitor suite.

    Returns ``(spec, result, suite)``; the spec's ``name`` is the
    canonical rate-suffixed scenario name a recording of this cell
    should carry as its protocol header.
    """
    spec = make_scenario(scenario, n, f=f, seed=seed, rate=rate)
    suite = MonitorSuite()
    kwargs: dict[str, Any] = {}
    if max_deliveries is not None:
        kwargs["max_deliveries"] = max_deliveries
    result = run_protocol(
        n,
        spec.f,
        spec.factory,
        adversary=scenario_adversary(spec, seed),
        seed=seed,
        params=spec.params,
        stop_condition=spec.stop_condition,
        lossy=spec.lossy,
        monitors=suite,
        subscribers=subscribers,
        **kwargs,
    )
    return spec, result, suite


def _aggregate_point(
    rate: float, cells: list[tuple[RunResult, MonitorSuite]]
) -> dict[str, Any]:
    """Fold one rate's per-seed runs into a curve point."""
    runs = len(cells)
    decided = sum(1 for result, _ in cells if result.all_correct_decided)
    deadlocked = sum(1 for result, _ in cells if result.deadlocked)
    exhausted = sum(1 for result, _ in cells if result.exhausted)
    whp_anomalies = sum(
        1
        for _, suite in cells
        if any(v.severity == SEVERITY_WHP for v in suite.violations)
    )
    safety = sum(1 for _, suite in cells if suite.safety_violations)

    rounds = [
        float(len(result.rounds))
        for result, _ in cells
        if result.all_correct_decided and result.rounds
    ]
    coin_counts = [float(len(result.coin_invocations)) for result, _ in cells]
    coin_success = [
        result.coin_success_rate
        for result, _ in cells
        if result.coin_invocations
    ]
    faults = {"drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0}
    for result, _ in cells:
        for fate, count in result.lossy_counters.items():
            faults[fate] += count

    low, high = wilson_interval(decided, runs)
    return {
        "rate": rate,
        "runs": runs,
        "decided_runs": decided,
        "decide_rate": _round(decided / runs),
        # "interval" keys are gate-excluded by name: the bound depends on
        # the sample size, which a config tweak legitimately changes.
        "decide_rate_interval": [_round(low), _round(high)],
        "deadlock_fraction": _round(deadlocked / runs),
        "exhausted_fraction": _round(exhausted / runs),
        "whp_anomaly_rate": _round(whp_anomalies / runs),
        "safety_violation_rate": _round(safety / runs),
        "rounds_to_decide": {
            "median": _quantile(rounds, 0.5),
            "p90": _quantile(rounds, 0.9),
        },
        "coin_invocations": {
            "median": _quantile(coin_counts, 0.5),
            "p90": _quantile(coin_counts, 0.9),
        },
        "coin_success_rate": {
            "median": _round(_quantile(coin_success, 0.5)),
            "p90": _round(_quantile(coin_success, 0.9)),
        },
        "words_sent_mean": _round(
            sum(result.words for result, _ in cells) / runs, 1
        ),
        "words_delivered_mean": _round(
            sum(result.words_delivered for result, _ in cells) / runs, 1
        ),
        "deliveries_mean": _round(
            sum(result.deliveries for result, _ in cells) / runs, 1
        ),
        "link_faults": faults,
    }


def _find_knee(
    points: list[dict[str, Any]], threshold: float
) -> dict[str, Any] | None:
    """The first swept rate whose decide-rate drops below ``threshold``."""
    for point in points:
        if point["decide_rate"] < threshold:
            return {
                "rate": point["rate"],
                "decide_rate": point["decide_rate"],
                "threshold": threshold,
                "decide_rate_interval": list(point["decide_rate_interval"]),
            }
    return None


def sweep_degradation(
    scenario: str = "lossy_uniform",
    n: int = 8,
    rates: Sequence[float] = DEFAULT_RATES,
    seeds: int = 8,
    f: int | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    max_deliveries: int | None = None,
    export_dir: str | Path | None = None,
) -> dict[str, Any]:
    """Sweep ``scenario`` across ``rates`` x ``seeds`` and build the curve.

    ``max_deliveries`` caps each run (default: ``400 * n**2``, roughly
    20x a healthy run -- a run that hits it counts as ``exhausted``, the
    lossy analogue of a livelock).  When ``export_dir`` is given, each
    rate with at least one failing run exports that run's recording
    (re-executed with a flight recorder -- runs are deterministic) named
    ``cell_<scenario>_r<rate>_s<seed>.jsonl`` with the rate-suffixed
    scenario as its protocol header, ready for ``repro explain``.
    """
    base, _ = parse_scenario_name(scenario)
    rates = [float(rate) for rate in rates]
    if seeds < 1:
        raise ValueError(f"need at least one seed per point, got {seeds}")
    cap = max_deliveries if max_deliveries is not None else 400 * n * n

    points: list[dict[str, Any]] = []
    exports: list[str] = []
    spec_f: int | None = None
    for rate in rates:
        cells: list[tuple[RunResult, MonitorSuite]] = []
        failing_seed: int | None = None
        for seed in range(seeds):
            spec, result, suite = run_cell(
                base, n, rate, seed, f=f, max_deliveries=cap
            )
            spec_f = spec.f
            cells.append((result, suite))
            if failing_seed is None and not result.all_correct_decided:
                failing_seed = seed
        points.append(_aggregate_point(rate, cells))
        if export_dir is not None and failing_seed is not None:
            exports.append(
                _export_cell(export_dir, base, n, rate, failing_seed, f, cap)
            )

    payload: dict[str, Any] = {
        "kind": "degradation",
        "scenario": base,
        "n": n,
        "f": spec_f,
        "seeds": seeds,
        "rates": rates,
        "threshold": threshold,
        "max_deliveries": cap,
        "points": points,
        "knee": _find_knee(points, threshold),
    }
    if exports:
        payload["exports"] = exports
    return payload


def _export_cell(
    export_dir: str | Path,
    scenario: str,
    n: int,
    rate: float,
    seed: int,
    f: int | None,
    cap: int,
) -> str:
    """Re-run one failing cell with the flight recorder and persist it."""
    from repro.sim.flightrecorder import FlightRecorder, save_recording

    recorder = FlightRecorder()
    spec, result, _ = run_cell(
        scenario,
        n,
        rate,
        seed,
        f=f,
        max_deliveries=cap,
        subscribers=[recorder.on_event],
    )
    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    out = directory / f"cell_{scenario}_r{rate:g}_s{seed}.jsonl"
    save_recording(out, recorder, result, protocol=spec.name)
    return out.name


def smoke_degradation() -> dict[str, Any]:
    """The CI smoke sweep's payload (see :data:`SMOKE_SWEEP`)."""
    return sweep_degradation(**SMOKE_SWEEP)


def save_degradation(out: str | Path, payload: dict[str, Any]) -> Path:
    """Persist one curve artifact (sorted keys: byte-stable given config)."""
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_degradation(payload: dict[str, Any]) -> str:
    """Human rendering of one sweep: the curve table plus the knee."""
    lines = [
        f"degradation sweep: scenario={payload['scenario']} "
        f"n={payload['n']} f={payload['f']} seeds={payload['seeds']} "
        f"(cap {payload['max_deliveries']} deliveries/run)",
        "",
        f"{'rate':>6}  {'decide':>6} {'95% CI':>14}  {'dead':>5} {'exh':>5} "
        f"{'whp!':>5}  {'rounds':>6} {'coins':>6} {'coin-ok':>7}  "
        f"{'words sent':>10} {'delivered':>10}  faults(d/u/r/c)",
    ]
    for point in payload["points"]:
        low, high = point["decide_rate_interval"]
        rounds = point["rounds_to_decide"]["median"]
        coins = point["coin_invocations"]["median"]
        coin_ok = point["coin_success_rate"]["median"]
        faults = point["link_faults"]
        lines.append(
            f"{point['rate']:>6g}  {point['decide_rate']:>6.2f} "
            f"[{low:.2f}, {high:.2f}]  "
            f"{point['deadlock_fraction']:>5.2f} "
            f"{point['exhausted_fraction']:>5.2f} "
            f"{point['whp_anomaly_rate']:>5.2f}  "
            f"{rounds if rounds is not None else '-':>6} "
            f"{coins if coins is not None else '-':>6} "
            f"{coin_ok if coin_ok is not None else '-':>7}  "
            f"{point['words_sent_mean']:>10.1f} "
            f"{point['words_delivered_mean']:>10.1f}  "
            f"{faults['drops']}/{faults['duplicates']}"
            f"/{faults['reorders']}/{faults['corruptions']}"
        )
    knee = payload["knee"]
    if knee is None:
        lines.append(
            f"\nknee: none -- decide-rate stayed >= {payload['threshold']:.2f} "
            "across the swept rates"
        )
    else:
        low, high = knee["decide_rate_interval"]
        lines.append(
            f"\nknee: rate {knee['rate']:g} -- decide-rate "
            f"{knee['decide_rate']:.2f} [{low:.2f}, {high:.2f}] fell below "
            f"{knee['threshold']:.2f}"
        )
    for name in payload.get("exports", []):
        lines.append(f"failing cell recording -> {name}")
    return "\n".join(lines)
