"""`python -m repro check`: sweep protocols with the conformance monitors on.

Runs each requested protocol over a seed sweep with one
:class:`~repro.sim.monitors.MonitorSuite` attached per protocol (the
suite accumulates across seeds -- that is what gives the coin-rho and
S1-S4 Wilson intervals their trials), renders a conformance table per
paper property, and persists the full payload as ``BENCH_conformance.json``
through the trend store, so conformance itself has a cross-run
trajectory.

Exit discipline (used verbatim by the CI conformance job): any
``"safety"``-severity violation -- Agreement, Validity, a committee
membership lie -- makes the check fail; ``"whp"``-severity flags are
reported with their observed rate against the paper's bound but do not
fail the run, because the paper *promises* they happen with positive
probability.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.experiments.protocols import make_runner
from repro.experiments.trends import record_bench
from repro.sim.monitors import MonitorSuite
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = [
    "CONFORMANCE_SCHEMA",
    "CONFORMANCE_SCHEMA_VERSION",
    "DEFAULT_PROTOCOLS",
    "format_check",
    "run_check",
    "write_conformance",
]

CONFORMANCE_SCHEMA = "repro.conformance"
CONFORMANCE_SCHEMA_VERSION = 1

# whp_ba exercises every monitor (coin, committees, approver, safety);
# mmr+alg1 adds the Algorithm 1 shared-coin rho estimate.
DEFAULT_PROTOCOLS = ("whp_ba", "mmr+alg1")


def run_check(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    n: int = 24,
    seeds: Iterable[int] = range(6),
    max_deliveries: int | None = None,
) -> dict[str, Any]:
    """Run the monitored sweep; returns the JSON-ready conformance payload."""
    seeds = list(seeds)
    payload: dict[str, Any] = {
        "schema": CONFORMANCE_SCHEMA,
        "version": CONFORMANCE_SCHEMA_VERSION,
        "n": n,
        "seeds": seeds,
        "protocols": {},
    }
    total_safety = 0
    for name in protocols:
        suite = MonitorSuite()
        rows = []
        for seed in seeds:
            factory, params, f = make_runner(name, n, seed=seed)
            kwargs: dict[str, Any] = {}
            if max_deliveries is not None:
                kwargs["max_deliveries"] = max_deliveries
            result = run_protocol(
                n, f, factory, corrupt=set(range(f)), params=params,
                stop_condition=stop_when_all_decided, seed=seed,
                monitors=suite, **kwargs,
            )
            rows.append(
                {
                    "seed": seed,
                    "live": result.live,
                    "all_correct_decided": result.all_correct_decided,
                    "words": result.words,
                    "duration": result.duration,
                    "deliveries": result.deliveries,
                }
            )
        conformance = suite.report()
        total_safety += conformance["safety_violations"]
        payload["protocols"][name] = {
            "f": f,
            "runs": rows,
            "conformance": conformance,
        }
    payload["safety_violations"] = total_safety
    payload["ok"] = total_safety == 0
    return payload


def write_conformance(payload: dict[str, Any], root: str = "."):
    """Persist the payload as ``BENCH_conformance.json`` + a trend record."""
    path, _ = record_bench("conformance", payload, root=root)
    return path


def _rate_cell(entry: dict[str, Any], bound: float | None, kind: str) -> str:
    if not entry.get("trials"):
        return "(no trials)"
    interval = entry.get("interval")
    lo, hi = (interval if interval else (0.0, 1.0))
    cell = f"{entry['successes']}/{entry['trials']}"
    cell += f"  rate={entry['mean']:.3f} [{lo:.3f}, {hi:.3f}]"
    if bound is not None:
        cell += f"  {kind}{bound:.3g}"
        cell += "" if entry.get("conformant", True) else "  ** NON-CONFORMANT"
    return cell


def format_check(payload: dict[str, Any]) -> str:
    """Human-readable conformance tables for the whole sweep."""
    lines = [
        f"conformance check: n={payload['n']}, seeds={payload['seeds']}",
    ]
    for name, entry in payload["protocols"].items():
        conformance = entry["conformance"]
        monitors = conformance["monitors"]
        decided = sum(1 for row in entry["runs"] if row["all_correct_decided"])
        lines.append("")
        lines.append(
            f"== {name} (f={entry['f']}): {decided}/{len(entry['runs'])} runs "
            f"decided, {conformance['safety_violations']} safety violations, "
            f"{conformance['whp_flags']} whp flags"
        )
        safety = monitors.get("safety")
        if safety:
            lines.append(
                f"  safety    : {safety['decisions_checked']} decisions checked; "
                f"Agreement violations={safety['agreement_violations']}, "
                f"Validity violations={safety['validity_violations']}"
            )
        committee = monitors.get("committee")
        if committee and committee["committees_checked"]:
            lines.append(
                f"  committees: {committee['committees_checked']} checked "
                "(failure rate vs Chernoff bound)"
            )
            for prop, stats in committee["properties"].items():
                failures = {
                    "successes": stats["successes"],
                    "trials": stats["trials"],
                    "mean": stats["mean"],
                    "interval": stats["interval"],
                    "conformant": stats["conformant"],
                }
                lines.append(
                    f"    {prop}: "
                    + _rate_cell(failures, stats.get("chernoff_bound"), "bound=")
                )
        coin = monitors.get("coin")
        if coin and coin["variants"]:
            lines.append("  coins     : (success rate vs rho bound)")
            for variant, stats in coin["variants"].items():
                lines.append(
                    f"    {variant}: "
                    + _rate_cell(stats, stats.get("rho_bound"), "rho>=")
                )
        approver = monitors.get("approver")
        if approver and approver["instances_checked"]:
            ga = approver["graded_agreement"]
            grades = ", ".join(
                f"|{grade}|x{count}" for grade, count in approver["grades"].items()
            )
            lines.append(
                f"  approvers : {approver['instances_checked']} instances; "
                f"Graded Agreement {ga['successes']}/{ga['trials']}; "
                f"grades {grades}"
            )
        for violation in conformance["violations"]:
            lines.append(
                f"  ! [{violation['severity']}] "
                f"{violation['monitor']}/{violation['property']} "
                f"step {violation['step']}: {violation['message']}"
            )
    lines.append("")
    lines.append("RESULT: " + ("OK" if payload["ok"] else "SAFETY VIOLATIONS"))
    return "\n".join(lines)
