"""`python -m repro check`: sweep protocols with the conformance monitors on.

Runs each requested protocol over a seed sweep with one
:class:`~repro.sim.monitors.MonitorSuite` attached per protocol (the
suite accumulates across seeds -- that is what gives the coin-rho and
S1-S4 Wilson intervals their trials), renders a conformance table per
paper property, and persists the full payload as ``BENCH_conformance.json``
through the trend store, so conformance itself has a cross-run
trajectory.

Exit discipline (used verbatim by the CI conformance job): any
``"safety"``-severity violation -- Agreement, Validity, a committee
membership lie -- makes the check fail; ``"whp"``-severity flags are
reported with their observed rate against the paper's bound but do not
fail the run, because the paper *promises* they happen with positive
probability.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.experiments.protocols import make_runner
from repro.experiments.trends import record_bench
from repro.sim.coverage import CoverageProbe, signature_set
from repro.sim.monitors import MonitorSuite
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = [
    "CONFORMANCE_SCHEMA",
    "CONFORMANCE_SCHEMA_VERSION",
    "DEFAULT_PROTOCOLS",
    "coverage_gate",
    "format_check",
    "format_coverage_gate",
    "run_check",
    "write_conformance",
]

CONFORMANCE_SCHEMA = "repro.conformance"
CONFORMANCE_SCHEMA_VERSION = 1

# whp_ba exercises every monitor (coin, committees, approver, safety);
# mmr+alg1 adds the Algorithm 1 shared-coin rho estimate.
DEFAULT_PROTOCOLS = ("whp_ba", "mmr+alg1")


def run_check(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    n: int = 24,
    seeds: Iterable[int] = range(6),
    max_deliveries: int | None = None,
    coverage: bool = True,
    atlas: Any = None,
) -> dict[str, Any]:
    """Run the monitored sweep; returns the JSON-ready conformance payload.

    With ``coverage`` on (the default) every run also carries a
    :class:`~repro.sim.coverage.CoverageProbe`, each row reports how
    many schedule signatures that seed covered and how many were *new*
    -- unseen by any earlier run of the sweep, and, when an ``atlas``
    (:class:`~repro.experiments.coverage_atlas.CoverageAtlas`) is
    passed, unseen by any previously recorded run at all -- and the
    payload gains a sweep-level ``coverage`` summary.  Each (protocol,
    seed) run appends one record to the atlas, so conformance sweeps
    are what grow ``BENCH_coverage_atlas.jsonl``.
    """
    seeds = list(seeds)
    payload: dict[str, Any] = {
        "schema": CONFORMANCE_SCHEMA,
        "version": CONFORMANCE_SCHEMA_VERSION,
        "n": n,
        "seeds": seeds,
        "protocols": {},
    }
    total_safety = 0
    # Novelty within the sweep is judged against the atlas' accumulated
    # knowledge (when given) plus everything earlier in this sweep --
    # so a sweep over already-explored seeds honestly reports 0% new.
    seen: set[str] = atlas.known_signatures() if atlas is not None else set()
    baseline = len(seen)
    sweep_signatures: set[str] = set()
    rows_with_new = total_rows = 0
    for name in protocols:
        suite = MonitorSuite()
        rows = []
        protocol_signatures: set[str] = set()
        protocol_rows_with_new = 0
        for seed in seeds:
            factory, params, f = make_runner(name, n, seed=seed)
            kwargs: dict[str, Any] = {}
            if max_deliveries is not None:
                kwargs["max_deliveries"] = max_deliveries
            probe = CoverageProbe() if coverage else None
            result = run_protocol(
                n, f, factory, corrupt=set(range(f)), params=params,
                stop_condition=stop_when_all_decided, seed=seed,
                monitors=suite, coverage=probe, **kwargs,
            )
            row = {
                "seed": seed,
                "live": result.live,
                "all_correct_decided": result.all_correct_decided,
                "words": result.words,
                "duration": result.duration,
                "deliveries": result.deliveries,
            }
            if probe is not None:
                signatures = signature_set(probe.snapshot())
                new = signatures - seen
                seen |= signatures
                sweep_signatures |= signatures
                protocol_signatures |= signatures
                row["signatures"] = len(signatures)
                row["new_signatures"] = len(new)
                total_rows += 1
                if new:
                    rows_with_new += 1
                    protocol_rows_with_new += 1
                if atlas is not None:
                    atlas.record_run(
                        {
                            "source": "conformance",
                            "protocol": name,
                            "n": n,
                            "f": f,
                            "seed": seed,
                            "scheduler": "random",
                            "delivery_mode": "classic",
                        },
                        signatures,
                    )
            rows.append(row)
        conformance = suite.report()
        total_safety += conformance["safety_violations"]
        payload["protocols"][name] = {
            "f": f,
            "runs": rows,
            "conformance": conformance,
        }
        if coverage:
            payload["protocols"][name]["coverage"] = {
                "unique_signatures": len(protocol_signatures),
                "runs_with_new": protocol_rows_with_new,
            }
    if coverage:
        # ``unique_signatures`` counts only this sweep's signatures (a
        # deterministic function of the configuration, so the trend
        # gate may judge it); the novelty counts depend on the atlas'
        # prior state and are gate-excluded by name.
        payload["coverage"] = {
            "unique_signatures": len(sweep_signatures),
            "baseline_signatures": baseline,
            "runs_with_new": rows_with_new,
            "runs_total": total_rows,
            "new_rate": rows_with_new / total_rows if total_rows else 0.0,
        }
    payload["safety_violations"] = total_safety
    payload["ok"] = total_safety == 0
    return payload


def write_conformance(payload: dict[str, Any], root: str = "."):
    """Persist the payload as ``BENCH_conformance.json`` + a trend record."""
    path, _ = record_bench("conformance", payload, root=root)
    return path


def _rate_anomalies(node: Any, path: str = "") -> list[str]:
    """Paths of every nested ``"conformant": False`` rate verdict."""
    anomalies: list[str] = []
    if isinstance(node, dict):
        if node.get("conformant") is False:
            anomalies.append(path or "$")
        for key in sorted(node):
            anomalies.extend(_rate_anomalies(node[key], f"{path}.{key}" if path else key))
    elif isinstance(node, list):
        for index, item in enumerate(node):
            anomalies.extend(_rate_anomalies(item, f"{path}[{index}]"))
    return anomalies


def coverage_gate(payload: dict[str, Any]) -> dict[str, Any]:
    """The nightly stagnation gate over one conformance payload.

    Fails (``ok: False``) exactly when the sweep's new-coverage rate was
    0% for *every* seed -- no run contributed a signature the atlas had
    not already seen -- while a monitor is simultaneously reporting a
    whp-severity rate anomaly (a whp flag, or any rate estimate outside
    its paper bound).  Either condition alone is fine: a fully-explored
    sweep with clean monitors is just saturation, and an anomaly found
    by *fresh* coverage is the monitors doing their job.  Together they
    mean the sweep is re-exploring one interleaving and the anomaly
    cannot be trusted to be schedule-independent.
    """
    coverage = payload.get("coverage")
    verdict: dict[str, Any] = {"ok": True, "stagnant": False, "anomalies": []}
    if not coverage:
        verdict["note"] = "payload has no coverage accounting; gate vacuous"
        return verdict
    verdict["runs_with_new"] = coverage.get("runs_with_new", 0)
    verdict["runs_total"] = coverage.get("runs_total", 0)
    verdict["stagnant"] = (
        coverage.get("runs_total", 0) > 0 and coverage.get("runs_with_new", 0) == 0
    )
    anomalies: list[str] = []
    for name, entry in payload.get("protocols", {}).items():
        conformance = entry.get("conformance", {})
        if conformance.get("whp_flags"):
            anomalies.append(f"{name}: {conformance['whp_flags']} whp flag(s)")
        anomalies.extend(
            f"{name}: non-conformant rate at {path}"
            for path in _rate_anomalies(conformance.get("monitors", {}))
        )
    verdict["anomalies"] = anomalies
    verdict["ok"] = not (verdict["stagnant"] and anomalies)
    return verdict


def format_coverage_gate(verdict: dict[str, Any]) -> str:
    """Human-readable gate report (``repro coverage --gate`` output)."""
    lines = ["coverage stagnation gate:"]
    if "note" in verdict:
        lines.append(f"  {verdict['note']}")
    else:
        lines.append(
            f"  new coverage: {verdict['runs_with_new']}/{verdict['runs_total']} "
            "runs contributed unseen signatures"
            + ("  ** STAGNANT" if verdict["stagnant"] else "")
        )
        if verdict["anomalies"]:
            lines.append(f"  rate anomalies ({len(verdict['anomalies'])}):")
            lines.extend(f"    {anomaly}" for anomaly in verdict["anomalies"][:12])
        else:
            lines.append("  rate anomalies: none")
    lines.append(
        "GATE: "
        + (
            "PASS"
            if verdict["ok"]
            else "FAIL (0% new coverage while monitors flag rate anomalies)"
        )
    )
    return "\n".join(lines)


def _rate_cell(entry: dict[str, Any], bound: float | None, kind: str) -> str:
    if not entry.get("trials"):
        return "(no trials)"
    interval = entry.get("interval")
    lo, hi = (interval if interval else (0.0, 1.0))
    cell = f"{entry['successes']}/{entry['trials']}"
    cell += f"  rate={entry['mean']:.3f} [{lo:.3f}, {hi:.3f}]"
    if bound is not None:
        cell += f"  {kind}{bound:.3g}"
        cell += "" if entry.get("conformant", True) else "  ** NON-CONFORMANT"
    return cell


def format_check(payload: dict[str, Any]) -> str:
    """Human-readable conformance tables for the whole sweep."""
    lines = [
        f"conformance check: n={payload['n']}, seeds={payload['seeds']}",
    ]
    for name, entry in payload["protocols"].items():
        conformance = entry["conformance"]
        monitors = conformance["monitors"]
        decided = sum(1 for row in entry["runs"] if row["all_correct_decided"])
        lines.append("")
        lines.append(
            f"== {name} (f={entry['f']}): {decided}/{len(entry['runs'])} runs "
            f"decided, {conformance['safety_violations']} safety violations, "
            f"{conformance['whp_flags']} whp flags"
        )
        safety = monitors.get("safety")
        if safety:
            lines.append(
                f"  safety    : {safety['decisions_checked']} decisions checked; "
                f"Agreement violations={safety['agreement_violations']}, "
                f"Validity violations={safety['validity_violations']}"
            )
        committee = monitors.get("committee")
        if committee and committee["committees_checked"]:
            lines.append(
                f"  committees: {committee['committees_checked']} checked "
                "(failure rate vs Chernoff bound)"
            )
            for prop, stats in committee["properties"].items():
                failures = {
                    "successes": stats["successes"],
                    "trials": stats["trials"],
                    "mean": stats["mean"],
                    "interval": stats["interval"],
                    "conformant": stats["conformant"],
                }
                lines.append(
                    f"    {prop}: "
                    + _rate_cell(failures, stats.get("chernoff_bound"), "bound=")
                )
        coin = monitors.get("coin")
        if coin and coin["variants"]:
            lines.append("  coins     : (success rate vs rho bound)")
            for variant, stats in coin["variants"].items():
                lines.append(
                    f"    {variant}: "
                    + _rate_cell(stats, stats.get("rho_bound"), "rho>=")
                )
        approver = monitors.get("approver")
        if approver and approver["instances_checked"]:
            ga = approver["graded_agreement"]
            grades = ", ".join(
                f"|{grade}|x{count}" for grade, count in approver["grades"].items()
            )
            lines.append(
                f"  approvers : {approver['instances_checked']} instances; "
                f"Graded Agreement {ga['successes']}/{ga['trials']}; "
                f"grades {grades}"
            )
        coverage = entry.get("coverage")
        if coverage:
            lines.append(
                f"  coverage  : {coverage['unique_signatures']} distinct "
                f"signatures; {coverage['runs_with_new']}/{len(entry['runs'])} "
                "seeds contributed new ones"
            )
        for violation in conformance["violations"]:
            lines.append(
                f"  ! [{violation['severity']}] "
                f"{violation['monitor']}/{violation['property']} "
                f"step {violation['step']}: {violation['message']}"
            )
    sweep_coverage = payload.get("coverage")
    if sweep_coverage:
        lines.append("")
        lines.append(
            f"coverage: {sweep_coverage['unique_signatures']} distinct "
            f"signatures ({sweep_coverage['baseline_signatures']} known "
            f"before); {sweep_coverage['runs_with_new']}/"
            f"{sweep_coverage['runs_total']} runs contributed new "
            f"interleavings ({sweep_coverage['new_rate']:.0%})"
        )
    lines.append("")
    lines.append("RESULT: " + ("OK" if payload["ok"] else "SAFETY VIOLATIONS"))
    if not payload["ok"]:
        from repro.sim.diffing import divergence_hint

        lines.append(divergence_hint("to localize a violating run"))
    return "\n".join(lines)
