"""The hostile-scenario zoo: reconstructible named runs for forensics.

``make_runner`` (:mod:`repro.experiments.protocols`) builds the *correct*
protocols by name.  This registry is its dark twin: runs under a
deliberately hostile network or adversary, deterministic in a known way,
so the observability tooling has named red (or stressed) checks it can
record, replay, fuzz-seed and sweep:

``byz_split``
    The canonical Agreement violation -- a scripted Byzantine nudge makes
    a broken decider split by pid parity (two-delivery minimal schedule).
``lossy_uniform``
    Real ``whp_ba`` under a uniform lossy-link mix (drop-heavy, with some
    duplication and reordering), the degradation sweep's default axis.
``targeted_committee_drop``
    Real ``whp_ba`` where loss is aimed at the paper's weak point: every
    link *out of* the round-0 WHP-coin committee members (computed from
    the trusted setup via :func:`repro.core.committees.sample_committee`)
    drops at the scenario rate.  Uniform loss wastes most of its budget
    on non-committee traffic; this starves the coin directly.
``coin_partition``
    Real ``whp_ba`` under a :class:`~repro.sim.adversary.PartitionScheduler`
    that splits the network in half until a rate-scaled number of
    intra-partition deliveries has happened -- the adversary the coin's
    ρ-bound argument has to survive.
``dup_storm``
    Real ``whp_ba`` under heavy duplication: nothing is lost, but the
    network amplifies traffic (delivered ≫ sent words).
``reorder_heavy``
    Real ``whp_ba`` under heavy bounded reordering (large hold window) --
    adversarial asynchrony beyond what the random scheduler produces.

Scenarios are deterministic given ``(n, seed, rate)``: the corruption
set, Byzantine scripts, lossy config and scheduler are all derived from
the spec, and lossy fates are functions of (seed, seq), so a seq-exact
replay reproduces a recorded scenario bit for bit.  A scenario name may
carry an explicit rate suffix (``lossy_uniform@0.1``); recordings written
by the degradation sweep use this form so ``repro explain`` can rebuild
the exact swept cell from the recording header alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    CorruptionStrategy,
    PartitionScheduler,
    RandomScheduler,
    Scheduler,
    StaticCorruption,
)
from repro.sim.byzantine import ByzantineBehavior, ScriptedBehavior
from repro.sim.messages import Message
from repro.sim.network import LossyLinkConfig
from repro.sim.process import ProcessContext, Protocol, Wait
from repro.sim.runner import stop_when_all_decided

__all__ = [
    "SCENARIOS",
    "Nudge",
    "ScenarioSpec",
    "describe_scenarios",
    "is_scenario",
    "make_scenario",
    "parse_scenario_name",
    "scenario_adversary",
    "scenario_descriptions",
    "split_decider",
]


@dataclass
class Nudge(Message):
    """The byz_split trigger message (one word, instance ``"nudge"``)."""

    payload: int = 0


def split_decider(ctx: ProcessContext) -> Protocol:
    """Broken BA: decides pid parity after hearing one Byzantine nudge.

    The canonical Agreement violation from the monitor tests: every
    correct process that receives a nudge decides its own parity, so the
    first two nudge deliveries to opposite-parity processes split the
    decision -- a failure whose minimal schedule is exactly two
    deliveries.
    """
    yield Wait(
        lambda mailbox: mailbox.stream("nudge")[0]
        if mailbox.stream("nudge")
        else None
    )
    ctx.decide(ctx.pid % 2)
    return ctx.decision


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to (re)build one named scenario run.

    ``corruption`` and ``behavior_factory`` plug into
    :class:`~repro.sim.adversary.Adversary` alongside any scheduler --
    the recorder uses :func:`scenario_adversary` (the spec's scheduler,
    or the seeded random one), the forensics replay a
    :class:`~repro.sim.adversary.ReplayScheduler`.  ``lossy`` is the
    scenario's link-fault config (``None`` for the reliable model) and
    must be passed to ``run_protocol`` on record *and* replay: fates are
    deterministic in (seed, seq), so the same config reproduces the same
    faults under a seq-exact schedule.  ``rate`` is the hostility knob
    the degradation sweep turns; ``name`` embeds it (``name@rate``) when
    it differs from the scenario default, so a recording header alone
    rebuilds the exact cell.
    """

    name: str
    factory: Callable[[ProcessContext], Protocol]
    params: Any
    f: int
    corruption: CorruptionStrategy
    behavior_factory: Callable[[int], ByzantineBehavior] | None
    stop_condition: Callable
    description: str = ""
    rate: float = 0.0
    lossy: LossyLinkConfig | None = None
    scheduler_factory: Callable[[int], Scheduler] | None = field(
        default=None, compare=False
    )

    def describe(self) -> str:
        """One line for listings: ``name  description``."""
        return f"{self.name}: {self.description}"


def _whp_runner(n: int, f: int | None, seed: int):
    """The real protocol under test (imported lazily: no import cycle)."""
    from repro.experiments.protocols import make_runner

    return make_runner("whp_ba", n, f=f, seed=seed)


def _setup_pki(n: int, seed: int) -> PKI:
    """The same trusted setup ``run_protocol`` will build for this run."""
    return PKI.create(n, rng=random.Random(derive_seed(seed, "setup")))


def _byz_split(n: int, f: int | None, seed: int, rate: float) -> ScenarioSpec:
    if n < 3:
        raise ValueError("byz_split needs n >= 3 (two correct parities + 1 Byzantine)")
    byzantine = n - 1
    # rate > 0 layers uniform drop on top of the scripted violation, so
    # even the broken scenario has a degradation axis.
    lossy = LossyLinkConfig(drop_rate=rate) if rate > 0.0 else None
    return ScenarioSpec(
        name=_spec_name("byz_split", rate, default=0.0),
        factory=split_decider,
        params=None,
        f=f if f is not None else 1,
        corruption=StaticCorruption({byzantine}),
        behavior_factory=lambda pid: ScriptedBehavior(
            on_start=lambda ctx: ctx.broadcast(Nudge("nudge"))
        ),
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["byz_split"],
        rate=rate,
        lossy=lossy,
    )


def _lossy_uniform(n: int, f: int | None, seed: int, rate: float) -> ScenarioSpec:
    factory, params, eff_f = _whp_runner(n, f, seed)
    lossy = (
        LossyLinkConfig(
            drop_rate=0.6 * rate,
            duplicate_rate=0.2 * rate,
            reorder_rate=0.2 * rate,
        )
        if rate > 0.0
        else None
    )
    return ScenarioSpec(
        name=_spec_name("lossy_uniform", rate, default=0.05),
        factory=factory,
        params=params,
        f=eff_f,
        corruption=StaticCorruption(set(range(eff_f))),
        behavior_factory=None,
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["lossy_uniform"],
        rate=rate,
        lossy=lossy,
    )


def _targeted_committee_drop(
    n: int, f: int | None, seed: int, rate: float
) -> ScenarioSpec:
    from repro.core.committees import sample_committee

    factory, params, eff_f = _whp_runner(n, f, seed)
    lossy = None
    if rate > 0.0:
        pki = _setup_pki(n, seed)
        # The round-0 WHP-coin committees ("first" holds the value
        # candidates, "second" the minimum-takers -- whp_coin.py).  The
        # agreement tag is "ba" (byzantine_agreement's default), so the
        # coin instance for round 0 is ("whp_coin", ("ba", 0)).
        instance = ("whp_coin", ("ba", 0))
        members = sample_committee(pki, instance, "first", params) | (
            sample_committee(pki, instance, "second", params)
        )
        lossy = LossyLinkConfig.targeted(n, senders=members, drop_rate=rate)
    return ScenarioSpec(
        name=_spec_name("targeted_committee_drop", rate, default=0.4),
        factory=factory,
        params=params,
        f=eff_f,
        corruption=StaticCorruption(set(range(eff_f))),
        behavior_factory=None,
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["targeted_committee_drop"],
        rate=rate,
        lossy=lossy,
    )


def _coin_partition(n: int, f: int | None, seed: int, rate: float) -> ScenarioSpec:
    factory, params, eff_f = _whp_runner(n, f, seed)
    # rate scales how long the cut lasts, in intra-partition deliveries:
    # rate=1 holds the partition for ~8 broadcast rounds' worth of
    # traffic (8·n²); rate=0 never installs the cut.
    heal_after = int(rate * 8 * n * n)
    group_a = frozenset(range(n // 2))

    def scheduler_factory(run_seed: int) -> Scheduler:
        rng = random.Random(derive_seed(run_seed, "sched"))
        if heal_after <= 0:
            return RandomScheduler(rng)
        return PartitionScheduler(group_a, heal_after, rng=rng)

    return ScenarioSpec(
        name=_spec_name("coin_partition", rate, default=0.5),
        factory=factory,
        params=params,
        f=eff_f,
        corruption=StaticCorruption(set(range(eff_f))),
        behavior_factory=None,
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["coin_partition"],
        rate=rate,
        scheduler_factory=scheduler_factory,
    )


def _dup_storm(n: int, f: int | None, seed: int, rate: float) -> ScenarioSpec:
    factory, params, eff_f = _whp_runner(n, f, seed)
    lossy = LossyLinkConfig(duplicate_rate=rate) if rate > 0.0 else None
    return ScenarioSpec(
        name=_spec_name("dup_storm", rate, default=0.35),
        factory=factory,
        params=params,
        f=eff_f,
        corruption=StaticCorruption(set(range(eff_f))),
        behavior_factory=None,
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["dup_storm"],
        rate=rate,
        lossy=lossy,
    )


def _reorder_heavy(n: int, f: int | None, seed: int, rate: float) -> ScenarioSpec:
    factory, params, eff_f = _whp_runner(n, f, seed)
    lossy = (
        LossyLinkConfig(reorder_rate=rate, reorder_hold=64)
        if rate > 0.0
        else None
    )
    return ScenarioSpec(
        name=_spec_name("reorder_heavy", rate, default=0.5),
        factory=factory,
        params=params,
        f=eff_f,
        corruption=StaticCorruption(set(range(eff_f))),
        behavior_factory=None,
        stop_condition=stop_when_all_decided,
        description=_DESCRIPTIONS["reorder_heavy"],
        rate=rate,
        lossy=lossy,
    )


_DESCRIPTIONS: dict[str, str] = {
    "byz_split": (
        "broken decider + scripted Byzantine nudge; the canonical "
        "Agreement violation (rate adds uniform drop)"
    ),
    "lossy_uniform": (
        "whp_ba under a uniform lossy mix (60% drop / 20% duplicate / "
        "20% reorder of the rate)"
    ),
    "targeted_committee_drop": (
        "whp_ba with drops aimed at the round-0 coin committee's "
        "outbound links (per-link overrides)"
    ),
    "coin_partition": (
        "whp_ba under a half/half partition scheduler; rate scales the "
        "cut's duration before healing"
    ),
    "dup_storm": "whp_ba under heavy duplication (network pays, nothing lost)",
    "reorder_heavy": (
        "whp_ba under heavy bounded reordering (hold window 64 deliveries)"
    ),
}

# name -> (builder, default_rate).  The default rate is what
# `repro record --protocol <name>` uses; the degradation sweep overrides
# it per point (and embeds the override in the recorded name).
_BUILDERS: dict[
    str, tuple[Callable[[int, int | None, int, float], ScenarioSpec], float]
] = {
    "byz_split": (_byz_split, 0.0),
    "lossy_uniform": (_lossy_uniform, 0.05),
    "targeted_committee_drop": (_targeted_committee_drop, 0.4),
    "coin_partition": (_coin_partition, 0.5),
    "dup_storm": (_dup_storm, 0.35),
    "reorder_heavy": (_reorder_heavy, 0.5),
}

SCENARIOS = tuple(_BUILDERS)


def _spec_name(base: str, rate: float, default: float) -> str:
    """The canonical spec/recording name: rate-suffixed when non-default."""
    if rate == default:
        return base
    return f"{base}@{rate:g}"


def parse_scenario_name(name: str) -> tuple[str, float | None]:
    """Split ``"lossy_uniform@0.1"`` into ``("lossy_uniform", 0.1)``.

    Plain names parse to ``(name, None)`` (meaning: the scenario's
    default rate).  A malformed rate suffix raises ``ValueError`` with
    the usual unknown-scenario listing, so every caller degrades the
    same way.
    """
    base, sep, suffix = name.partition("@")
    if not sep:
        return name, None
    try:
        rate = float(suffix)
    except ValueError:
        raise ValueError(
            f"bad rate suffix in scenario name {name!r} "
            f"(expected e.g. {base}@0.1)"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"scenario rate must be in [0, 1], got {rate!r}")
    return base, rate


def is_scenario(name: str) -> bool:
    """True when ``name`` (with or without a rate suffix) names a scenario."""
    base, _, _ = name.partition("@")
    return base in _BUILDERS


def scenario_descriptions() -> dict[str, str]:
    """Registry name -> one-line description (the self-describing view)."""
    return dict(_DESCRIPTIONS)


def describe_scenarios() -> str:
    """Multi-line listing used by error messages and the CLI."""
    width = max(len(name) for name in _BUILDERS)
    return "\n".join(
        f"  {name:<{width}}  {_DESCRIPTIONS[name]}" for name in _BUILDERS
    )


def make_scenario(
    name: str,
    n: int,
    f: int | None = None,
    seed: int = 0,
    rate: float | None = None,
) -> ScenarioSpec:
    """Build the named scenario spec for an ``n``-process run.

    ``rate`` (or a ``name@rate`` suffix -- the explicit argument wins)
    overrides the scenario's default hostility rate; the returned spec's
    ``name`` carries the suffix whenever the effective rate is not the
    default, so recordings of swept cells replay at the right rate.
    """
    base, suffix_rate = parse_scenario_name(name)
    entry = _BUILDERS.get(base)
    if entry is None:
        raise ValueError(
            f"unknown scenario {name!r}; available scenarios:\n"
            + describe_scenarios()
        )
    builder, default_rate = entry
    effective = rate if rate is not None else (
        suffix_rate if suffix_rate is not None else default_rate
    )
    return builder(n, f, seed, effective)


def scenario_adversary(spec: ScenarioSpec, seed: int) -> Adversary:
    """The adversary a fresh (non-replay) run of ``spec`` should face.

    The spec's scheduler when it has one (e.g. the partition), otherwise
    the seeded random scheduler every recorder uses -- same derivation as
    ``run_protocol``'s default, so a scenario run with and without an
    explicit adversary sees the same schedule.
    """
    if spec.scheduler_factory is not None:
        scheduler = spec.scheduler_factory(seed)
    else:
        scheduler = RandomScheduler(random.Random(derive_seed(seed, "sched")))
    return Adversary(
        scheduler=scheduler,
        corruption=spec.corruption,
        behavior_factory=spec.behavior_factory,
    )
