"""Named failure scenarios: reconstructible broken runs for forensics.

``make_runner`` (:mod:`repro.experiments.protocols`) builds the *correct*
protocols by name.  This registry is its dark twin: runs that are
deliberately broken in a known, deterministic way, so the forensics
tooling has named red checks it can record, replay and minimize --
``python -m repro record --protocol byz_split`` writes a recording whose
safety violation ``python -m repro explain`` can shrink to its minimal
schedule.  The monitor tests exercise the same shapes inline; keeping a
registry copy makes them reachable from a recording header alone.

Scenarios are deterministic given ``(n, seed)``: the corruption set, the
Byzantine script and the protocol factory are all derived from the spec,
so a seq-exact replay reproduces the recorded run bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.adversary import CorruptionStrategy, StaticCorruption
from repro.sim.byzantine import ByzantineBehavior, ScriptedBehavior
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait
from repro.sim.runner import stop_when_all_decided

__all__ = ["SCENARIOS", "Nudge", "ScenarioSpec", "make_scenario", "split_decider"]


@dataclass
class Nudge(Message):
    """The byz_split trigger message (one word, instance ``"nudge"``)."""

    payload: int = 0


def split_decider(ctx: ProcessContext) -> Protocol:
    """Broken BA: decides pid parity after hearing one Byzantine nudge.

    The canonical Agreement violation from the monitor tests: every
    correct process that receives a nudge decides its own parity, so the
    first two nudge deliveries to opposite-parity processes split the
    decision -- a failure whose minimal schedule is exactly two
    deliveries.
    """
    yield Wait(
        lambda mailbox: mailbox.stream("nudge")[0]
        if mailbox.stream("nudge")
        else None
    )
    ctx.decide(ctx.pid % 2)
    return ctx.decision


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to (re)build one named scenario run.

    ``corruption`` and ``behavior_factory`` plug into
    :class:`~repro.sim.adversary.Adversary` alongside any scheduler --
    the recorder uses the seeded random scheduler, the forensics replay
    a :class:`~repro.sim.adversary.ReplayScheduler`.
    """

    name: str
    factory: Callable[[ProcessContext], Protocol]
    params: Any
    f: int
    corruption: CorruptionStrategy
    behavior_factory: Callable[[int], ByzantineBehavior]
    stop_condition: Callable


def _byz_split(n: int, f: int | None, seed: int) -> ScenarioSpec:
    if n < 3:
        raise ValueError("byz_split needs n >= 3 (two correct parities + 1 Byzantine)")
    byzantine = n - 1
    return ScenarioSpec(
        name="byz_split",
        factory=split_decider,
        params=None,
        f=f if f is not None else 1,
        corruption=StaticCorruption({byzantine}),
        behavior_factory=lambda pid: ScriptedBehavior(
            on_start=lambda ctx: ctx.broadcast(Nudge("nudge"))
        ),
        stop_condition=stop_when_all_decided,
    )


_BUILDERS: dict[str, Callable[[int, int | None, int], ScenarioSpec]] = {
    "byz_split": _byz_split,
}

SCENARIOS = tuple(_BUILDERS)


def make_scenario(
    name: str, n: int, f: int | None = None, seed: int = 0
) -> ScenarioSpec:
    """Build the named scenario spec for an ``n``-process run."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"unknown scenario {name!r}; one of {SCENARIOS}")
    return builder(n, f, seed)
