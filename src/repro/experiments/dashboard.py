"""`python -m repro dashboard`: one self-contained HTML pane for the repo.

Stitches every observability artifact this repository produces into a
single offline file -- no network fetches, no external scripts or
stylesheets, every chart inline SVG -- so "what has this repo been
doing" is answerable from one artifact attached to a CI run or mailed
around:

* **run summary + telemetry timelines** of a flight recording: the
  virtual-time series a :class:`~repro.sim.telemetry.TelemetryProbe`
  sampled (in-flight messages, mailbox backlog, blocked processes,
  cumulative words by protocol layer), its latency quantiles and the
  per-causal-depth profile.  The ``.telemetry.json`` sidecar is used
  when present; otherwise the recording's event log is replayed through
  a fresh probe.
* **trend-store series** with SVG sparklines and out-of-tolerance drift
  highlighted (same numeric-leaves rules as ``repro trends --gate``).
* **conformance verdicts** from the newest ``conformance`` trend record
  (per-protocol safety violations and whp flags).
* **divergence forensics** from the newest ``*.divergence.json`` report
  (written by ``repro diff`` / ``repro explain``): the verdict, the
  minimized schedule and the causal slice behind the divergence.
* **fuzzing campaign** from the newest ``fuzzing`` trend record
  (written by ``repro fuzz``): candidate yield, corpus growth, new
  signature families and any counterexample bundles.
* **degradation curves** from the newest ``degradation_*.json`` sweep
  artifact (written by ``repro degrade``), falling back to the trend
  store's ``degradation`` smoke series: outcome fractions and word
  counts vs hostility rate, with the estimated knee marked.
* **schedule coverage** from ``BENCH_coverage_atlas.jsonl``
  (:mod:`repro.experiments.coverage_atlas`): atlas growth, new
  signatures per run, rarest-hit signatures.
* **E4 scaling curves** from the newest ``E4_scaling`` trend record
  (mean words vs n per protocol, log-log).

Every missing input degrades to a one-line diagnostic *inside the
dashboard* (and on stdout), never an exception: a dashboard of an empty
repository is a valid dashboard that says what to run next.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Any

from repro.experiments.trends import (
    TrendStore,
    canonical_scalar,
    numeric_drifts,
)

__all__ = ["build_dashboard", "render_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #d0d0e0; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .85rem; }
td, th { padding: .25rem .7rem; border-bottom: 1px solid #e8e8f0;
         text-align: right; } th { background: #f4f4fa; }
td:first-child, th:first-child { text-align: left; }
.diag { color: #8a6d3b; background: #fcf8e3; padding: .4rem .8rem;
        border-radius: 4px; display: inline-block; margin: .2rem 0; }
.drift { color: #a94442; font-weight: 600; }
.ok { color: #3c763d; }
.chart-title { font-size: .8rem; color: #555; margin: .6rem 0 .1rem; }
.charts { display: flex; flex-wrap: wrap; gap: 1.2rem; }
svg { background: #fbfbfe; border: 1px solid #e0e0ea; }
.legend { font-size: .75rem; color: #444; }
"""

_PALETTE = ("#3b5bdb", "#e8590c", "#2b8a3e", "#9c36b5", "#c92a2a", "#0b7285")


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return _esc(value)


# -- SVG primitives ----------------------------------------------------------


def _polyline_points(
    xs: list[float], ys: list[float], width: int, height: int, pad: int = 6
) -> str:
    if not xs:
        return ""
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    points = []
    for x, y in zip(xs, ys):
        px = pad + (x - x_lo) / x_span * (width - 2 * pad)
        py = height - pad - (y - y_lo) / y_span * (height - 2 * pad)
        points.append(f"{px:.1f},{py:.1f}")
    return " ".join(points)


def _line_chart(
    series: dict[str, tuple[list[float], list[float]]],
    width: int = 340,
    height: int = 120,
    title: str = "",
) -> str:
    """Multi-series SVG line chart with min/max labels and a legend."""
    drawn = {
        name: (xs, ys) for name, (xs, ys) in series.items() if xs and ys
    }
    if not drawn:
        return "<p class='diag'>(no data points)</p>"
    all_ys = [y for _, ys in drawn.values() for y in ys]
    all_xs = [x for xs, _ in drawn.values() for x in xs]
    parts = [
        f"<div class='chart-title'>{_esc(title)}</div>" if title else "",
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} {height}'"
        " role='img'>",
    ]
    for index, (name, (xs, ys)) in enumerate(drawn.items()):
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
            f"points='{_polyline_points(xs, ys, width, height)}'/>"
        )
    parts.append(
        f"<text x='4' y='12' font-size='9' fill='#888'>{_fmt(max(all_ys))}</text>"
        f"<text x='4' y='{height - 2}' font-size='9' fill='#888'>"
        f"{_fmt(min(all_ys))}</text>"
        f"<text x='{width - 4}' y='{height - 2}' font-size='9' fill='#888' "
        f"text-anchor='end'>x={_fmt(max(all_xs))}</text>"
    )
    parts.append("</svg>")
    legend = " &middot; ".join(
        f"<span style='color:{_PALETTE[i % len(_PALETTE)]}'>&#9632;</span> "
        f"{_esc(name)}"
        for i, name in enumerate(drawn)
    )
    parts.append(f"<div class='legend'>{legend}</div>")
    return "".join(part for part in parts if part)


def _spark_svg(values: list[float], width: int = 120, height: int = 24) -> str:
    finite = [v for v in values if isinstance(v, (int, float)) and v == v]
    if len(finite) < 2:
        return ""
    points = _polyline_points(
        list(range(len(finite))), finite, width, height, pad=2
    )
    return (
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<polyline fill='none' stroke='#3b5bdb' stroke-width='1.2' "
        f"points='{points}'/></svg>"
    )


def _diag(message: str) -> str:
    return f"<p class='diag'>{_esc(message)}</p>"


# -- sections ----------------------------------------------------------------


def _series_xy(series: dict[str, Any]) -> tuple[list[float], list[float]]:
    return (
        [float(s) for s in series.get("steps", [])],
        [float(v) for v in series.get("values", [])],
    )


def _run_section(recording, recording_path, diagnostics: list[str]) -> str:
    if recording is None:
        message = (
            f"no recording: {recording_path}"
            if recording_path
            else "no recording supplied; run `python -m repro record "
            "--n 40 --out flight.jsonl` and pass the file"
        )
        diagnostics.append(message)
        return f"<section id='run'><h2>Run</h2>{_diag(message)}</section>"
    header = recording.header
    summary = recording.summary
    cells = {
        "n": header.get("n"),
        "f": header.get("f"),
        "seed": header.get("seed"),
        "deliveries": summary.get("deliveries"),
        "causal depth": summary.get("duration"),
        "words": summary.get("words"),
        "live": summary.get("live"),
        "all decided": summary.get("all_correct_decided"),
    }
    row = "".join(f"<td>{_fmt(value)}</td>" for value in cells.values())
    head = "".join(f"<th>{_esc(key)}</th>" for key in cells)
    return (
        "<section id='run'><h2>Run</h2>"
        f"<p>{_esc(recording_path)}</p>"
        f"<table><tr>{head}</tr><tr>{row}</tr></table></section>"
    )


def _telemetry_section(telemetry, diagnostics: list[str]) -> str:
    if telemetry is None:
        message = "no telemetry (record a run first; the probe rides along)"
        diagnostics.append(message)
        return (
            "<section id='telemetry'><h2>Telemetry</h2>"
            f"{_diag(message)}</section>"
        )
    series = telemetry.get("series", {})
    charts = []
    gauges = {
        "in-flight messages": "in_flight",
        "blocked processes": "blocked",
        "peak mailbox backlog": "backlog_max",
        "mean mailbox backlog": "backlog_mean",
    }
    for title, key in gauges.items():
        if key in series:
            xs, ys = _series_xy(series[key])
            charts.append(
                f"<div>{_line_chart({key: (xs, ys)}, title=title + ' / step')}"
                "</div>"
            )
    layers = series.get("words_by_layer", {})
    if layers:
        charts.append(
            "<div>"
            + _line_chart(
                {layer: _series_xy(entry) for layer, entry in layers.items()},
                title="cumulative words by layer / step",
            )
            + "</div>"
        )
    quantiles = telemetry.get("quantiles", {})
    q_rows = []
    for name, stats in quantiles.items():
        if not stats.get("count"):
            continue
        q_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            + "".join(
                f"<td>{_fmt(stats.get(key))}</td>"
                for key in ("count", "min", "p50", "p90", "p99", "max")
            )
            + "</tr>"
        )
    q_table = (
        "<table><tr><th>latency</th><th>count</th><th>min</th><th>p50</th>"
        "<th>p90</th><th>p99</th><th>max</th></tr>" + "".join(q_rows)
        + "</table>"
        if q_rows
        else _diag("no latency samples")
    )
    profile = telemetry.get("depth_profile", [])
    depth_chart = ""
    if profile:
        depths = [float(row["depth"]) for row in profile]
        depth_chart = _line_chart(
            {
                "messages": (depths, [float(r["messages"]) for r in profile]),
                "decisions": (
                    depths,
                    [float(r["decisions"]) for r in profile],
                ),
            },
            title="messages and decisions / causal depth",
        )
    return (
        "<section id='telemetry'><h2>Telemetry</h2>"
        f"<div class='charts'>{''.join(charts)}"
        f"<div>{depth_chart}</div></div>"
        f"<h3>latency quantiles (virtual time)</h3>{q_table}"
        "</section>"
    )


def _trends_section(store: TrendStore, rel_tol: float,
                    diagnostics: list[str]) -> str:
    try:
        names = store.names()
    except ValueError as exc:
        message = f"trend store unreadable: {exc}"
        diagnostics.append(message)
        return f"<section id='trends'><h2>Trends</h2>{_diag(message)}</section>"
    if not names:
        message = (
            f"trend store empty at {store.path} "
            "(benchmarks and `repro check` append here as they run)"
        )
        diagnostics.append(message)
        return f"<section id='trends'><h2>Trends</h2>{_diag(message)}</section>"
    rows = []
    for name in names:
        history = store.history(name)
        window = history[-8:]
        scalar = canonical_scalar(window) if len(window) > 1 else None
        spark = _spark_svg(scalar[1]) if scalar else ""
        tracking = _esc(scalar[0]) if scalar else ""
        if len(history) < 2:
            drift_cell = "<span class='ok'>first record</span>"
        else:
            drifts = numeric_drifts(
                history[-2]["payload"], history[-1]["payload"], rel_tol=rel_tol
            )
            drift_cell = (
                f"<span class='drift'>{len(drifts)} field(s): "
                + "; ".join(_esc(d) for d in drifts[:3])
                + "</span>"
                if drifts
                else f"<span class='ok'>within {rel_tol:.0%}</span>"
            )
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{len(history)}</td>"
            f"<td>{spark}</td><td>{tracking}</td><td>{drift_cell}</td></tr>"
        )
    return (
        "<section id='trends'><h2>Trends</h2>"
        f"<p>{_esc(store.path)}</p>"
        "<table><tr><th>series</th><th>records</th><th>trend</th>"
        "<th>tracking</th><th>drift vs previous</th></tr>"
        + "".join(rows)
        + "</table></section>"
    )


def _conformance_section(store: TrendStore, diagnostics: list[str]) -> str:
    try:
        latest = store.latest("conformance")
    except ValueError:
        latest = None
    if latest is None:
        message = "no conformance record (run `python -m repro check`)"
        diagnostics.append(message)
        return (
            "<section id='conformance'><h2>Conformance</h2>"
            f"{_diag(message)}</section>"
        )
    payload = latest["payload"]
    verdict = (
        "<span class='ok'>OK</span>"
        if payload.get("ok")
        else "<span class='drift'>SAFETY VIOLATIONS</span>"
    )
    rows = []
    for name, entry in payload.get("protocols", {}).items():
        conformance = entry.get("conformance", {})
        runs = entry.get("runs", [])
        decided = sum(1 for run in runs if run.get("all_correct_decided"))
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{entry.get('f')}</td>"
            f"<td>{decided}/{len(runs)}</td>"
            f"<td>{conformance.get('safety_violations')}</td>"
            f"<td>{conformance.get('whp_flags')}</td></tr>"
        )
    return (
        "<section id='conformance'><h2>Conformance</h2>"
        f"<p>n={payload.get('n')}, seeds={_esc(payload.get('seeds'))} "
        f"&mdash; {verdict}</p>"
        "<table><tr><th>protocol</th><th>f</th><th>decided</th>"
        "<th>safety violations</th><th>whp flags</th></tr>"
        + "".join(rows)
        + "</table></section>"
    )


def _coverage_section(atlas, diagnostics: list[str]) -> str:
    try:
        records = atlas.load() if atlas is not None else []
    except (OSError, ValueError) as exc:
        message = f"coverage atlas unreadable: {exc}"
        diagnostics.append(message)
        return (
            "<section id='coverage'><h2>Schedule coverage</h2>"
            f"{_diag(message)}</section>"
        )
    if not records:
        message = (
            "no coverage atlas (run `python -m repro check`; every "
            "monitored run appends its signature set)"
        )
        diagnostics.append(message)
        return (
            "<section id='coverage'><h2>Schedule coverage</h2>"
            f"{_diag(message)}</section>"
        )
    growth = atlas.growth(records)
    known = atlas.known_signatures(records)
    contributing = sum(1 for point in growth if point["new"])
    growth_spark = _spark_svg(
        [float(point["known_after"]) for point in growth], width=220
    )
    new_spark = _spark_svg([float(point["new"]) for point in growth], width=220)
    families: dict[str, int] = {}
    for signature in known:
        family = signature.split(":", 1)[0]
        families[family] = families.get(family, 0) + 1
    family_row = ", ".join(
        f"{name} {count}" for name, count in sorted(families.items())
    )
    rare_rows = "".join(
        f"<tr><td><code>{_esc(signature)}</code></td><td>{runs_with}</td></tr>"
        for signature, runs_with in atlas.rarest(8, records)
    )
    return (
        "<section id='coverage'><h2>Schedule coverage</h2>"
        f"<p>{_esc(atlas.path)} &mdash; {len(records)} runs, "
        f"{len(known)} distinct signatures, {contributing}/{len(growth)} "
        "runs contributed new coverage "
        f"(latest new-rate {growth[-1]['new_rate']:.0%})</p>"
        "<div class='charts'>"
        f"<div><div class='chart-title'>atlas size / run</div>{growth_spark}"
        "</div>"
        f"<div><div class='chart-title'>new signatures / run</div>{new_spark}"
        "</div></div>"
        f"<p class='legend'>signatures by family: {_esc(family_row)}</p>"
        "<table><tr><th>rarest signatures</th><th>runs</th></tr>"
        + rare_rows
        + "</table></section>"
    )


def _fuzzing_section(store: TrendStore, diagnostics: list[str]) -> str:
    try:
        latest = store.latest("fuzzing")
    except ValueError:
        latest = None
    if latest is None:
        message = (
            "no fuzzing record (run `python -m repro fuzz "
            "<recording.jsonl>`)"
        )
        diagnostics.append(message)
        return (
            "<section id='fuzzing'><h2>Fuzzing</h2>"
            f"{_diag(message)}</section>"
        )
    payload = latest["payload"]
    novelty = payload.get("novelty") or {}
    verdict = (
        "<span class='ok'>OK</span>"
        if payload.get("ok")
        else "<span class='drift'>NEW SAFETY VIOLATIONS</span>"
    )
    cells = {
        "budget": payload.get("budget"),
        "realizable": novelty.get("realizable"),
        "unrealizable": novelty.get("unrealizable"),
        "corpus": novelty.get("corpus_size"),
        "new signatures": novelty.get("new_signatures"),
        "counterexamples": novelty.get("counterexamples"),
    }
    head = "".join(f"<th>{_esc(key)}</th>" for key in cells)
    row = "".join(f"<td>{_fmt(value)}</td>" for value in cells.values())
    families = novelty.get("new_families") or []
    family_line = (
        f"<p class='legend'>new signature families: "
        f"{_esc(', '.join(families))}</p>"
        if families
        else ""
    )
    new = payload.get("new_violations") or []
    new_line = (
        "<p class='drift'>new safety violations: "
        + _esc(", ".join(new))
        + "</p>"
        if new
        else ""
    )
    return (
        "<section id='fuzzing'><h2>Fuzzing</h2>"
        f"<p>{_esc(payload.get('recording'))} &mdash; "
        f"protocol={_esc(payload.get('protocol'))} "
        f"seed={_fmt(payload.get('seed'))} &mdash; {verdict}</p>"
        f"<table><tr>{head}</tr><tr>{row}</tr></table>"
        + family_line
        + new_line
        + "</section>"
    )


def _divergence_section(
    divergence: dict[str, Any] | None,
    divergence_path: str | Path | None,
    diagnostics: list[str],
) -> str:
    if divergence is None:
        message = (
            "no divergence reports (`python -m repro diff` and `repro "
            "explain` write *.divergence.json when a check goes red)"
        )
        diagnostics.append(message)
        return (
            "<section id='divergence'><h2>Divergence forensics</h2>"
            f"{_diag(message)}</section>"
        )
    headline = divergence.get("describe")
    if headline is None:
        failure = divergence.get("failure")
        headline = (
            failure.get("message", "failure explained")
            if isinstance(failure, dict)
            else "recording clean: no failure found"
        )
    verdict = (
        "<span class='ok'>clean</span>"
        if divergence.get("identical")
        or (divergence.get("kind") == "explain" and not divergence.get("failure"))
        else f"<span class='drift'>{_esc(headline)}</span>"
    )
    parts = [
        "<section id='divergence'><h2>Divergence forensics</h2>",
        f"<p>{_esc(divergence_path)} &mdash; {verdict}</p>",
    ]
    minimized = divergence.get("minimized")
    if isinstance(minimized, dict) and minimized.get("describe"):
        parts.append(f"<p>{_esc(minimized['describe'])}</p>")
    slice_entries = divergence.get("slice") or []
    rows = []
    for entry in slice_entries:
        route = (
            f"{entry.get('sender')} &rarr; {entry.get('dest')}"
            if entry.get("sender") is not None
            else _esc(entry.get("pid", ""))
        )
        label = _esc(
            entry.get("message_kind") or entry.get("value", "")
        )
        flag = (
            "<span class='drift'>&#9670; diverges</span>"
            if entry.get("divergent")
            else ""
        )
        rows.append(
            f"<tr><td>{_esc(entry.get('kind'))}</td>"
            f"<td>{_fmt(entry.get('step'))}</td>"
            f"<td>{_fmt(entry.get('seq', ''))}</td>"
            f"<td>{route}</td><td>{label}</td>"
            f"<td>{_fmt(entry.get('depth', ''))}</td><td>{flag}</td></tr>"
        )
    if rows:
        parts.append(
            "<table><tr><th>event</th><th>step</th><th>seq</th>"
            "<th>route</th><th>kind/value</th><th>depth</th><th></th></tr>"
            + "".join(rows)
            + "</table>"
        )
    changed = divergence.get("changed") or []
    if changed:
        parts.append(
            "<p class='legend'>field deltas: "
            + "; ".join(_esc(delta) for delta in changed)
            + "</p>"
        )
    parts.append("</section>")
    return "".join(parts)


def _scaling_section(store: TrendStore, diagnostics: list[str]) -> str:
    try:
        latest = store.latest("E4_scaling")
    except ValueError:
        latest = None
    if latest is None:
        message = (
            "no scaling record (run `pytest benchmarks/bench_e4_scaling.py "
            "--benchmark-only`)"
        )
        diagnostics.append(message)
        return (
            "<section id='scaling'><h2>Scaling (E4)</h2>"
            f"{_diag(message)}</section>"
        )
    curves = latest["payload"]
    series: dict[str, tuple[list[float], list[float]]] = {}
    slopes = []
    for curve in curves if isinstance(curves, list) else []:
        points = [
            (math.log10(n), math.log10(w))
            for n, w in zip(curve.get("n_values", []), curve.get("mean_words", []))
            if isinstance(w, (int, float)) and w == w and w > 0
        ]
        if points:
            series[curve.get("protocol", "?")] = (
                [x for x, _ in points],
                [y for _, y in points],
            )
        slope = curve.get("slope_words_per_round")
        if isinstance(slope, (int, float)):
            slopes.append(f"{curve.get('protocol')}: {slope:.2f}")
    chart = _line_chart(
        series, width=420, height=180,
        title="mean words vs n (log10/log10)",
    )
    slope_line = (
        f"<p>fitted per-round log-log slopes: {_esc(', '.join(slopes))}</p>"
        if slopes
        else ""
    )
    return (
        "<section id='scaling'><h2>Scaling (E4)</h2>"
        f"{chart}{slope_line}</section>"
    )


def _rate_chart(
    series: dict[str, tuple[list[float], list[float]]],
    knee_rate: float | None,
    width: int = 420,
    height: int = 160,
    title: str = "",
) -> str:
    """Fraction-vs-rate curves on a shared [0, 1] y-scale + knee marker.

    Unlike :func:`_line_chart` (which normalizes each polyline to its own
    range -- fine for magnitudes, misleading for rates), every series
    here shares the fixed [0, 1] domain, so "decide rate crosses
    deadlock fraction" reads directly off the pane.  The knee, when
    estimated, renders as a dashed vertical marker at its rate.
    """
    drawn = {name: (xs, ys) for name, (xs, ys) in series.items() if xs and ys}
    if not drawn:
        return "<p class='diag'>(no data points)</p>"
    pad = 6
    all_xs = [x for xs, _ in drawn.values() for x in xs]
    x_lo, x_hi = min(all_xs), max(all_xs)
    x_span = (x_hi - x_lo) or 1.0

    def px(x: float) -> float:
        return pad + (x - x_lo) / x_span * (width - 2 * pad)

    def py(y: float) -> float:
        return height - pad - max(0.0, min(1.0, y)) * (height - 2 * pad)

    parts = [
        f"<div class='chart-title'>{_esc(title)}</div>" if title else "",
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} {height}'"
        " role='img'>",
    ]
    for index, (name, (xs, ys)) in enumerate(drawn.items()):
        color = _PALETTE[index % len(_PALETTE)]
        points = " ".join(
            f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys)
        )
        parts.append(
            f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
            f"points='{points}'/>"
        )
    if knee_rate is not None and x_lo <= knee_rate <= x_hi:
        marker = px(knee_rate)
        parts.append(
            f"<line x1='{marker:.1f}' y1='{pad}' x2='{marker:.1f}' "
            f"y2='{height - pad}' stroke='#c92a2a' stroke-width='1' "
            "stroke-dasharray='4 3'/>"
            f"<text x='{marker + 3:.1f}' y='{pad + 9}' font-size='9' "
            f"fill='#c92a2a'>knee {knee_rate:g}</text>"
        )
    parts.append(
        "<text x='4' y='12' font-size='9' fill='#888'>1</text>"
        f"<text x='4' y='{height - 2}' font-size='9' fill='#888'>0</text>"
        f"<text x='{width - 4}' y='{height - 2}' font-size='9' fill='#888' "
        f"text-anchor='end'>rate={_fmt(x_hi)}</text>"
    )
    parts.append("</svg>")
    legend = " &middot; ".join(
        f"<span style='color:{_PALETTE[i % len(_PALETTE)]}'>&#9632;</span> "
        f"{_esc(name)}"
        for i, name in enumerate(drawn)
    )
    parts.append(f"<div class='legend'>{legend}</div>")
    return "".join(part for part in parts if part)


def _degradation_section(
    degradation: dict[str, Any] | None,
    degradation_path: str | Path | None,
    store: TrendStore,
    diagnostics: list[str],
) -> str:
    source = degradation_path
    if degradation is None:
        # No standalone sweep artifact: fall back to the trend store's
        # `degradation` series (the CI smoke sweep).
        try:
            latest = store.latest("degradation")
        except ValueError:
            latest = None
        if latest is not None:
            degradation = latest["payload"]
            source = "trend store: degradation (smoke sweep)"
    if degradation is None:
        message = (
            "no degradation sweep (run `python -m repro degrade "
            "--scenario lossy_uniform`)"
        )
        diagnostics.append(message)
        return (
            "<section id='degradation'><h2>Degradation curves</h2>"
            f"{_diag(message)}</section>"
        )
    points = degradation.get("points") or []
    xs = [float(p.get("rate", 0.0)) for p in points]

    def fraction(key: str) -> list[float]:
        return [float(p.get(key) or 0.0) for p in points]

    knee = degradation.get("knee")
    knee_rate = knee.get("rate") if isinstance(knee, dict) else None
    fraction_chart = _rate_chart(
        {
            "decide rate": (xs, fraction("decide_rate")),
            "deadlock": (xs, fraction("deadlock_fraction")),
            "exhausted": (xs, fraction("exhausted_fraction")),
            "whp anomaly": (xs, fraction("whp_anomaly_rate")),
        },
        knee_rate,
        title=(
            f"{degradation.get('scenario')}: outcome fractions vs "
            "hostility rate"
        ),
    )
    words_chart = _line_chart(
        {
            "words sent": (
                xs, [float(p.get("words_sent_mean") or 0.0) for p in points]
            ),
            "words delivered": (
                xs,
                [float(p.get("words_delivered_mean") or 0.0) for p in points],
            ),
        },
        width=420,
        height=160,
        title="mean words vs hostility rate (correct senders / delivered)",
    )
    if knee is None:
        knee_line = (
            "<p class='ok'>no knee: decide-rate stayed at or above "
            f"{_fmt(degradation.get('threshold'))} across the swept rates</p>"
        )
    else:
        low, high = knee.get("decide_rate_interval", (None, None))
        knee_line = (
            f"<p class='drift'>knee at rate {_fmt(knee.get('rate'))}: "
            f"decide-rate {_fmt(knee.get('decide_rate'))} "
            f"(95% CI [{_fmt(low)}, {_fmt(high)}]) fell below "
            f"{_fmt(knee.get('threshold'))}</p>"
        )
    rows = []
    for point in points:
        coin = point.get("coin_success_rate") or {}
        faults = point.get("link_faults") or {}
        rows.append(
            f"<tr><td>{_fmt(point.get('rate'))}</td>"
            f"<td>{_fmt(point.get('decide_rate'))}</td>"
            f"<td>{_fmt(point.get('deadlock_fraction'))}</td>"
            f"<td>{_fmt(point.get('whp_anomaly_rate'))}</td>"
            f"<td>{_fmt(coin.get('median', ''))}</td>"
            f"<td>{_fmt(point.get('words_sent_mean'))}</td>"
            f"<td>{_fmt(point.get('words_delivered_mean'))}</td>"
            f"<td>{_fmt(faults.get('drops', 0))}/"
            f"{_fmt(faults.get('duplicates', 0))}/"
            f"{_fmt(faults.get('reorders', 0))}/"
            f"{_fmt(faults.get('corruptions', 0))}</td></tr>"
        )
    table = (
        "<table><tr><th>rate</th><th>decide</th><th>deadlock</th>"
        "<th>whp!</th><th>coin ok (med)</th><th>words sent</th>"
        "<th>delivered</th><th>faults d/u/r/c</th></tr>"
        + "".join(rows)
        + "</table>"
        if rows
        else ""
    )
    return (
        "<section id='degradation'><h2>Degradation curves</h2>"
        f"<p>{_esc(source)} &mdash; scenario="
        f"{_esc(degradation.get('scenario'))} "
        f"n={_fmt(degradation.get('n'))} f={_fmt(degradation.get('f'))} "
        f"seeds={_fmt(degradation.get('seeds'))}/rate</p>"
        f"<div class='charts'><div>{fraction_chart}</div>"
        f"<div>{words_chart}</div></div>"
        + knee_line
        + table
        + "</section>"
    )


# -- assembly ----------------------------------------------------------------


def build_dashboard(
    recording=None,
    recording_path: str | Path | None = None,
    telemetry: dict[str, Any] | None = None,
    store: TrendStore | None = None,
    atlas: Any = None,
    divergence: dict[str, Any] | None = None,
    divergence_path: str | Path | None = None,
    degradation: dict[str, Any] | None = None,
    degradation_path: str | Path | None = None,
    rel_tol: float = 0.25,
    title: str = "repro dashboard",
    notes: list[str] | None = None,
) -> tuple[str, list[str]]:
    """Assemble the dashboard HTML; returns ``(html, diagnostics)``.

    Every argument is optional; missing inputs become one-line
    diagnostics rendered in place of their section.  ``notes`` are
    caller-supplied diagnostics (e.g. a recording that failed to load)
    rendered under the header so they appear inside the pane too.
    """
    diagnostics: list[str] = []
    store = store if store is not None else TrendStore(".")
    banner = "".join(_diag(note) for note in notes or ())
    sections = [
        _run_section(recording, recording_path, diagnostics),
        _telemetry_section(telemetry, diagnostics),
        _trends_section(store, rel_tol, diagnostics),
        _conformance_section(store, diagnostics),
        _divergence_section(divergence, divergence_path, diagnostics),
        _fuzzing_section(store, diagnostics),
        _degradation_section(
            degradation, degradation_path, store, diagnostics
        ),
        _coverage_section(atlas, diagnostics),
        _scaling_section(store, diagnostics),
    ]
    document = (
        "<!doctype html>\n"
        "<html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        "<p class='legend'>self-contained report: virtual-time telemetry, "
        "cross-run trends, paper-property conformance, scaling &mdash; "
        "generated by <code>python -m repro dashboard</code></p>"
        + banner
        + "".join(sections)
        + "</body></html>\n"
    )
    return document, diagnostics


def render_dashboard(
    out: str | Path,
    recording_path: str | Path | None = None,
    root: str | Path = ".",
    rel_tol: float = 0.25,
) -> tuple[Path, list[str]]:
    """Load whatever inputs exist and write the dashboard to ``out``.

    Returns ``(path, diagnostics)``.  Damaged inputs (truncated
    recording, foreign-schema sidecar) degrade to diagnostics exactly
    like missing ones -- the dashboard never refuses to render.
    """
    from repro.experiments.coverage_atlas import CoverageAtlas
    from repro.sim.flightrecorder import load_recording
    from repro.sim.telemetry import (
        load_telemetry,
        telemetry_from_events,
        telemetry_path_for,
    )

    diagnostics: list[str] = []
    recording = None
    telemetry = None
    if recording_path is not None:
        try:
            recording = load_recording(recording_path)
        except (OSError, ValueError) as exc:
            diagnostics.append(f"recording unusable: {exc}")
        if recording is not None:
            sidecar = telemetry_path_for(recording_path)
            if sidecar.exists():
                try:
                    telemetry = load_telemetry(sidecar)
                except ValueError as exc:
                    diagnostics.append(f"telemetry sidecar unusable: {exc}")
            if telemetry is None:
                telemetry = telemetry_from_events(recording.events)
    divergence = None
    divergence_path = None
    reports = sorted(
        Path(root).glob("*.divergence.json"),
        key=lambda p: p.stat().st_mtime,
    )
    if reports:
        import json

        divergence_path = reports[-1]
        try:
            divergence = json.loads(divergence_path.read_text())
        except (OSError, ValueError) as exc:
            diagnostics.append(f"divergence report unusable: {exc}")
            divergence_path = None
    degradation = None
    degradation_path = None
    sweeps = sorted(
        Path(root).glob("degradation_*.json"),
        key=lambda p: p.stat().st_mtime,
    )
    if sweeps:
        import json

        degradation_path = sweeps[-1]
        try:
            degradation = json.loads(degradation_path.read_text())
        except (OSError, ValueError) as exc:
            diagnostics.append(f"degradation sweep unusable: {exc}")
            degradation_path = None
    document, build_diags = build_dashboard(
        recording=recording,
        recording_path=recording_path,
        telemetry=telemetry,
        store=TrendStore(root),
        atlas=CoverageAtlas(root),
        divergence=divergence,
        divergence_path=divergence_path,
        degradation=degradation,
        degradation_path=degradation_path,
        rel_tol=rel_tol,
        notes=diagnostics,
    )
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(document)
    return out, diagnostics + build_diags
