"""Minimal ASCII scatter/line plots for experiment output.

EXPERIMENTS.md and the bench logs show curve *shapes* (the quadratic gap,
the crossover); a dependency-free log-log scatter is enough and keeps the
artefacts greppable text.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["loglog_plot"]

_MARKERS = "ox+*#@%&"


def loglog_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on shared log-log axes.

    ``series`` maps a label to its points; all coordinates must be
    positive.  Later series overwrite earlier ones on collisions (the
    legend notes the marker order).
    """
    # Non-finite points (NaN holes from failed runs) are dropped rather
    # than crashing the render: a scaling sweep where one n ran out of
    # budget should still plot the points it has.
    series = {
        label: [
            (x, y)
            for x, y in pts
            if math.isfinite(x) and math.isfinite(y)
        ]
        for label, pts in series.items()
    }
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    if any(x <= 0 or y <= 0 for x, y in points):
        raise ValueError("log-log plot needs positive coordinates")

    log_xs = [math.log10(x) for x, _ in points]
    log_ys = [math.log10(y) for _, y in points]
    x_low, x_high = min(log_xs), max(log_xs)
    y_low, y_high = min(log_ys), max(log_ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = round((math.log10(x) - x_low) / x_span * (width - 1))
            row = round((math.log10(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} (log scale, {10 ** y_low:.3g} .. {10 ** y_high:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label} (log scale, {10 ** x_low:.3g} .. {10 ** x_high:.3g})"
    )
    legend = "  ".join(
        f"{marker}={label}" for marker, label in zip(_MARKERS, series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
