"""Cross-run coverage atlas: which interleavings have we *ever* seen?

One :class:`~repro.sim.coverage.CoverageProbe` snapshot describes one
run; this module accumulates the signature **sets** of many runs into a
schema-versioned JSONL journal (``BENCH_coverage_atlas.jsonl`` at the
repository root, the trend store's sibling) so the question "did this
seed/scheduler/protocol explore anything new?" has a durable answer.
Each record stores the run's identity header, its full signature list,
and the novelty accounting at append time -- which signatures were new
against everything recorded before, and how many distinct signatures
the atlas knew afterwards -- so growth curves and new-coverage rates
render straight off the journal without re-deriving set unions.

The atlas is the measurement half of the ROADMAP's coverage-guided
schedule fuzzing item: a fuzzer mutates schedules *toward* signatures
the atlas has never seen, and a conformance sweep whose seeds stop
contributing new signatures (``new-coverage rate 0%``) is a sweep that
re-explores one interleaving -- exactly the condition the nightly CI
coverage job alarms on when monitors are simultaneously flagging rate
anomalies.

Render with ``python -m repro coverage`` (atlas view: growth sparkline,
per-family breakdown, rarest-hit signatures) or ``python -m repro
coverage <recording.jsonl>`` (per-run view: recompute a recording's
coverage and diff it against the atlas).  Damaged or foreign journals
fail loudly with one-line diagnoses, same policy as the trend store.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable

from repro.experiments.store import load_jsonl
from repro.experiments.trends import sparkline

__all__ = [
    "ATLAS_FILENAME",
    "ATLAS_SCHEMA",
    "ATLAS_SCHEMA_VERSION",
    "CoverageAtlas",
    "format_atlas",
    "format_coverage_run",
]

ATLAS_SCHEMA = "repro.coverage_atlas"
ATLAS_SCHEMA_VERSION = 1
ATLAS_FILENAME = "BENCH_coverage_atlas.jsonl"


class CoverageAtlas:
    """Append-only journal of per-run coverage signature sets."""

    def __init__(self, root: str | Path = ".") -> None:
        self.root = Path(root)
        self.path = self.root / ATLAS_FILENAME

    def load(self) -> list[dict]:
        """All records, oldest first; ``ValueError`` (one line, with the
        record number) on foreign schemas or future versions."""
        if not self.path.exists():
            return []
        records = load_jsonl(self.path)
        for index, record in enumerate(records, start=1):
            if record.get("schema") != ATLAS_SCHEMA:
                raise ValueError(
                    f"{self.path}: record {index} has schema "
                    f"{record.get('schema')!r}, expected {ATLAS_SCHEMA!r}"
                )
            if record.get("version") != ATLAS_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: record {index} has version "
                    f"{record.get('version')!r}, this build reads "
                    f"{ATLAS_SCHEMA_VERSION}"
                )
        return records

    def known_signatures(self, records: list[dict] | None = None) -> set[str]:
        """Every signature any recorded run has ever covered."""
        if records is None:
            records = self.load()
        known: set[str] = set()
        for record in records:
            known.update(record["signatures"])
        return known

    def record_run(
        self,
        run: dict[str, Any],
        signatures: Iterable[str],
        ts: float | None = None,
    ) -> dict:
        """Append one run's signature set with novelty accounting.

        ``run`` is the identity header (protocol, n, f, seed, scheduler,
        source...); novelty is judged against everything already in the
        journal at append time.  Returns the appended record.
        """
        known = self.known_signatures()
        signatures = sorted(set(signatures))
        new = sorted(set(signatures) - known)
        record = {
            "schema": ATLAS_SCHEMA,
            "version": ATLAS_SCHEMA_VERSION,
            "ts": time.time() if ts is None else ts,
            "run": dict(run),
            "signatures": signatures,
            "signature_count": len(signatures),
            "new_signatures": new,
            "new_count": len(new),
            "known_after": len(known | set(signatures)),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        return record

    # -- derived views ---------------------------------------------------------

    def growth(self, records: list[dict] | None = None) -> list[dict]:
        """Per-record growth curve: new signatures and atlas size."""
        if records is None:
            records = self.load()
        return [
            {
                "index": index,
                "run": record["run"],
                "signatures": record["signature_count"],
                "new": record["new_count"],
                "known_after": record["known_after"],
                "new_rate": (
                    record["new_count"] / record["signature_count"]
                    if record["signature_count"]
                    else 0.0
                ),
            }
            for index, record in enumerate(records, start=1)
        ]

    def rarest(
        self, k: int = 10, records: list[dict] | None = None
    ) -> list[tuple[str, int]]:
        """The ``k`` signatures present in the fewest runs (ties broken
        alphabetically) -- the thin ice of the explored schedule space,
        and the fuzzer's first targets."""
        if records is None:
            records = self.load()
        runs_with: dict[str, int] = {}
        for record in records:
            for signature in record["signatures"]:
                runs_with[signature] = runs_with.get(signature, 0) + 1
        ranked = sorted(runs_with.items(), key=lambda item: (item[1], item[0]))
        return ranked[:k]


# -- rendering ----------------------------------------------------------------


def _family_counts(signatures: Iterable[str]) -> dict[str, int]:
    families: dict[str, int] = {}
    for signature in signatures:
        family = signature.split(":", 1)[0]
        families[family] = families.get(family, 0) + 1
    return families


def format_coverage_run(
    snapshot: dict[str, Any],
    atlas: "CoverageAtlas | None" = None,
    source: str | None = None,
) -> str:
    """The per-run view: one recording's coverage, diffed vs the atlas."""
    signatures = snapshot.get("signatures", {})
    lines = []
    if source:
        lines.append(f"coverage of {source}")
    lines.append(
        f"{snapshot.get('total_signatures', len(signatures))} distinct "
        f"signatures, {snapshot.get('total_hits', 0)} hits over "
        f"{snapshot.get('counters', {}).get('events', 0)} kernel events"
    )
    families = snapshot.get("families", {})
    for name in sorted(families):
        entry = families[name]
        lines.append(
            f"  {name:<9} {entry['signatures']:>5} signatures  "
            f"{entry['hits']:>8} hits"
        )
    dropped = snapshot.get("dropped_signatures", 0)
    if dropped:
        lines.append(
            f"  ({dropped} hits beyond the {snapshot['signature_budget']}"
            "-key budget were dropped)"
        )
    if atlas is not None and atlas.path.exists():
        known = atlas.known_signatures()
        new = sorted(set(signatures) - known)
        lines.append(
            f"vs atlas {atlas.path}: {len(new)} of {len(signatures)} "
            f"signatures are new ({len(known)} known)"
        )
        for signature in new[:10]:
            lines.append(f"  + {signature}")
        if len(new) > 10:
            lines.append(f"  ... and {len(new) - 10} more")
    elif atlas is not None:
        lines.append(f"(no atlas at {atlas.path} yet; run `repro check` to seed it)")
    return "\n".join(lines)


def format_atlas(atlas: CoverageAtlas, rarest: int = 10) -> str:
    """The atlas view: growth curve, per-family census, rarest hits."""
    records = atlas.load()
    if not records:
        return (
            f"no coverage atlas at {atlas.path}\n"
            "(`repro check` and the conformance CI job append one record "
            "per monitored run)"
        )
    growth = atlas.growth(records)
    known = atlas.known_signatures(records)
    contributing = sum(1 for point in growth if point["new"])
    lines = [
        f"coverage atlas: {atlas.path}",
        f"{len(records)} runs recorded, {len(known)} distinct signatures, "
        f"{contributing}/{len(growth)} runs contributed new coverage",
        "",
        f"atlas growth   {sparkline([point['known_after'] for point in growth])}"
        f"  ({growth[0]['known_after']} -> {growth[-1]['known_after']})",
        f"new per run    {sparkline([float(point['new']) for point in growth])}"
        f"  (latest {growth[-1]['new']}, "
        f"rate {growth[-1]['new_rate']:.0%})",
        "",
        "signatures by family:",
    ]
    for family, count in sorted(_family_counts(known).items()):
        lines.append(f"  {family:<9} {count:>5}")
    ranked = atlas.rarest(rarest, records)
    if ranked:
        lines.append("")
        lines.append(f"rarest signatures (seen in fewest of {len(records)} runs):")
        for signature, runs_with in ranked:
            lines.append(f"  {runs_with:>3}x  {signature}")
    newest = records[-1]
    run = newest.get("run", {})
    header = ", ".join(f"{key}={run[key]}" for key in sorted(run))
    lines.append("")
    lines.append(f"newest record: {header or '(no run header)'}")
    return "\n".join(lines)
