"""Experiment E8: safety/liveness sweep (Definition 6.6).

A grid of protocol × Byzantine-strategy × scheduler, counting violations
of Validity, Agreement and Termination over seeds.  All legal cells must
show zero safety violations; liveness failures may appear only as
whp-committee shortfalls for the committee-based protocol (and are
reported, not hidden).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import derive_seed
from repro.experiments.parallel import parallel_map
from repro.experiments.protocols import make_runner
from repro.experiments.tables import format_table
from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    Adversary,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.runner import run_protocol, stop_when_all_decided

__all__ = ["SafetyCell", "format_safety", "run"]

STRATEGIES = ("silent-static", "silent-adaptive", "delay-targets")


def _make_adversary(strategy: str, n: int, f: int, seed: int) -> Adversary:
    rng = random.Random(derive_seed("e8", strategy, seed))
    if strategy == "silent-static":
        return Adversary(
            scheduler=RandomScheduler(rng), corruption=StaticCorruption(set(range(f)))
        )
    if strategy == "silent-adaptive":
        return Adversary(
            scheduler=RandomScheduler(rng),
            corruption=AdaptiveFirstSpeakersCorruption(),
        )
    if strategy == "delay-targets":
        return Adversary(
            scheduler=TargetedDelayScheduler(set(range(f, 2 * f)), rng),
            corruption=StaticCorruption(set(range(f))),
        )
    raise ValueError(f"unknown strategy {strategy!r}")


@dataclass(frozen=True)
class SafetyCell:
    protocol: str
    strategy: str
    n: int
    f: int
    trials: int
    terminated: int
    agreement_violations: int
    validity_violations: int


def _trial(
    protocol: str, strategy: str, n: int, seed: int, unanimous_value: int | None
) -> tuple[int, tuple[bool, bool] | None]:
    """One seeded run; top-level so sweep workers can pickle it.

    Returns ``(f_used, (agreement_violated, validity_violated) | None)``.
    """
    value_fn = (
        (lambda ctx: unanimous_value) if unanimous_value is not None
        else (lambda ctx: ctx.pid % 2)
    )
    factory, params, f = make_runner(protocol, n, seed=seed, value_fn=value_fn)
    result = run_protocol(
        n, f, factory, adversary=_make_adversary(strategy, n, f, seed),
        params=params, stop_condition=stop_when_all_decided, seed=seed,
    )
    if not (result.live and result.all_correct_decided):
        return f, None
    agreement_violated = not result.agreement
    validity_violated = (
        unanimous_value is not None and result.decided_values != {unanimous_value}
    )
    return f, (agreement_violated, validity_violated)


def run_cell(
    protocol: str,
    strategy: str,
    n: int,
    seeds,
    unanimous_value: int | None = None,
    workers: int | None = None,
) -> SafetyCell:
    """One grid cell.  ``unanimous_value`` switches inputs from the
    split pattern to all-same (which arms the validity check)."""
    terminated = agreement_violations = validity_violations = 0
    outcomes = parallel_map(
        _trial,
        [(protocol, strategy, n, seed, unanimous_value) for seed in seeds],
        workers=workers,
    )
    trials = len(outcomes)
    f_used = outcomes[-1][0] if outcomes else 0
    for _, violations in outcomes:
        if violations is None:
            continue
        terminated += 1
        agreement_violated, validity_violated = violations
        if agreement_violated:
            agreement_violations += 1
        if validity_violated:
            validity_violations += 1
    return SafetyCell(
        protocol=protocol,
        strategy=strategy,
        n=n,
        f=f_used,
        trials=trials,
        terminated=terminated,
        agreement_violations=agreement_violations,
        validity_violations=validity_violations,
    )


def run(
    protocols=("whp_ba", "mmr", "cachin"),
    strategies=STRATEGIES,
    n: int = 40,
    seeds=range(5),
    workers: int | None = None,
) -> list[SafetyCell]:
    cells = []
    for protocol in protocols:
        for strategy in strategies:
            cells.append(run_cell(protocol, strategy, n, seeds, workers=workers))
            cells.append(
                run_cell(
                    protocol, strategy, n, seeds, unanimous_value=1, workers=workers
                )
            )
    return cells


def format_safety(cells: list[SafetyCell]) -> str:
    headers = [
        "protocol", "strategy", "n", "f", "terminated",
        "agreement viol", "validity viol",
    ]
    rows = [
        [
            cell.protocol, cell.strategy, cell.n, cell.f,
            f"{cell.terminated}/{cell.trials}",
            cell.agreement_violations, cell.validity_violations,
        ]
        for cell in cells
    ]
    return format_table(headers, rows)
