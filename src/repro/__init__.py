"""repro -- reproduction of "Not a COINcidence: Sub-Quadratic Asynchronous
Byzantine Agreement WHP" (Cohen, Keidar, Spiegelman; PODC 2020).

The package is organised bottom-up:

* :mod:`repro.crypto` -- VRF, signatures, Shamir, threshold coins, PKI.
* :mod:`repro.sim` -- discrete-event asynchronous simulator whose
  scheduler *is* the (delayed-adaptive) adversary.
* :mod:`repro.core` -- the paper's Algorithms 1-4 and committee sampling.
* :mod:`repro.baselines` -- Ben-Or, Bracha, Rabin, Cachin-style and MMR
  Byzantine Agreement (the other rows of the paper's Table 1).
* :mod:`repro.analysis` -- the paper's closed-form bounds and the
  statistics used by the experiment harness.

Quickstart::

    from repro import ProtocolParams, byzantine_agreement, run_protocol
    from repro.sim import stop_when_all_decided

    params = ProtocolParams.simulation_scale(n=60, f=4, lam=45)
    result = run_protocol(
        60, 4,
        lambda ctx: byzantine_agreement(ctx, ctx.pid % 2),
        corrupt={0, 1, 2, 3},
        params=params,
        stop_condition=stop_when_all_decided,
    )
    print(result.decided_values, result.words)
"""

from repro.core import (
    BOT,
    ProtocolParams,
    approve,
    byzantine_agreement,
    hybrid_agreement,
    multivalued_agreement,
    sample_committee,
    shared_coin,
    whp_coin,
)
from repro.crypto import PKI
from repro.sim import (
    Adversary,
    RunResult,
    run_protocol,
    stop_when_all_decided,
    stop_when_all_returned,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "BOT",
    "PKI",
    "ProtocolParams",
    "RunResult",
    "approve",
    "byzantine_agreement",
    "hybrid_agreement",
    "multivalued_agreement",
    "run_protocol",
    "sample_committee",
    "shared_coin",
    "stop_when_all_decided",
    "stop_when_all_returned",
    "whp_coin",
    "__version__",
]
