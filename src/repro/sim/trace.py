"""Event tracing: an auditable record of a run.

A :class:`TraceRecorder` subscribes to a simulation's kernel event bus
(:mod:`repro.sim.events`) and logs sends, deliveries, corruptions and
decisions in delivery order.  Used by debugging sessions, the examples,
and tests that assert causal ordering facts that the aggregate metrics
cannot express (e.g. "every SECOND message was sent after its sender's
FIRST quorum filled").

Historically ``attach_trace`` monkeypatched the kernel's ``submit`` /
``_deliver`` / ``corrupt`` methods; it is now a thin wrapper over
``simulation.events.subscribe`` and exists for backward compatibility.
New code that needs the full event taxonomy (wait blocking, protocol
phases) or a persistable recording should subscribe a
:class:`~repro.sim.flightrecorder.FlightRecorder` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator

from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    SendEvent,
)

if TYPE_CHECKING:
    from repro.sim.network import Simulation

__all__ = ["TraceEvent", "TraceRecorder", "attach_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send``, ``deliver``, ``corrupt``, ``decide``.
    ``step`` is the global delivery counter at the time of the event, so
    events are totally ordered by (step, index-within-step).

    ``detail`` is a decision's value, or -- for deliver events -- an
    immutable :class:`~repro.sim.events.PayloadSummary` snapshot of the
    payload (kind, instance, words, repr).  Earlier versions stored the
    live payload object, which silently invalidated recordings whenever a
    protocol mutated or reused a payload after delivery; code that needs
    the live object should subscribe to the event bus directly and read
    ``DeliverEvent.payload`` during the callback.
    """

    step: int
    kind: str
    pid: int
    peer: int | None = None
    instance: Hashable | None = None
    message_kind: str | None = None
    detail: object = None


class TraceRecorder:
    """Accumulates :class:`TraceEvent` rows; query helpers included.

    Construct it standalone (tests build rows by hand) or subscribe its
    :meth:`on_event` to a simulation's bus -- which is exactly what
    :func:`attach_trace` does.  Only the four classic event kinds are
    kept; the richer kernel taxonomy stays on the bus.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def on_event(self, event: KernelEvent) -> None:
        """Bus subscriber: narrow kernel events into classic trace rows."""
        if isinstance(event, SendEvent):
            self.record(
                TraceEvent(
                    step=event.step,
                    kind="send",
                    pid=event.sender,
                    peer=event.dest,
                    instance=event.instance,
                    message_kind=event.message_kind,
                )
            )
        elif isinstance(event, DeliverEvent):
            self.record(
                TraceEvent(
                    step=event.step,
                    kind="deliver",
                    pid=event.dest,
                    peer=event.sender,
                    instance=event.instance,
                    message_kind=event.message_kind,
                    # Immutable snapshot -- stays valid however the
                    # protocol treats the payload object afterwards.
                    detail=event.summary,
                )
            )
        elif isinstance(event, CorruptEvent):
            self.record(TraceEvent(step=event.step, kind="corrupt", pid=event.pid))
        elif isinstance(event, DecideEvent):
            self.record(
                TraceEvent(
                    step=event.step, kind="decide", pid=event.pid, detail=event.value
                )
            )

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_process(self, pid: int) -> list[TraceEvent]:
        return [event for event in self.events if event.pid == pid]

    def sends_by(self, pid: int, message_kind: str | None = None) -> list[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == "send"
            and event.pid == pid
            and (message_kind is None or event.message_kind == message_kind)
        ]

    def first(self, kind: str, **fields) -> TraceEvent | None:
        for event in self.events:
            if event.kind != kind:
                continue
            if all(getattr(event, name) == value for name, value in fields.items()):
                return event
        return None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def delivery_order(self) -> list[tuple[int, int]]:
        """The run's schedule as ``(sender, dest)`` pairs in delivery order.

        Together with :class:`~repro.sim.adversary.ReplayScheduler` this
        lets an interesting run (a rare failure, a shrunk counterexample)
        be re-executed deterministically -- e.g. under extra
        instrumentation -- as long as the protocol code is unchanged.
        """
        return [
            (event.peer, event.pid)
            for event in self.events
            if event.kind == "deliver"
        ]

    def render(self, limit: int = 50) -> str:
        """Human-readable dump of the first ``limit`` events."""
        lines = []
        for event in self.events[:limit]:
            peer = f" -> {event.peer}" if event.peer is not None else ""
            kind = f" {event.message_kind}" if event.message_kind else ""
            detail = f" {event.detail!r}" if event.detail is not None else ""
            lines.append(
                f"[{event.step:6d}] {event.kind:8s} p{event.pid}{peer}{kind}"
                f" {event.instance if event.instance is not None else ''}{detail}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


def attach_trace(simulation: "Simulation") -> TraceRecorder:
    """Attach a recorder to a simulation's event bus; returns it.

    Idempotent: attaching twice to the same simulation returns the
    recorder already attached instead of silently double-recording every
    event (the failure mode of the old monkeypatch implementation).
    Compatibility shim -- see the module docstring for the event-bus API
    this now delegates to.
    """
    existing = getattr(simulation, "_trace_recorder", None)
    if existing is not None:
        return existing
    recorder = TraceRecorder()
    simulation.events.subscribe(recorder.on_event)
    simulation._trace_recorder = recorder
    return recorder
