"""Event tracing: an auditable record of a run.

A :class:`TraceRecorder` attaches to a :class:`~repro.sim.network.Simulation`
and logs sends, deliveries, corruptions and decisions in delivery order.
Used by debugging sessions, the examples, and tests that assert causal
ordering facts that the aggregate metrics cannot express (e.g. "every
SECOND message was sent after its sender's FIRST quorum filled").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator

if TYPE_CHECKING:
    from repro.sim.network import Simulation

__all__ = ["TraceEvent", "TraceRecorder", "attach_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send``, ``deliver``, ``corrupt``, ``decide``.
    ``step`` is the global delivery counter at the time of the event, so
    events are totally ordered by (step, index-within-step).
    """

    step: int
    kind: str
    pid: int
    peer: int | None = None
    instance: Hashable | None = None
    message_kind: str | None = None
    detail: object = None


class TraceRecorder:
    """Accumulates :class:`TraceEvent` rows; query helpers included."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_process(self, pid: int) -> list[TraceEvent]:
        return [event for event in self.events if event.pid == pid]

    def sends_by(self, pid: int, message_kind: str | None = None) -> list[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == "send"
            and event.pid == pid
            and (message_kind is None or event.message_kind == message_kind)
        ]

    def first(self, kind: str, **fields) -> TraceEvent | None:
        for event in self.events:
            if event.kind != kind:
                continue
            if all(getattr(event, name) == value for name, value in fields.items()):
                return event
        return None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def delivery_order(self) -> list[tuple[int, int]]:
        """The run's schedule as ``(sender, dest)`` pairs in delivery order.

        Together with :class:`~repro.sim.adversary.ReplayScheduler` this
        lets an interesting run (a rare failure, a shrunk counterexample)
        be re-executed deterministically -- e.g. under extra
        instrumentation -- as long as the protocol code is unchanged.
        """
        return [
            (event.peer, event.pid)
            for event in self.events
            if event.kind == "deliver"
        ]

    def render(self, limit: int = 50) -> str:
        """Human-readable dump of the first ``limit`` events."""
        lines = []
        for event in self.events[:limit]:
            peer = f" -> {event.peer}" if event.peer is not None else ""
            kind = f" {event.message_kind}" if event.message_kind else ""
            detail = f" {event.detail!r}" if event.detail is not None else ""
            lines.append(
                f"[{event.step:6d}] {event.kind:8s} p{event.pid}{peer}{kind}"
                f" {event.instance if event.instance is not None else ''}{detail}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


def attach_trace(simulation: "Simulation") -> TraceRecorder:
    """Attach a recorder to a not-yet-run simulation; returns it.

    Implemented by wrapping the kernel's ``submit``/``_deliver``/``corrupt``
    and each context's ``decide`` -- no kernel hooks needed, and zero cost
    when no trace is attached.
    """
    recorder = TraceRecorder()
    deliveries = {"count": 0}

    original_submit = simulation.submit
    original_deliver = simulation._deliver
    original_corrupt = simulation.corrupt

    def traced_submit(sender, dest, message):
        recorder.record(
            TraceEvent(
                step=deliveries["count"],
                kind="send",
                pid=sender,
                peer=dest,
                instance=message.instance,
                message_kind=type(message).__name__,
            )
        )
        original_submit(sender, dest, message)

    def traced_deliver(envelope):
        recorder.record(
            TraceEvent(
                step=deliveries["count"],
                kind="deliver",
                pid=envelope.dest,
                peer=envelope.sender,
                instance=envelope.instance,
                message_kind=type(envelope.payload).__name__,
                # The payload itself, for trusted-measurement analyses
                # (e.g. counting Lemma 4.2's 'common' values).  The trace
                # is an observer's tool, not part of the adversary
                # interface, so this does not weaken the model.
                detail=envelope.payload,
            )
        )
        deliveries["count"] += 1
        original_deliver(envelope)

    def traced_corrupt(pid):
        corrupted = original_corrupt(pid)
        if corrupted:
            recorder.record(
                TraceEvent(step=deliveries["count"], kind="corrupt", pid=pid)
            )
        return corrupted

    simulation.submit = traced_submit  # type: ignore[method-assign]
    simulation._deliver = traced_deliver  # type: ignore[method-assign]
    simulation.corrupt = traced_corrupt  # type: ignore[method-assign]

    for ctx in simulation.contexts:
        original_decide = ctx.decide

        def make_traced(original, pid):
            def traced(value):
                already = simulation.contexts[pid].decided
                original(value)
                if not already:
                    recorder.record(
                        TraceEvent(
                            step=deliveries["count"],
                            kind="decide",
                            pid=pid,
                            detail=value,
                        )
                    )
            return traced

        ctx.decide = make_traced(original_decide, ctx.pid)  # type: ignore[method-assign]
    return recorder
