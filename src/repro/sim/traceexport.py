"""Chrome trace-event export: open a flight recording in a real viewer.

:func:`export_chrome_trace` converts a recorded kernel-event log into the
Chrome trace-event JSON format (the ``chrome://tracing`` / Perfetto
object format), so a run becomes a scrollable timeline: one track (tid)
per process, ``ba-round``/``whp_coin``/``approve`` spans as nested
duration slices, wait-parks as slices between their block and wake,
send->deliver message flow as flow arrows, decisions and corruptions as
instant markers.

The simulation has no wall clock -- causality is the only time the
kernel knows -- so the exported timestamp axis is the *event-log index*
(one microsecond per event).  That makes timestamps strictly monotonic
(valid slice nesting is guaranteed) while preserving exactly the
information the recording holds: the total order of kernel events.  The
causal ``depth`` and kernel ``step`` of each event ride along in
``args`` for inspection.

Load the output via ``python -m repro export run.jsonl`` then *Open
trace file* in https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    PhaseEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
)
from repro.sim.flightrecorder import Recording

__all__ = [
    "chrome_trace_events",
    "divergence_trace_events",
    "export_chrome_trace",
    "save_chrome_trace",
    "save_divergence_trace",
]

# One synthetic trace "process" hosts every simulated process as a thread.
_TRACE_PID = 0


def _args(event: KernelEvent, **extra: Any) -> dict[str, Any]:
    payload = {"step": event.step, **extra}
    return {key: _jsonable(value) for key, value in payload.items()}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace_events(
    events: Iterable[KernelEvent], header: dict[str, Any] | None = None
) -> list[dict[str, Any]]:
    """Flatten a kernel-event log into a list of Chrome trace events."""
    trace: list[dict[str, Any]] = []
    pids_seen: set[int] = set()

    def thread_of(event: KernelEvent) -> int:
        pid = event.dest if isinstance(event, DeliverEvent) else getattr(
            event, "pid", getattr(event, "sender", 0)
        )
        pids_seen.add(pid)
        return pid

    for index, event in enumerate(events):
        ts = index  # microseconds; see module docstring
        kind = type(event)
        if kind is PhaseEvent:
            trace.append(
                {
                    "name": event.phase,
                    "cat": "phase",
                    "ph": "B" if event.action == "enter" else "E",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(event, instance=event.instance),
                }
            )
        elif kind is SendEvent:
            trace.append(
                {
                    "name": event.message_kind,
                    "cat": "flow",
                    "ph": "s",
                    "id": event.seq,
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(
                        event,
                        dest=event.dest,
                        instance=event.instance,
                        words=event.words,
                        depth=event.depth,
                    ),
                }
            )
        elif kind is DeliverEvent:
            tid = thread_of(event)
            trace.append(
                {
                    "name": event.message_kind,
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": event.seq,
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "args": _args(
                        event,
                        sender=event.sender,
                        instance=event.instance,
                        words=event.words,
                        depth=event.depth,
                    ),
                }
            )
            trace.append(
                {
                    "name": f"deliver {event.message_kind}",
                    "cat": "message",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "args": _args(
                        event,
                        seq=event.seq,
                        sender=event.sender,
                        instance=event.instance,
                    ),
                }
            )
        elif kind is WaitBlockEvent:
            trace.append(
                {
                    "name": f"wait {event.description}",
                    "cat": "wait",
                    "ph": "B",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(event),
                }
            )
        elif kind is WaitWakeEvent:
            trace.append(
                {
                    "name": f"wait {event.description}",
                    "cat": "wait",
                    "ph": "E",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(event),
                }
            )
        elif kind is DecideEvent:
            trace.append(
                {
                    "name": f"decide {event.value!r}",
                    "cat": "decision",
                    "ph": "i",
                    "s": "p",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(event, value=event.value, depth=event.depth),
                }
            )
        elif kind is CorruptEvent:
            trace.append(
                {
                    "name": "corrupted",
                    "cat": "corruption",
                    "ph": "i",
                    "s": "p",
                    "ts": ts,
                    "pid": _TRACE_PID,
                    "tid": thread_of(event),
                    "args": _args(event),
                }
            )

    run = ""
    if header:
        run = f"n={header.get('n')} f={header.get('f')} seed={header.get('seed')}"
    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "args": {"name": f"repro run {run}".strip()},
        }
    ]
    threads = set(range(header["n"])) if header and "n" in header else pids_seen
    corrupted = set(header.get("corrupted", ())) if header else set()
    for pid in sorted(threads):
        label = f"process {pid}" + (" (corrupted)" if pid in corrupted else "")
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": pid,
                "args": {"name": label},
            }
        )
    return metadata + trace


def export_chrome_trace(recording: Recording) -> dict[str, Any]:
    """A :class:`Recording` as a Chrome trace-event JSON object."""
    return {
        "traceEvents": chrome_trace_events(recording.events, recording.header),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro flight recording",
            **{
                key: _jsonable(value)
                for key, value in recording.header.items()
                if key != "k"
            },
            "deliveries": recording.summary.get("deliveries"),
            "duration": recording.summary.get("duration"),
            "words": recording.summary.get("words"),
        },
    }


def save_chrome_trace(path: str | Path, recording: Recording) -> Path:
    """Write ``recording`` to ``path`` as a Perfetto-loadable trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(export_chrome_trace(recording)) + "\n")
    return path


# -- divergence slices ---------------------------------------------------------


def _slice_matches(event: KernelEvent, entries) -> bool:
    kind = type(event)
    if kind in (SendEvent, DeliverEvent):
        label = "send" if kind is SendEvent else "deliver"
        return any(
            entry.get("kind") == label and entry.get("seq") == event.seq
            for entry in entries
        )
    label = {
        DecideEvent: "decide",
        WaitBlockEvent: "wait_block",
        WaitWakeEvent: "wait_wake",
        CorruptEvent: "corrupt",
        PhaseEvent: "phase",
    }.get(kind)
    return any(
        entry.get("kind") == label
        and entry.get("step") == event.step
        and entry.get("pid") == getattr(event, "pid", None)
        for entry in entries
    )


def divergence_trace_events(
    events: Iterable[KernelEvent],
    slice_entries,
    header: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Trace events for just a divergence slice, plus a DIVERGENCE marker.

    Filters the full event log down to the causal-slice entries of a
    :class:`~repro.sim.diffing.DivergenceReport` (matching messages by
    envelope seq, other events by (step, pid)), keeping the original
    event-log indices as timestamps so the slice lines up with a full
    trace of the same recording opened alongside it.
    """
    events = list(events)
    keep = [
        index
        for index, event in enumerate(events)
        if _slice_matches(event, slice_entries)
    ]
    subset = chrome_trace_events([events[i] for i in keep], header)
    # Restore original-log timestamps (chrome_trace_events re-indexed the
    # subset 0..k; records sharing a re-index came from the same source
    # event, so walk the groups in order).
    timestamps = iter(keep)
    current = None
    last_ts = -1
    for record in subset:
        if record["ph"] == "M":
            continue
        if record["ts"] != last_ts:
            last_ts = record["ts"]
            current = next(timestamps)
        record["ts"] = current
    divergent = [
        entry for entry in slice_entries if entry.get("divergent")
    ]
    if divergent:
        marker = divergent[-1]
        trace_ts = keep[-1] if keep else 0
        subset.append(
            {
                "name": "DIVERGENCE",
                "cat": "divergence",
                "ph": "i",
                "s": "g",  # global scope: draw across every track
                "ts": trace_ts,
                "pid": _TRACE_PID,
                "tid": marker.get("dest", marker.get("pid", 0)) or 0,
                "args": {
                    key: _jsonable(value)
                    for key, value in marker.items()
                    if key != "divergent"
                },
            }
        )
    return subset


def save_divergence_trace(
    path: str | Path,
    recording: Recording,
    slice_entries,
) -> Path:
    """Write a divergence slice as a Perfetto-loadable trace sidecar."""
    payload = {
        "traceEvents": divergence_trace_events(
            recording.events, slice_entries, recording.header
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro divergence slice",
            **{
                key: _jsonable(value)
                for key, value in recording.header.items()
                if key != "k"
            },
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload) + "\n")
    return path
