"""Schedule-space coverage: fold a run into interleaving signatures.

The telemetry probe (:mod:`repro.sim.telemetry`) measures *how much*
happened per virtual-time step; this module measures *which
interleavings* happened at all.  A :class:`CoverageProbe` is an
event-bus subscriber that folds the kernel event stream into a bounded
set of deterministic **coverage signatures** -- canonical strings, each
naming one schedule-space fact the adversary made true in this run:

* ``race:<instance-class>:<kind>^<kind>`` -- a delivery-order edge:
  message kind A was delivered to a destination while a kind-B message
  for the *same* (destination, instance) was still in flight, i.e. the
  scheduler resolved an A/B race in A's favour.  Covering both
  ``race:i:A^B`` and ``race:i:B^A`` across runs means both orders of
  that race have been exercised.
* ``block:<phase>:<wait>`` / ``wake:<phase>:<wait>:w<b>`` -- a wait
  condition parked (resp. resumed) inside a protocol phase; ``w<b>`` is
  the power-of-two bucket of how many processes remained parked at wake
  time, the wait-concurrency fingerprint of the interleaving.
* ``waitspan:<wait>:d<b>`` -- the causal-depth bucket a wait spanned
  (wake depth - block depth), i.e. how many message hops the adversary
  made that wait absorb.
* ``perm:<instance-class>:<kind>&gt;...`` -- the first-arrival order of
  message kinds within one protocol instance, the per-round delivery
  permutation class.
* ``delay:<kind>:h<b>`` -- an adversary delay site: a message of
  ``kind`` was held for ``step - sent_step`` deliveries, bucketed by
  power of two.
* ``corrupt:s<b>`` -- an adversary corruption site, bucketed by the
  kernel step at which the process fell.

Instance labels and wait descriptions embed round numbers
(``('whp_coin', 3)``, ``"approve('ba', 7)"``); signatures abstract every
integer to ``*`` so the same structural interleaving covers the same
signature in every round and every run -- that is what makes signature
sets comparable (and unionable) across seeds, schedulers and protocols.
Magnitudes (delays, wait spans, wake concurrency) are bucketed by
``int.bit_length`` so the signature space stays small and stable.

Design rules, inherited from the telemetry probe (DESIGN.md section 11):

* **Byte-deterministic**: identical event streams produce identical
  snapshots -- no wall clock, no randomness, no id()-ordering.  A
  recompute from a flight recording (:func:`coverage_from_events`)
  equals the live probe's snapshot exactly.
* **Bounded memory**: distinct signature keys are capped by
  ``signature_budget`` (drops are counted, deterministically, in
  ``dropped_signatures``); permutation tracking is capped per instance
  count and order length.  State is O(chunk + budget + in-flight),
  never O(events).
* **Bounded dispatch**: the online path is one list append per event;
  folding happens in chunks with every hot name aliased to a local.
  ``benchmarks/bench_observability_overhead.py`` bounds an attached
  probe's dispatch under the same < 3% envelope as the monitors.

Attach with ``run_protocol(..., coverage=probe)``; accumulate across
runs with :class:`repro.experiments.coverage_atlas.CoverageAtlas`;
render with ``python -m repro coverage``.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.sim.events import (
    CorruptEvent,
    DeliverEvent,
    KernelEvent,
    PhaseEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
)

__all__ = [
    "COVERAGE_SCHEMA",
    "COVERAGE_SCHEMA_VERSION",
    "CoverageProbe",
    "coverage_from_events",
    "signature_families",
    "signature_set",
]

COVERAGE_SCHEMA = "repro.coverage"
COVERAGE_SCHEMA_VERSION = 1

_DIGITS = re.compile(r"\d+")

# Longest first-arrival prefix kept per instance: permutation classes
# over more kinds than this collapse onto their length-8 prefix.
_ORDER_PREFIX = 8
# Distinct protocol instances tracked for permutation classes; runs
# with more instances count the overflow in ``dropped_instances``.
_INSTANCE_CAP = 4096

# Identity-cache sentinel: never equal (or identical) to any instance.
_MISSING = object()

# bit_length() lookup for small values: delays and wait spans are almost
# always < 4096, and a list index beats the method call on the hot path.
_BIT_LENGTH = [value.bit_length() for value in range(4096)]


def _abstract(value: Any) -> str:
    """Canonical instance class: integers (round ids, pids) become ``*``.

    ``('whp_coin', 3)`` and ``('whp_coin', 7)`` are the same schedule
    site in different rounds; abstracting the integers makes them cover
    the same signature.  Deterministic for every JSON-round-trippable
    instance label (tuples come back as tuples, see ``_as_instance``).
    """
    if isinstance(value, tuple):
        return "(" + ",".join(_abstract(item) for item in value) + ")"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return "*"
    return _DIGITS.sub("*", str(value))


class CoverageProbe:
    """Fold a kernel event stream into a coverage-signature multiset.

    Subscribe via ``run_protocol(..., coverage=probe)`` (or
    ``probe.attach(simulation)``); call :meth:`snapshot` after the run.

    The fold keeps raw tuple keys (live instance labels, interned kind
    strings, small int buckets) and defers *all* string rendering --
    digit abstraction, signature formatting, sorting -- to
    :meth:`snapshot`, so the per-event price is dict arithmetic only.
    """

    _CHUNK = 1024

    def __init__(self, signature_budget: int = 8192) -> None:
        if signature_budget < 8:
            raise ValueError("signature budget must be at least 8")
        self.signature_budget = signature_budget
        # Raw signature keys -> hit counts for the rare families (wait
        # blocks/wakes, corruptions).  Keys are tuples whose head names
        # the family; descriptions stay un-abstracted until snapshot.
        self._counts: dict[tuple, int] = {}
        # Distinct raw keys tracked so far (counts + per-instance race
        # keys); the budget caps this total.
        self._tracked = 0
        self._dropped = 0
        # Everything per-instance lives under ONE dict so the hot path
        # hashes the (nested-tuple) instance label at most once per
        # event: instance -> [buckets, races, order] where ``buckets``
        # is a dest-indexed list of {kind: in-flight count}, ``races``
        # maps winner kind -> {loser kind: hit count} (nested so the
        # race loop increments plain string keys, no tuple per edge),
        # and ``order`` is the first-arrival kind order (None until
        # first delivery).
        self._per_instance: dict[Any, list] = {}
        self._order_instances = 0
        self._dropped_instances = 0
        # Delay sites: kind -> 64 power-of-two hold-time buckets (a
        # list indexed by bit_length is the cheapest per-delivery
        # counter; rendered into delay:* signatures at snapshot).
        self._delay: dict[str, list[int]] = {}
        # Wait pairing and phase attribution.
        self._block_depth: dict[int, tuple[int, str]] = {}
        self._phase_stack: dict[int, list[str]] = {}
        self.counters = {
            "events": 0,
            "sends": 0,
            "delivers": 0,
            "wait_blocks": 0,
            "wait_wakes": 0,
            "corrupts": 0,
            "phases": 0,
        }
        # The online path, identical to the telemetry probe's: one
        # append, one length check, amortised chunk folds.
        pending_events: list[KernelEvent] = []
        self._pending_events = pending_events

        def on_event(
            event: KernelEvent,
            _append=pending_events.append,
            _pending=pending_events,
            _chunk=self._CHUNK,
            _fold=self._fold,
        ) -> None:
            _append(event)
            if len(_pending) >= _chunk:
                _fold()

        self.on_event = on_event

    def attach(self, simulation) -> "CoverageProbe":
        """Subscribe to ``simulation``'s event bus; returns self."""
        simulation.events.subscribe(self.on_event)
        return self

    # -- the fold --------------------------------------------------------------

    def _fold(self) -> None:
        """Fold the pending chunk into the raw signature counts.

        One tight loop, every hot name a local.  Additions must stay
        O(1) dict/int work per event: the overhead benchmark holds an
        attached probe inside the < 3% dispatch envelope.
        """
        chunk = self._pending_events
        counts = self._counts
        budget = self.signature_budget
        tracked = self._tracked
        dropped = self._dropped
        per_instance = self._per_instance
        order_instances = self._order_instances
        dropped_instances = self._dropped_instances
        delay = self._delay
        block_depth = self._block_depth
        phase_stack = self._phase_stack
        counters = self.counters
        n_sends = n_delivers = n_blocks = n_wakes = n_corrupts = n_phases = 0
        last_kind: str | None = None
        last_delay_row: list[int] | None = None
        # Instance labels repeat in bursts (one broadcast = n sends of
        # the same instance object), so an identity check usually dodges
        # the nested-tuple hash of the per-instance dict lookup.
        last_instance: Any = _MISSING
        last_entry: list | None = None
        send_cls = SendEvent
        deliver_cls = DeliverEvent
        order_prefix = _ORDER_PREFIX
        instance_cap = _INSTANCE_CAP
        bit_length = _BIT_LENGTH
        for event in chunk:
            cls = type(event)
            if cls is send_cls:
                n_sends += 1
                instance = event.instance
                kind = event.message_kind
                if instance is last_instance:
                    entry = last_entry
                else:
                    entry = per_instance.get(instance)
                    if entry is None:
                        entry = per_instance[instance] = [[], {}, None]
                    last_instance = instance
                    last_entry = entry
                buckets = entry[0]
                dest = event.dest
                if dest >= len(buckets):
                    buckets.extend([None] * (dest + 1 - len(buckets)))
                bucket = buckets[dest]
                if bucket is None:
                    buckets[dest] = {kind: 1}
                else:
                    bucket[kind] = bucket.get(kind, 0) + 1
            elif cls is deliver_cls:
                n_delivers += 1
                instance = event.instance
                kind = event.message_kind
                # Delay site (kinds arrive in bursts; the identity
                # check dodges the dict get on almost every delivery).
                if kind is not last_kind:
                    last_kind = kind
                    last_delay_row = delay.get(kind)
                    if last_delay_row is None:
                        delay[kind] = last_delay_row = [0] * 64
                held = event.step - event.sent_step
                last_delay_row[
                    bit_length[held] if held < 4096 else held.bit_length()
                ] += 1
                if instance is last_instance:
                    entry = last_entry
                else:
                    entry = per_instance.get(instance)
                    if entry is None:
                        entry = per_instance[instance] = [[], {}, None]
                    last_instance = instance
                    last_entry = entry
                # Race edges: every kind still in flight to this
                # (dest, instance) lost this race to ``kind``.
                buckets = entry[0]
                dest = event.dest
                bucket = buckets[dest] if dest < len(buckets) else None
                if bucket:
                    count = bucket.get(kind, 0) - 1
                    if count > 0:
                        bucket[kind] = count
                    elif kind in bucket:
                        del bucket[kind]
                    if bucket:
                        races = entry[1]
                        rmap = races.get(kind)
                        if rmap is None:
                            rmap = races[kind] = {}
                        for other in bucket:
                            seen = rmap.get(other)
                            if seen is None:
                                if tracked < budget:
                                    rmap[other] = 1
                                    tracked += 1
                                else:
                                    dropped += 1
                            else:
                                rmap[other] = seen + 1
                # Permutation class: first arrival order of kinds (an
                # insertion-ordered dict: O(1) membership, keys are the
                # order).
                order = entry[2]
                if order is None:
                    if order_instances < instance_cap:
                        entry[2] = {kind: None}
                        order_instances += 1
                    else:
                        dropped_instances += 1
                elif kind not in order and len(order) < order_prefix:
                    order[kind] = None
            elif cls is WaitBlockEvent:
                n_blocks += 1
                pid = event.pid
                stack = phase_stack.get(pid)
                phase = stack[-1] if stack else "-"
                block_depth[pid] = (event.depth, event.description)
                key = ("block", phase, event.description)
                seen = counts.get(key)
                if seen is None:
                    if tracked < budget:
                        counts[key] = 1
                        tracked += 1
                    else:
                        dropped += 1
                else:
                    counts[key] = seen + 1
            elif cls is WaitWakeEvent:
                n_wakes += 1
                pid = event.pid
                stack = phase_stack.get(pid)
                phase = stack[-1] if stack else "-"
                parked = block_depth.pop(pid, None)
                if parked is not None:
                    span_key = (
                        "waitspan",
                        parked[1],
                        (event.depth - parked[0]).bit_length(),
                    )
                    seen = counts.get(span_key)
                    if seen is None:
                        if tracked < budget:
                            counts[span_key] = 1
                            tracked += 1
                        else:
                            dropped += 1
                    else:
                        counts[span_key] = seen + 1
                key = (
                    "wake",
                    phase,
                    event.description,
                    len(block_depth).bit_length(),
                )
                seen = counts.get(key)
                if seen is None:
                    if tracked < budget:
                        counts[key] = 1
                        tracked += 1
                    else:
                        dropped += 1
                else:
                    counts[key] = seen + 1
            elif cls is CorruptEvent:
                n_corrupts += 1
                block_depth.pop(event.pid, None)
                phase_stack.pop(event.pid, None)
                key = ("corrupt", event.step.bit_length())
                seen = counts.get(key)
                if seen is None:
                    if tracked < budget:
                        counts[key] = 1
                        tracked += 1
                    else:
                        dropped += 1
                else:
                    counts[key] = seen + 1
            elif cls is PhaseEvent:
                n_phases += 1
                pid = event.pid
                if event.action == "enter":
                    stack = phase_stack.get(pid)
                    if stack is None:
                        phase_stack[pid] = [event.phase]
                    else:
                        stack.append(event.phase)
                else:
                    stack = phase_stack.get(pid)
                    if stack:
                        stack.pop()
        self._tracked = tracked
        self._dropped = dropped
        self._order_instances = order_instances
        self._dropped_instances = dropped_instances
        counters["events"] += len(chunk)
        counters["sends"] += n_sends
        counters["delivers"] += n_delivers
        counters["wait_blocks"] += n_blocks
        counters["wait_wakes"] += n_wakes
        counters["corrupts"] += n_corrupts
        counters["phases"] += n_phases
        del chunk[:]

    # -- snapshotting ----------------------------------------------------------

    def _render(self) -> dict[str, int]:
        """Collapse raw keys onto canonical signature strings.

        Digit abstraction merges per-round keys, so the rendered map is
        usually far smaller than the raw one; counts sum across merged
        keys.  Deterministic: raw keys fold in insertion order (first
        touch in event order), summation is commutative, and the
        returned dict is key-sorted.
        """
        abstract_cache: dict[Any, str] = {}
        desc_cache: dict[str, str] = {}
        digit_sub = _DIGITS.sub

        def iclass(instance: Any) -> str:
            label = abstract_cache.get(instance)
            if label is None:
                abstract_cache[instance] = label = _abstract(instance)
            return label

        def dclass(description: str) -> str:
            label = desc_cache.get(description)
            if label is None:
                desc_cache[description] = label = digit_sub("*", description)
            return label

        rendered: dict[str, int] = {}
        for instance, entry in self._per_instance.items():
            label = iclass(instance)
            for kind, rmap in entry[1].items():
                for other, count in rmap.items():
                    sig = f"race:{label}:{kind}^{other}"
                    rendered[sig] = rendered.get(sig, 0) + count
            order = entry[2]
            if order:
                sig = f"perm:{label}:{'>'.join(order)}"
                rendered[sig] = rendered.get(sig, 0) + 1
        for key, count in self._counts.items():
            family = key[0]
            if family == "block":
                sig = f"block:{key[1]}:{dclass(key[2])}"
            elif family == "wake":
                sig = f"wake:{key[1]}:{dclass(key[2])}:w{key[3]}"
            elif family == "waitspan":
                sig = f"waitspan:{dclass(key[1])}:d{key[2]}"
            else:  # corrupt
                sig = f"corrupt:s{key[1]}"
            rendered[sig] = rendered.get(sig, 0) + count
        for kind, row in self._delay.items():
            for bits, count in enumerate(row):
                if count:
                    sig = f"delay:{kind}:h{bits}"
                    rendered[sig] = rendered.get(sig, 0) + count
        return {sig: rendered[sig] for sig in sorted(rendered)}

    def snapshot(self) -> dict[str, Any]:
        """The JSON-ready coverage document (schema-versioned)."""
        if self._pending_events:
            self._fold()
        signatures = self._render()
        families: dict[str, dict[str, int]] = {}
        for sig, count in signatures.items():
            family = sig.split(":", 1)[0]
            entry = families.get(family)
            if entry is None:
                families[family] = {"signatures": 1, "hits": count}
            else:
                entry["signatures"] += 1
                entry["hits"] += count
        return {
            "schema": COVERAGE_SCHEMA,
            "version": COVERAGE_SCHEMA_VERSION,
            "signature_budget": self.signature_budget,
            "signatures": signatures,
            "families": {name: families[name] for name in sorted(families)},
            "total_signatures": len(signatures),
            "total_hits": sum(signatures.values()),
            "dropped_signatures": self._dropped,
            "dropped_instances": self._dropped_instances,
            "counters": dict(self.counters),
        }


def signature_set(snapshot: dict[str, Any]) -> set[str]:
    """The signature *set* of a snapshot (counts stripped) -- the unit
    the :class:`~repro.experiments.coverage_atlas.CoverageAtlas`
    accumulates across runs."""
    return set(snapshot.get("signatures", ()))


def signature_families(signatures) -> dict[str, int]:
    """Signature count per family prefix (``race``, ``perm``, ...).

    The family is everything before the first ``:``; the fuzzer's novelty
    accounting uses this to tell "a new signature in a known family" from
    "a family the corpus has never exhibited at all".
    """
    families: dict[str, int] = {}
    for signature in signatures:
        family = signature.split(":", 1)[0]
        families[family] = families.get(family, 0) + 1
    return dict(sorted(families.items()))


def coverage_from_events(
    events: Iterable[KernelEvent], signature_budget: int = 8192
) -> dict[str, Any]:
    """Replay a recorded event log through a fresh probe; returns the
    snapshot.  Because the fold reads only serialised event fields
    (never the live payload), recomputing from a flight recording is
    byte-identical to the probe that watched the run live -- asserted
    by ``tests/sim/test_coverage.py``."""
    probe = CoverageProbe(signature_budget=signature_budget)
    on_event = probe.on_event
    for event in events:
        on_event(event)
    return probe.snapshot()
