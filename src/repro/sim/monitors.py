"""Online conformance monitors: the paper's properties, checked on live runs.

Every guarantee the paper states is statistical or whp -- the coin
success rate rho (Lemma B.7), the committee properties S1-S4 with
W = ceil((2/3+3d) lambda) and B = floor((1/3-d) lambda) (Claim 1), the
approver's Graded Agreement (Definition 6.1) and BA's Agreement/Validity.
This module checks them *while runs execute* instead of leaving them to
whichever experiment script happens to aggregate the right numbers.

A :class:`MonitorSuite` is an event-bus subscriber plus a set of
:class:`Monitor` objects.  Attach it with
``run_protocol(..., monitors=suite)``: the suite sees every kernel event
online (cheap bookkeeping only -- no crypto, so a monitored run stays
byte-identical to a bare run) and, once the run is snapshotted, each
monitor's :meth:`~Monitor.finalize` performs the authoritative pass over
the run's protocol records and the trusted ground truth (committee
censuses via the PKI -- safe post-run, the verification counters are
already snapshotted).  A failed invariant becomes a structured
:class:`ViolationReport` embedding the offending events and the causal
critical-path slice from the flight-recorder log, so a violation arrives
with its explaining event chain.

Severities separate hard failures from expected whp mass:

* ``"safety"`` -- must never happen: two correct processes deciding
  different values, a decision on a never-proposed value, a committee
  membership claim contradicting the VRF ground truth.
* ``"whp"`` -- allowed with the paper's bounded probability: an S1-S4
  committee excursion, a coin invocation without unanimity, a Graded
  Agreement miss.  These are *flagged* per run and *aggregated* across
  runs (a suite may be reused across seeds); :meth:`MonitorSuite.report`
  compares the observed rates' Wilson intervals against the closed-form
  bounds of :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    event_to_record,
)
from repro.sim.flightrecorder import critical_path

if TYPE_CHECKING:
    from repro.sim.network import Simulation
    from repro.sim.runner import RunResult

__all__ = [
    "ApproverMonitor",
    "CoinMonitor",
    "CommitteeMonitor",
    "Monitor",
    "MonitorSuite",
    "SafetyMonitor",
    "SEVERITY_SAFETY",
    "SEVERITY_WHP",
    "ViolationReport",
    "as_suite",
    "default_monitors",
]

SEVERITY_SAFETY = "safety"
SEVERITY_WHP = "whp"


@dataclass(frozen=True)
class ViolationReport:
    """One checked property that did not hold, with its evidence.

    ``events`` are the offending event/record dicts (already
    JSON-friendly); ``critical_slice`` is the causal chain the flight
    recorder extracts up to the violation, so the report explains *how*
    the run got there, not just that it did.
    """

    monitor: str
    prop: str
    severity: str
    message: str
    step: int
    pids: tuple[int, ...] = ()
    instance: Any = None
    events: tuple[dict, ...] = ()
    critical_slice: tuple[dict, ...] = ()

    def describe(self) -> str:
        """The one-line rendering used by ``python -m repro check``."""
        pids = f" pids={list(self.pids)}" if self.pids else ""
        inst = f" instance={self.instance!r}" if self.instance is not None else ""
        return (
            f"[{self.severity}] {self.monitor}/{self.prop} "
            f"step {self.step}{pids}{inst}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "monitor": self.monitor,
            "property": self.prop,
            "severity": self.severity,
            "message": self.message,
            "step": self.step,
            "pids": list(self.pids),
            "instance": repr(self.instance) if self.instance is not None else None,
            "events": [dict(entry) for entry in self.events],
            "critical_slice": [dict(entry) for entry in self.critical_slice],
        }


class Monitor:
    """Base class: online event hook + authoritative end-of-run pass.

    ``watched`` lists the event types the suite dispatches to
    :meth:`on_event` (the empty tuple means finalize-only, keeping the
    online hot path to one dict lookup per event).  Monitors accumulate
    *across* runs when the same instance is attached to several
    ``run_protocol`` calls; :meth:`begin_run` resets per-run state only.
    """

    name = "monitor"
    watched: tuple[type, ...] = ()

    def __init__(self) -> None:
        self.violations: list[ViolationReport] = []
        self.runs = 0
        self._suite: "MonitorSuite | None" = None

    def begin_run(self) -> None:
        self.runs += 1

    def on_event(self, event: KernelEvent, events: list[KernelEvent]) -> None:
        """Online hook.  MUST stay pure bookkeeping: no crypto, no kernel
        access -- anything heavier would make observation observable."""

    def finalize(
        self, result: "RunResult", simulation: "Simulation", events: list[KernelEvent]
    ) -> None:
        """Authoritative pass after the run result is snapshotted."""

    def report(self) -> dict[str, Any]:
        """Cumulative (cross-run) conformance summary, JSON-friendly."""
        return {"runs": self.runs, "violations": len(self.violations)}

    # -- helpers ---------------------------------------------------------------

    def flag(self, violation: ViolationReport) -> ViolationReport:
        self.violations.append(violation)
        if self._suite is not None and self._suite.on_violation is not None:
            self._suite.on_violation(violation)
        return violation

    @staticmethod
    def _wilson(successes: int, trials: int):
        from repro.analysis.stats import BernoulliEstimate

        if trials <= 0:
            return None
        return BernoulliEstimate(successes=successes, trials=trials)

    @staticmethod
    def _estimate_dict(successes: int, trials: int) -> dict[str, Any]:
        estimate = Monitor._wilson(successes, trials)
        if estimate is None:
            return {"successes": successes, "trials": 0, "mean": None, "interval": None}
        return {
            "successes": successes,
            "trials": trials,
            "mean": estimate.mean,
            "interval": list(estimate.interval),
        }


class SafetyMonitor(Monitor):
    """BA safety: Agreement and Validity, checked live and re-checked final.

    * **Agreement** -- no two correct processes decide different values.
      Checked online on every :class:`DecideEvent` (a conflict fires the
      instant the second decision lands, with the causal slice to that
      decision), then rebuilt at finalize against the *final* corrupted
      set, since a process that decided while correct but was corrupted
      later does not count against the paper's property.
    * **Validity** -- every correct decision matches some correct
      process's proposal, read from the ``propose`` protocol records the
      core protocols annotate (values compared by ``repr``, the record
      log's canonical value encoding).  Vacuous when a protocol records
      no proposals (the baselines).
    """

    name = "safety"
    watched = (DecideEvent, CorruptEvent)

    def __init__(self) -> None:
        super().__init__()
        self.decisions_checked = 0
        self.agreement_violations = 0
        self.validity_violations = 0

    def begin_run(self) -> None:
        super().begin_run()
        self._decisions: dict[int, DecideEvent] = {}
        self._corrupted: set[int] = set()
        self._run_reports: list[ViolationReport] = []

    def on_event(self, event: KernelEvent, events: list[KernelEvent]) -> None:
        if type(event) is CorruptEvent:
            self._corrupted.add(event.pid)
            return
        if event.pid in self._corrupted or event.pid in self._decisions:
            return
        self._decisions[event.pid] = event
        for other_pid, other in self._decisions.items():
            if other_pid == event.pid or other_pid in self._corrupted:
                continue
            if other.value != event.value:
                self._flag_conflict(other, event, events)
                break

    def _flag_conflict(
        self, first: DecideEvent, second: DecideEvent, events: list[KernelEvent]
    ) -> ViolationReport:
        report = ViolationReport(
            monitor=self.name,
            prop="Agreement",
            severity=SEVERITY_SAFETY,
            message=(
                f"process {first.pid} decided {first.value!r} but process "
                f"{second.pid} decided {second.value!r}"
            ),
            step=second.step,
            pids=(first.pid, second.pid),
            events=(event_to_record(first), event_to_record(second)),
            critical_slice=tuple(critical_path(events, target=second)),
        )
        self._run_reports.append(report)
        return self.flag(report)

    def finalize(
        self, result: "RunResult", simulation: "Simulation", events: list[KernelEvent]
    ) -> None:
        corrupted = result.corrupted
        # Drop online reports invalidated by later corruption, then add any
        # conflict pair the pruning uncovered (both passes dedup by pid pair).
        invalid = [
            report
            for report in self._run_reports
            if any(pid in corrupted for pid in report.pids)
        ]
        for report in invalid:
            self.violations.remove(report)
            self._run_reports.remove(report)
        flagged_pairs = {frozenset(report.pids) for report in self._run_reports}
        final = {
            pid: event
            for pid, event in self._decisions.items()
            if pid not in corrupted
        }
        self.decisions_checked += len(final)
        by_value: dict[Any, DecideEvent] = {}
        for pid in sorted(final):
            event = final[pid]
            for other in by_value.values():
                pair = frozenset((other.pid, event.pid))
                if other.value != event.value and pair not in flagged_pairs:
                    flagged_pairs.add(pair)
                    self._flag_conflict(other, event, events)
            by_value.setdefault(event.value, event)
        self.agreement_violations = sum(
            1 for report in self.violations if report.prop == "Agreement"
        )

        proposals = {
            record.get("value")
            for record in result.metrics.records_of("propose")
            if record.pid not in corrupted
        }
        if not proposals:
            return
        for pid in sorted(final):
            event = final[pid]
            if repr(event.value) in proposals:
                continue
            self.validity_violations += 1
            self.flag(
                ViolationReport(
                    monitor=self.name,
                    prop="Validity",
                    severity=SEVERITY_SAFETY,
                    message=(
                        f"process {pid} decided {event.value!r}, which no "
                        f"correct process proposed (proposals: "
                        f"{sorted(proposals)})"
                    ),
                    step=event.step,
                    pids=(pid,),
                    events=(event_to_record(event),),
                    critical_slice=tuple(critical_path(events, target=event)),
                )
            )

    def report(self) -> dict[str, Any]:
        return {
            "runs": self.runs,
            "decisions_checked": self.decisions_checked,
            "agreement_violations": self.agreement_violations,
            "validity_violations": self.validity_violations,
        }


class CommitteeMonitor(Monitor):
    """Committee conformance: S1-S4 per sampled committee (Claim 1).

    Finalize-only.  The committees a run actually sampled are read from
    the ``sampled`` protocol records; each one's ground-truth membership
    comes from the trusted-setup census (``sample_committee`` -- VRF
    *proofs*, not verifications, so the run's cache counters are
    untouched).  Per committee, with lambda, d, W, B from the run's
    parameters:

    * S1: |C| <= (1+d) lambda          * S3: >= W correct members
    * S2: |C| >= (1-d) lambda          * S4: <= B Byzantine members

    Excursions are ``"whp"``-severity flags -- each is allowed with the
    Chernoff mass of Appendix A -- and the cumulative rates are compared
    against :func:`repro.analysis.bounds.committee_property_bounds` in
    :meth:`report`.  One check is hard ``"safety"``: a correct process's
    self-reported membership must match the VRF ground truth (uniqueness
    makes a mismatch a bug, not bad luck).
    """

    name = "committee"
    PROPERTIES = ("S1", "S2", "S3", "S4")

    def __init__(self, census: Callable[..., set[int]] | None = None) -> None:
        super().__init__()
        self._census = census
        self.committees_checked = 0
        self.skipped_runs = 0
        self.trials: Counter = Counter()
        self.failures: Counter = Counter()
        self._last_params = None

    def finalize(
        self, result: "RunResult", simulation: "Simulation", events: list[KernelEvent]
    ) -> None:
        params = simulation.params
        if params is None or getattr(params, "lam", None) is None:
            self.skipped_runs += 1
            return
        census = self._census
        if census is None:
            from repro.core.committees import sample_committee

            census = sample_committee
        self._last_params = params
        lam, d = params.lam, params.d
        quorum = params.committee_quorum
        byz_bound = params.committee_byzantine_bound
        corrupted = result.corrupted

        reported: dict[tuple[Hashable, Hashable], set[int]] = {}
        for record in result.metrics.records_of("sampled"):
            key = (record.get("instance"), record.get("role"))
            members = reported.setdefault(key, set())
            if record.get("member") and record.pid not in corrupted:
                members.add(record.pid)

        for (instance, role), claimed in sorted(reported.items(), key=repr):
            members = census(simulation.pki, instance, role, params)
            size = len(members)
            correct = len(members - corrupted)
            byzantine = len(members & corrupted)
            self.committees_checked += 1

            rogue = claimed - members
            if rogue:
                self.flag(
                    ViolationReport(
                        monitor=self.name,
                        prop="sample-consistency",
                        severity=SEVERITY_SAFETY,
                        message=(
                            f"processes {sorted(rogue)} reported membership in "
                            f"committee ({instance!r}, {role!r}) but the VRF "
                            "ground truth excludes them"
                        ),
                        step=result.deliveries,
                        pids=tuple(sorted(rogue)),
                        instance=(instance, role),
                    )
                )

            checks = {
                "S1": (
                    size <= (1 + d) * lam,
                    f"|C|={size} > (1+d)lambda={(1 + d) * lam:.2f}",
                ),
                "S2": (
                    size >= (1 - d) * lam,
                    f"|C|={size} < (1-d)lambda={(1 - d) * lam:.2f}",
                ),
                "S3": (
                    correct >= quorum,
                    f"{correct} correct members < W={quorum}",
                ),
                "S4": (
                    byzantine <= byz_bound,
                    f"{byzantine} Byzantine members > B={byz_bound}",
                ),
            }
            for prop, (holds, message) in checks.items():
                self.trials[prop] += 1
                if holds:
                    continue
                self.failures[prop] += 1
                self.flag(
                    ViolationReport(
                        monitor=self.name,
                        prop=prop,
                        severity=SEVERITY_WHP,
                        message=message,
                        step=result.deliveries,
                        pids=tuple(sorted(members)),
                        instance=(instance, role),
                    )
                )

    def report(self) -> dict[str, Any]:
        bounds: dict[str, float] = {}
        if self._last_params is not None:
            from repro.analysis.bounds import committee_property_bounds

            bounds = committee_property_bounds(self._last_params)
        properties: dict[str, Any] = {}
        for prop in self.PROPERTIES:
            entry = self._estimate_dict(self.failures[prop], self.trials[prop])
            bound = bounds.get(prop)
            entry["chernoff_bound"] = bound
            # Conformant while the Wilson interval cannot reject the bound
            # (bounds above 1 are trivially unrejectable).
            entry["conformant"] = (
                bound is None
                or entry["interval"] is None
                or entry["interval"][0] <= min(bound, 1.0)
            )
            properties[prop] = entry
        return {
            "runs": self.runs,
            "committees_checked": self.committees_checked,
            "skipped_runs": self.skipped_runs,
            "properties": properties,
        }


class CoinMonitor(Monitor):
    """Coin conformance: per-invocation agreement and the cumulative rho.

    Finalize-only.  Per coin invocation (grouped from the ``coin``
    protocol records, corrupted processes excluded), every correct
    participant must have output the same bit; a split is flagged
    ``"whp"`` -- the paper allows it with probability at most 1 - rho.
    Successes accumulate across runs per coin variant, and
    :meth:`report` places the Wilson interval of the observed success
    rate against the matching closed-form bound: Lemma B.7's
    (18d^2+27d-1)/(3(5+6d)(1-d)(1+9d)) for the WHP coin, Theorem 4.13's
    (18e^2+24e-1)/(6(1+6e)) for Algorithm 1.  Non-conformance means the
    whole interval sits below the bound.
    """

    name = "coin"

    def __init__(self) -> None:
        super().__init__()
        self.trials: Counter = Counter()
        self.successes: Counter = Counter()
        self._last_params = None

    def finalize(
        self, result: "RunResult", simulation: "Simulation", events: list[KernelEvent]
    ) -> None:
        if simulation.params is not None:
            self._last_params = simulation.params
        corrupted = result.corrupted
        invocations: dict[Hashable, dict[str, Any]] = {}
        for record in result.metrics.records_of("coin"):
            if record.pid in corrupted:
                continue
            entry = invocations.setdefault(
                record.get("instance"),
                {"variant": record.get("variant"), "outcomes": {}, "step": record.step},
            )
            entry["outcomes"].setdefault(record.get("outcome"), []).append(record.pid)
            entry["step"] = max(entry["step"], record.step)
        for instance, entry in sorted(invocations.items(), key=repr):
            variant = entry["variant"]
            self.trials[variant] += 1
            if len(entry["outcomes"]) == 1:
                self.successes[variant] += 1
                continue
            split = {
                repr(bit): sorted(pids) for bit, pids in entry["outcomes"].items()
            }
            self.flag(
                ViolationReport(
                    monitor=self.name,
                    prop="coin-agreement",
                    severity=SEVERITY_WHP,
                    message=(
                        f"correct processes disagree on coin {instance!r}: {split}"
                    ),
                    step=entry["step"],
                    pids=tuple(
                        pid for pids in entry["outcomes"].values() for pid in pids
                    ),
                    instance=instance,
                )
            )

    def _bound(self, variant: str) -> float | None:
        params = self._last_params
        if params is None:
            return None
        from repro.analysis.bounds import (
            shared_coin_success_bound,
            whp_coin_success_bound,
        )

        try:
            if variant == "whp" and getattr(params, "d", None) is not None:
                return whp_coin_success_bound(params.d)
            if variant == "alg1":
                return shared_coin_success_bound(params.epsilon)
        except ValueError:
            return None
        return None

    def report(self) -> dict[str, Any]:
        variants: dict[str, Any] = {}
        for variant in sorted(self.trials, key=str):
            entry = self._estimate_dict(self.successes[variant], self.trials[variant])
            bound = self._bound(variant)
            entry["rho_bound"] = bound
            entry["conformant"] = (
                bound is None
                or bound <= 0
                or entry["interval"] is None
                or entry["interval"][1] >= bound
            )
            variants[str(variant)] = entry
        return {"runs": self.runs, "variants": variants}


class ApproverMonitor(Monitor):
    """Approver conformance: Graded Agreement, grades, Validity (Def 6.1).

    Finalize-only, over the ``approve`` protocol records of correct
    processes, grouped per approver instance:

    * **Termination grade** -- every return set has size 1 or 2 under
      Assumption 1; size 0 is a hard ``"safety"`` bug (the wait cannot
      return empty), size > 2 is a ``"whp"`` Assumption-1 excursion.
    * **Graded Agreement** -- if any correct process returned the
      singleton {v}, every correct return set must contain v.
    * **Validity** -- every returned value was some correct process's
      input (read from the record's ``input`` field; the
      ``justify=False`` ablation deliberately breaks exactly this).
    """

    name = "approver"

    def __init__(self) -> None:
        super().__init__()
        self.instances_checked = 0
        self.ga_trials = 0
        self.ga_violations = 0
        self.validity_violations = 0
        self.grades: Counter = Counter()

    def finalize(
        self, result: "RunResult", simulation: "Simulation", events: list[KernelEvent]
    ) -> None:
        corrupted = result.corrupted
        by_instance: dict[Hashable, list] = {}
        for record in result.metrics.records_of("approve"):
            if record.pid not in corrupted:
                by_instance.setdefault(record.get("instance"), []).append(record)
        for instance, records in sorted(by_instance.items(), key=repr):
            self.instances_checked += 1
            self.ga_trials += 1
            returned = {
                record.pid: tuple(record.get("values") or ()) for record in records
            }
            step = max(record.step for record in records)
            for record in records:
                grade = record.get("grade")
                self.grades[grade] += 1
                if grade == 0:
                    self.flag(
                        ViolationReport(
                            monitor=self.name,
                            prop="Termination",
                            severity=SEVERITY_SAFETY,
                            message=(
                                f"process {record.pid} returned an empty set "
                                f"from approver {instance!r}"
                            ),
                            step=record.step,
                            pids=(record.pid,),
                            instance=instance,
                        )
                    )
                elif grade is not None and grade > 2:
                    self.flag(
                        ViolationReport(
                            monitor=self.name,
                            prop="Assumption-1",
                            severity=SEVERITY_WHP,
                            message=(
                                f"process {record.pid} returned {grade} values "
                                f"from approver {instance!r} (Assumption 1 "
                                "admits at most two)"
                            ),
                            step=record.step,
                            pids=(record.pid,),
                            instance=instance,
                        )
                    )

            singletons = {
                values[0]: pid
                for pid, values in returned.items()
                if len(values) == 1
            }
            ga_ok = True
            for value, witness in sorted(singletons.items()):
                missing = sorted(
                    pid for pid, values in returned.items() if value not in values
                )
                if not missing:
                    continue
                ga_ok = False
                self.flag(
                    ViolationReport(
                        monitor=self.name,
                        prop="Graded-Agreement",
                        severity=SEVERITY_WHP,
                        message=(
                            f"process {witness} returned the singleton "
                            f"{{{value}}} from approver {instance!r} but "
                            f"processes {missing} returned sets without it"
                        ),
                        step=step,
                        pids=(witness, *missing),
                        instance=instance,
                    )
                )
            if not ga_ok:
                self.ga_violations += 1

            inputs = {
                record.get("input")
                for record in records
                if record.get("input") is not None
            }
            if not inputs:
                continue
            for record in records:
                foreign = [
                    value
                    for value in (record.get("values") or ())
                    if value not in inputs
                ]
                if not foreign:
                    continue
                self.validity_violations += 1
                self.flag(
                    ViolationReport(
                        monitor=self.name,
                        prop="Validity",
                        severity=SEVERITY_WHP,
                        message=(
                            f"process {record.pid} returned value(s) {foreign} "
                            f"from approver {instance!r} that no correct "
                            f"process input (inputs: {sorted(inputs)})"
                        ),
                        step=record.step,
                        pids=(record.pid,),
                        instance=instance,
                    )
                )

    def report(self) -> dict[str, Any]:
        return {
            "runs": self.runs,
            "instances_checked": self.instances_checked,
            "graded_agreement": self._estimate_dict(
                self.ga_trials - self.ga_violations, self.ga_trials
            ),
            "validity_violations": self.validity_violations,
            "grades": {
                str(grade): count for grade, count in sorted(self.grades.items())
            },
        }


def default_monitors() -> list[Monitor]:
    """The full paper-property suite, in check order."""
    return [SafetyMonitor(), CommitteeMonitor(), CoinMonitor(), ApproverMonitor()]


class MonitorSuite:
    """Attaches a set of monitors to a run (``run_protocol(monitors=...)``).

    The suite keeps its own payload-stripped event log (the evidence base
    for critical-path slices) and dispatches each event only to the
    monitors that declared its type in ``watched`` -- the online cost is
    one list append plus one dict lookup per event, bounded alongside the
    recorder by ``benchmarks/bench_observability_overhead.py``.

    A suite may be attached to several runs in sequence; per-run state
    resets in :meth:`begin_run` while conformance statistics (coin
    trials, committee excursion counts, decision counts) accumulate,
    which is what gives the Wilson intervals in :meth:`report` their
    power.  Not safe to share across concurrently executing runs.

    ``on_violation`` is an optional live callback invoked the moment any
    monitor flags a violation -- during the run for online monitors such
    as :class:`SafetyMonitor`, at finalize for the statistical ones.
    """

    def __init__(
        self,
        monitors: Iterable[Monitor] | None = None,
        on_violation: Callable[[ViolationReport], None] | None = None,
    ) -> None:
        self.monitors = list(monitors) if monitors is not None else default_monitors()
        self.on_violation = on_violation
        self.events: list[KernelEvent] = []
        self.runs = 0
        self._dispatch: dict[type, list[Monitor]] = {}
        for monitor in self.monitors:
            monitor._suite = self
            for event_type in monitor.watched:
                self._dispatch.setdefault(event_type, []).append(monitor)

    # -- run lifecycle ---------------------------------------------------------

    def begin_run(self) -> None:
        self.runs += 1
        self.events = []
        for monitor in self.monitors:
            monitor.begin_run()

    def on_event(self, event: KernelEvent) -> None:
        if type(event) is DeliverEvent and event.payload is not None:
            event = replace(event, payload=None)
        events = self.events
        events.append(event)
        for monitor in self._dispatch.get(type(event), ()):
            monitor.on_event(event, events)

    def finalize(self, result: "RunResult", simulation: "Simulation") -> None:
        for monitor in self.monitors:
            monitor.finalize(result, simulation, self.events)

    # -- results ---------------------------------------------------------------

    @property
    def violations(self) -> list[ViolationReport]:
        """All violations across monitors and runs, schedule-ordered."""
        reports = [
            report for monitor in self.monitors for report in monitor.violations
        ]
        reports.sort(key=lambda report: (report.step, report.monitor, report.prop))
        return reports

    @property
    def safety_violations(self) -> list[ViolationReport]:
        return [
            report
            for report in self.violations
            if report.severity == SEVERITY_SAFETY
        ]

    @property
    def ok(self) -> bool:
        """True while no hard safety property has been violated."""
        return not self.safety_violations

    def report(self) -> dict[str, Any]:
        """Cumulative conformance summary (JSON-friendly)."""
        violations = self.violations
        return {
            "runs": self.runs,
            "ok": self.ok,
            "safety_violations": sum(
                1 for report in violations if report.severity == SEVERITY_SAFETY
            ),
            "whp_flags": sum(
                1 for report in violations if report.severity == SEVERITY_WHP
            ),
            "violations": [report.to_dict() for report in violations],
            "monitors": {
                monitor.name: monitor.report() for monitor in self.monitors
            },
        }


def as_suite(monitors: "MonitorSuite | Iterable[Monitor]") -> MonitorSuite:
    """Coerce ``run_protocol``'s ``monitors`` argument into a suite."""
    if isinstance(monitors, MonitorSuite):
        return monitors
    return MonitorSuite(monitors)
