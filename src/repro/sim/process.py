"""Process runtime: contexts, wait-conditions and the protocol coroutine type.

A protocol is a generator function ``protocol(ctx)`` that performs sends
through ``ctx``, then ``yield``s :class:`Wait` objects whose condition
closures implement the protocol's ``upon receiving ...`` handlers.  The
kernel re-evaluates the pending condition after every delivery to the
process; when the condition returns non-``None`` the generator resumes
with that value.  Sub-protocols (the approver inside Byzantine Agreement,
for instance) compose with ``yield from`` and simply return their result.

Condition closures are allowed to send messages through the captured
context -- that is exactly how reactive handlers such as "upon receiving
ECHO(v) from W processes, broadcast OK(v)" are expressed while the main
body blocks on the final return condition.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Hashable, Iterable

from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput
from repro.sim.events import DecideEvent, PhaseEvent
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.metrics import ProtocolRecord

if TYPE_CHECKING:
    from repro.sim.network import Simulation

__all__ = ["ProcessContext", "Protocol", "ProtocolFactory", "Wait"]

# A protocol coroutine yields Wait objects and returns its final result.
Protocol = Generator["Wait", Any, Any]
ProtocolFactory = Callable[["ProcessContext"], Protocol]


@dataclass
class Wait:
    """A blocking point: resume when ``condition(mailbox)`` is non-``None``.

    The same ``Wait`` object is re-evaluated repeatedly, so conditions may
    keep incremental state (cursors, partial tallies) in their closure.

    ``instances`` is the wakeup subscription: the set of mailbox instances
    the condition reads.  When given, the kernel re-evaluates the pending
    condition only after a delivery for one of those instances -- a
    delivery for any other instance provably cannot change the condition's
    result, so skipping the evaluation is observationally identical (the
    hot-path contract: a subscribed condition must be a pure function of
    its subscribed streams plus its own closure state).  ``None`` keeps the
    pre-subscription behaviour: re-evaluate after every delivery.  Leave it
    ``None`` whenever the condition reads state mutated elsewhere (e.g. by
    a background handler).

    ``min_count`` is the incremental-quorum floor: the declaring protocol
    promises that until the subscribed instances hold at least
    ``min_count`` messages *in total*, the condition (a) returns ``None``
    and (b) performs no kernel-visible side effect (no send, no decide, no
    annotation).  Under that promise the kernel may skip evaluations below
    the floor entirely, maintaining a per-process countdown decremented on
    each subscribed delivery instead of re-running the condition -- the
    deferred evaluations are pure no-ops by (a)+(b), so skipping them is
    observationally identical.  Quorum waits ("upon receiving X from q
    processes") declare the smallest message count that can trigger their
    *earliest* side effect.  ``0`` (the default) disables the floor;
    ``min_count`` is only honoured when ``instances`` is given (the floor
    is defined over the subscribed streams) and is ignored under
    ``eager_wakeups``.
    """

    condition: Callable[[Mailbox], Any]
    description: str = ""
    instances: Iterable[Hashable] | None = None
    min_count: int = 0

    def __post_init__(self) -> None:
        if self.instances is not None and not isinstance(self.instances, frozenset):
            self.instances = frozenset(self.instances)


class ProcessContext:
    """Everything one process may legitimately touch.

    Holds the process's *own* private keys only; Byzantine behaviours get
    the same interface after corruption, which models the adversary
    learning the corrupted process's private state -- and nothing more.
    """

    def __init__(self, pid: int, simulation: "Simulation") -> None:
        self.pid = pid
        self._simulation = simulation
        self.mailbox = Mailbox()
        # Deterministic per-process randomness, independent across pids.
        self.rng = random.Random(derive_seed(simulation.seed, "process", pid))
        self.depth = 0
        self.decision: Any = None
        self.decided = False
        self.decision_depth: int | None = None
        # Forever-active "upon receiving ..." handlers (e.g. MMR's
        # BV-broadcast relay rule, which must keep relaying even after the
        # process moved on to later rounds).  Called on every delivery.
        self.background_handlers: list[Callable[[Mailbox], None]] = []
        # Free-form per-process facts recorded by protocols (e.g. the round
        # a decision happened in); snapshotted into RunResult.notes.
        self.notes: dict[str, Any] = {}

    # -- static environment --------------------------------------------------

    @property
    def n(self) -> int:
        return self._simulation.n

    @property
    def pki(self) -> PKI:
        return self._simulation.pki

    @property
    def params(self) -> Any:
        """Protocol parameter object installed by the runner (if any)."""
        return self._simulation.params

    # -- communication --------------------------------------------------------

    def send(self, dest: int, message: Message) -> None:
        """Send ``message`` to process ``dest`` over the reliable link."""
        self._simulation.submit(self.pid, dest, message)

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every process, including ourselves.

        Self-delivery goes through the network like any other message; the
        adversary may reorder it, which only weakens the correct processes
        and therefore preserves the paper's guarantees.
        """
        self._simulation.submit_broadcast(self.pid, message)

    def add_background_handler(self, handler: Callable[[Mailbox], None]) -> None:
        """Register a side-effect-only handler run on every future delivery.

        The handler is invoked once immediately so it can catch up on
        already-buffered messages, then after each delivery, *before* the
        pending wait-condition is evaluated.  Handlers keep their own
        cursors, so each call costs O(new messages).
        """
        self.background_handlers.append(handler)
        handler(self.mailbox)

    # -- observability -----------------------------------------------------------

    def annotate(self, kind: str, **facts: Any) -> None:
        """Append one structured protocol fact to the run's record log.

        The paper's per-round quantities (round outcomes, coin
        invocations, observed committee sizes, approver grades) flow
        through here; :meth:`repro.sim.metrics.MetricsRecorder.protocol_summary`
        rolls them up.  Always on -- recording a run must not change it,
        so the facts exist whether or not anything subscribes to the
        event bus.  Keep ``facts`` values JSON-friendly.
        """
        simulation = self._simulation
        simulation.metrics.protocol_records.append(
            ProtocolRecord(
                step=simulation.deliveries,
                pid=self.pid,
                kind=kind,
                data=tuple(facts.items()),
            )
        )

    @contextmanager
    def span(self, phase: str, instance: Hashable = None):
        """Mark a protocol phase: emits enter/exit events, times it if profiling.

        Safe around ``yield from`` inside protocol generators -- the span
        closes when the generator passes the block's end.  Wall-clock
        accumulates under ``span.<phase>`` in ``metrics.phase_timings``
        when the simulation profiles; note that a generator span's
        wall-clock includes time the process spent blocked, which is
        exactly the flight-recorder view of latency.

        A span abandoned mid-flight -- the harness stopped the run while
        this process was inside it, so its generator is torn down later,
        at garbage-collection time -- emits no exit event and records no
        timing: the run is already snapshotted by then, and appending to
        a recorder post-run would corrupt the recording.
        """
        simulation = self._simulation
        if simulation.events.subscribers:
            simulation.events.emit(
                PhaseEvent(
                    step=simulation.deliveries,
                    pid=self.pid,
                    phase=phase,
                    instance=instance,
                    action="enter",
                )
            )
        start = time.perf_counter() if simulation.profile else None
        yield
        if start is not None:
            simulation.metrics.add_timing(
                f"span.{phase}", time.perf_counter() - start
            )
        if simulation.events.subscribers:
            simulation.events.emit(
                PhaseEvent(
                    step=simulation.deliveries,
                    pid=self.pid,
                    phase=phase,
                    instance=instance,
                    action="exit",
                )
            )

    # -- decisions -------------------------------------------------------------

    def decide(self, value: Any) -> None:
        """Record an irrevocable decision (at most once)."""
        if self.decided:
            if value != self.decision:
                raise RuntimeError(
                    f"process {self.pid} tried to change its decision "
                    f"from {self.decision!r} to {value!r}"
                )
            return
        self.decided = True
        self.decision = value
        self.decision_depth = self.depth
        simulation = self._simulation
        simulation.note_decision(self.pid)
        if simulation.events.subscribers:
            simulation.events.emit(
                DecideEvent(
                    step=simulation.deliveries,
                    pid=self.pid,
                    value=value,
                    depth=self.depth,
                )
            )

    # -- cryptography (own keys only) -------------------------------------------

    def vrf(self, alpha: bytes) -> VRFOutput:
        """Evaluate our own VRF on ``alpha``."""
        return self.pki.vrf_scheme.prove(self.pki.vrf_private(self.pid), alpha)

    def sign(self, message: bytes) -> Any:
        """Sign ``message`` with our own signing key."""
        return self.pki.signature_scheme.sign(
            self.pki.signature_private(self.pid), message
        )

    def verify_vrf(self, sender: int, alpha: bytes, output: VRFOutput) -> bool:
        return self.pki.vrf_verify(sender, alpha, output)

    def verify_signature(self, sender: int, message: bytes, signature: Any) -> bool:
        return self.pki.signature_verify(sender, message, signature)
