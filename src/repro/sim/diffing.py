"""Divergence forensics: localize where two flight recordings part ways.

Every correctness check in this repository ends in "these two runs must
be identical" -- batched vs classic kernel, cached vs uncached
verification, replay fidelity, trend gates.  When one trips, the raw
verdict is a boolean.  This module turns it into an explanation:

* :func:`diff_events` walks two kernel-event logs in lockstep (events
  are totally ordered, and sends/deliveries are anchored by their
  envelope ``seq``), localizes the **first divergent event**, and names
  the fields that changed.
* The divergence is explained by a bounded **causal slice**: starting
  from the divergent event's causal anchor (its process and depth), the
  walk reuses :func:`repro.sim.flightrecorder.causal_chain` -- the same
  machinery behind the monitors' critical-path slices -- so the report
  shows the message chain that *led into* the divergence, not just its
  position.
* :func:`diff_recordings` adds header identity and summary-drift checks
  on top, and :func:`save_divergence` persists the report as
  ``*.divergence.json`` (rendered by the dashboard, uploaded by CI on
  red runs).

Everything here is post-hoc: it operates on recorded logs only and adds
zero work to the kernel hot path (the observability-overhead envelopes
are untouched).

Surfaced as ``python -m repro diff <a> <b>``; the schedule-shrinking
sibling is :mod:`repro.sim.minimize` / ``python -m repro explain``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.sim.events import (
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    event_to_record,
)
from repro.sim.flightrecorder import Recording, causal_chain

__all__ = [
    "DEFAULT_MAX_SLICE",
    "DivergenceReport",
    "causal_slice",
    "diff_events",
    "diff_recordings",
    "divergence_hint",
    "format_divergence",
    "format_slice",
    "save_divergence",
]

# The acceptance bound for rendered slices: enough hops to see the
# message chain into a divergence, small enough to read in a terminal.
DEFAULT_MAX_SLICE = 20

# Header keys that define run identity; a mismatch means the two
# recordings are not even attempts at the same run.
_IDENTITY_KEYS = ("schema", "version", "n", "f", "seed", "corrupted", "protocol")

# Summary keys worth diffing one by one (the rest live under metrics).
_SUMMARY_KEYS = (
    "deliveries",
    "duration",
    "words",
    "live",
    "all_correct_decided",
    "decisions",
)


@dataclass(frozen=True)
class DivergenceReport:
    """Where two event logs first part ways, and the causal path there.

    ``identical`` is the differ's verdict over events *and* (for
    recording-level diffs) headers and summaries.  ``index`` is the
    position of the first divergent event in the interleaved log,
    ``seq`` the envelope sequence number anchoring it (``None`` for
    non-message events), ``changed`` the field-level delta when both
    logs still have an event at that position.  ``slice`` is the bounded
    causal chain ending at the divergent event (causal order, the
    divergent entry last, marked ``divergent: True``).
    """

    identical: bool
    a_events: int
    b_events: int
    index: int | None = None
    seq: int | None = None
    step: int | None = None
    kind: str | None = None
    a_event: dict[str, Any] | None = None
    b_event: dict[str, Any] | None = None
    changed: tuple[str, ...] = ()
    slice: tuple[dict[str, Any], ...] = ()
    delivery_index: int | None = None
    header_mismatches: tuple[str, ...] = ()
    summary_drifts: tuple[str, ...] = ()

    def describe(self) -> str:
        """The one-line verdict (`repro diff` prints this first)."""
        if self.identical:
            return f"recordings identical ({self.a_events} events)"
        if self.header_mismatches and self.index is None:
            return (
                "recordings are different runs: "
                + "; ".join(self.header_mismatches)
            )
        if self.index is None:
            return "events identical; summaries drift: " + "; ".join(
                self.summary_drifts
            )
        seq = f" seq {self.seq}" if self.seq is not None else ""
        if self.a_event is None or self.b_event is None:
            side = "a" if self.b_event is None else "b"
            return (
                f"first divergence at event #{self.index}{seq}: "
                f"log {side} ends early "
                f"({self.a_events} vs {self.b_events} events)"
            )
        return (
            f"first divergence at event #{self.index}{seq} "
            f"(kind {self.kind}, step {self.step}): "
            + ("; ".join(self.changed) or "event kinds differ")
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "a_events": self.a_events,
            "b_events": self.b_events,
            "index": self.index,
            "seq": self.seq,
            "step": self.step,
            "event_kind": self.kind,
            "a_event": self.a_event,
            "b_event": self.b_event,
            "changed": list(self.changed),
            "delivery_index": self.delivery_index,
            "header_mismatches": list(self.header_mismatches),
            "summary_drifts": list(self.summary_drifts),
            "slice": [dict(entry) for entry in self.slice],
            "describe": self.describe(),
        }


def _causal_anchor(
    events: Sequence[KernelEvent], index: int
) -> tuple[int, int, int] | None:
    """The ``(pid, depth, step)`` the causal walk starts from.

    Scans backwards from ``index`` for the nearest event that carries a
    causal depth (corrupt/phase events do not); a send anchors at its
    *sender's* depth (``depth - 1``), everything else at the depth the
    event left its process at.
    """
    for position in range(min(index, len(events) - 1), -1, -1):
        event = events[position]
        kind = type(event)
        if kind is DeliverEvent:
            return event.dest, event.depth, event.step
        if kind is SendEvent:
            return event.sender, event.depth - 1, event.step
        if kind is DecideEvent:
            return event.pid, event.depth, event.step
        if kind in (WaitBlockEvent, WaitWakeEvent):
            return event.pid, event.depth, event.step
    return None


def causal_slice(
    events: Sequence[KernelEvent],
    index: int,
    max_slice: int = DEFAULT_MAX_SLICE,
) -> list[dict[str, Any]]:
    """The bounded causal chain explaining ``events[index]``.

    Causal order, at most ``max_slice`` entries, ending with the event
    at ``index`` itself (marked ``divergent: True``).  Reuses the
    critical-path hop rule: find the delivery that put the process at
    its current depth, jump to that message's send, repeat.
    """
    if not events:
        return []
    index = min(index, len(events) - 1)
    target = events[index]
    record = event_to_record(target)
    marker = {"kind": record.pop("k"), **record, "divergent": True}
    anchor = _causal_anchor(events, index)
    if anchor is None or max_slice <= 1:
        return [marker]
    pid, depth, step = anchor
    chain = causal_chain(events, pid, depth, step, limit=max_slice - 1)
    # The walk starts at the divergent event's own anchor, so its first
    # hop may be the divergent delivery itself -- drop the duplicate.
    if (
        chain
        and type(target) is DeliverEvent
        and chain[0]["kind"] == "deliver"
        and chain[0]["seq"] == target.seq
    ):
        chain = chain[1:]
    chain.reverse()
    chain.append(marker)
    return chain


def _field_delta(a_record: dict[str, Any], b_record: dict[str, Any]) -> tuple[str, ...]:
    keys = [key for key in a_record if key in b_record]
    keys += [key for key in b_record if key not in a_record]
    return tuple(
        f"{key}: {a_record.get(key)!r} -> {b_record.get(key)!r}"
        for key in keys
        if a_record.get(key) != b_record.get(key)
    )


def _first_delivery_divergence(
    a_events: Sequence[KernelEvent], b_events: Sequence[KernelEvent]
) -> int | None:
    """Index into the delivery stream where the schedules first differ.

    Deliveries are the scheduler's choices; aligning their envelope-seq
    streams separates "the adversary scheduled differently" from "the
    same schedule produced a different event".
    """
    a_seqs = [e.seq for e in a_events if type(e) is DeliverEvent]
    b_seqs = [e.seq for e in b_events if type(e) is DeliverEvent]
    for position, (a_seq, b_seq) in enumerate(zip(a_seqs, b_seqs)):
        if a_seq != b_seq:
            return position
    if len(a_seqs) != len(b_seqs):
        return min(len(a_seqs), len(b_seqs))
    return None


def diff_events(
    a_events: Sequence[KernelEvent],
    b_events: Sequence[KernelEvent],
    max_slice: int = DEFAULT_MAX_SLICE,
    header_mismatches: tuple[str, ...] = (),
    summary_drifts: tuple[str, ...] = (),
) -> DivergenceReport:
    """Localize the first divergent event between two kernel-event logs."""
    a_records = [event_to_record(event) for event in a_events]
    b_records = [event_to_record(event) for event in b_events]
    index = None
    for position, (a_record, b_record) in enumerate(zip(a_records, b_records)):
        if a_record != b_record:
            index = position
            break
    if index is None and len(a_records) != len(b_records):
        index = min(len(a_records), len(b_records))
    if index is None:
        return DivergenceReport(
            identical=not header_mismatches and not summary_drifts,
            a_events=len(a_records),
            b_events=len(b_records),
            header_mismatches=header_mismatches,
            summary_drifts=summary_drifts,
        )
    a_record = a_records[index] if index < len(a_records) else None
    b_record = b_records[index] if index < len(b_records) else None
    witness = a_record or b_record
    slice_source = a_events if a_record is not None else b_events
    return DivergenceReport(
        identical=False,
        a_events=len(a_records),
        b_events=len(b_records),
        index=index,
        seq=witness.get("seq"),
        step=witness.get("step"),
        kind=witness.get("k"),
        a_event=a_record,
        b_event=b_record,
        changed=(
            _field_delta(a_record, b_record)
            if a_record is not None and b_record is not None
            else ()
        ),
        slice=tuple(causal_slice(slice_source, index, max_slice=max_slice)),
        delivery_index=_first_delivery_divergence(a_events, b_events),
        header_mismatches=header_mismatches,
        summary_drifts=summary_drifts,
    )


def _summary_drifts(a: dict[str, Any], b: dict[str, Any]) -> tuple[str, ...]:
    return tuple(
        f"{key}: {a.get(key)!r} -> {b.get(key)!r}"
        for key in _SUMMARY_KEYS
        if a.get(key) != b.get(key)
    )


def diff_recordings(
    a: Recording, b: Recording, max_slice: int = DEFAULT_MAX_SLICE
) -> DivergenceReport:
    """Diff two loaded flight recordings: identity, events, summaries."""
    header_mismatches = tuple(
        f"{key}: {a.header.get(key)!r} vs {b.header.get(key)!r}"
        for key in _IDENTITY_KEYS
        if a.header.get(key) != b.header.get(key)
    )
    return diff_events(
        a.events,
        b.events,
        max_slice=max_slice,
        header_mismatches=header_mismatches,
        summary_drifts=_summary_drifts(a.summary, b.summary),
    )


# -- rendering and persistence -------------------------------------------------


def format_slice(entries: Sequence[dict[str, Any]]) -> list[str]:
    """Render causal-slice entries (shared by `repro diff` / `explain`)."""
    lines = []
    for entry in entries:
        marker = " <-- DIVERGES" if entry.get("divergent") else ""
        kind = entry.get("kind")
        step = entry.get("step")
        if kind == "send":
            body = (
                f"{entry.get('sender')} -> {entry.get('dest')} sends "
                f"{entry.get('message_kind')} (seq {entry.get('seq')}, "
                f"depth {entry.get('depth')})"
            )
        elif kind == "deliver":
            body = (
                f"{entry.get('sender')} -> {entry.get('dest')} delivers "
                f"{entry.get('message_kind')} (seq {entry.get('seq')}, "
                f"depth {entry.get('depth')})"
            )
        elif kind == "decide":
            body = (
                f"process {entry.get('pid')} DECIDES {entry.get('value')!r} "
                f"at depth {entry.get('depth')}"
            )
        else:
            fields = {
                key: value
                for key, value in entry.items()
                if key not in ("kind", "step", "divergent")
            }
            body = f"{kind} {fields}"
        lines.append(f"  step {step!s:>6}: {body}{marker}")
    return lines


def format_divergence(
    report: DivergenceReport,
    a_path: str | Path | None = None,
    b_path: str | Path | None = None,
) -> str:
    """Human rendering of a :class:`DivergenceReport` (`repro diff`)."""
    lines = []
    if a_path is not None:
        lines.append(f"a: {a_path}")
    if b_path is not None:
        lines.append(f"b: {b_path}")
    lines.append(report.describe())
    for mismatch in report.header_mismatches:
        lines.append(f"  header: {mismatch}")
    for drift in report.summary_drifts:
        lines.append(f"  summary: {drift}")
    if report.identical:
        return "\n".join(lines)
    if report.delivery_index is not None:
        lines.append(
            f"delivery schedules part ways at delivery "
            f"#{report.delivery_index}"
        )
    elif report.index is not None:
        lines.append(
            "delivery schedules agree; the divergence is in event content"
        )
    if report.slice:
        lines.append(f"causal slice ({len(report.slice)} events):")
        lines += format_slice(report.slice)
    return "\n".join(lines)


def save_divergence(
    path: str | Path, report: DivergenceReport | dict[str, Any]
) -> Path:
    """Persist a divergence report (or explain payload) as JSON.

    The ``*.divergence.json`` naming convention is load-bearing: the
    dashboard renders the newest such file and CI uploads them from red
    test runs.
    """
    import json

    from repro.experiments.store import to_jsonable

    payload = report.to_dict() if isinstance(report, DivergenceReport) else report
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(payload), indent=2) + "\n")
    return path


def divergence_hint(context: str) -> str:
    """The repo-standard one-line pointer into the differ.

    Printed by equivalence-test helpers and the trend gate when an
    identity check fails, so every red boolean comes with the command
    that explains it.
    """
    return (
        f"{context}: record both runs and localize the first divergent "
        "event with `python -m repro diff <a.jsonl> <b.jsonl>`; "
        "`python -m repro explain <recording.jsonl>` minimizes the "
        "schedule behind a reproducible failure (DESIGN.md section 12)"
    )
