"""Virtual-time telemetry: bounded per-step time series of a running kernel.

The flight recorder (:mod:`repro.sim.flightrecorder`) keeps *every*
kernel event -- O(events) memory, perfect fidelity, replay-grade.  This
module is its cheap sibling: a :class:`TelemetryProbe` is an event-bus
subscriber that folds the same stream into a **fixed-budget** set of
time series and streaming quantile sketches, so watching a
multi-million-delivery run costs O(sample budget) memory instead of
O(events).  Everything it measures is *virtual* time -- kernel steps
(the global delivery counter) and causal depth (message hops) -- the two
clocks the paper's trajectory claims are stated in:

* **in-flight messages** per step: the adversary's reordering buffer;
* **per-process mailbox backlog** (in-flight messages per destination,
  max and mean) per step: where adversarial schedules pile work up;
* **blocked processes** per step: wait-block concurrency, i.e. how much
  of the system is parked on an unsatisfied ``upon receiving ...``;
* **cumulative words by protocol layer** (approver / coin / other,
  correct senders only -- the paper's word-complexity convention) per
  step: the O(nλ²)-per-round accumulation as a trajectory;
* **streaming p50/p90/p99** of link latency (deliver step - send step:
  how long the adversary held each message) and of wait durations in
  both steps and causal depth (wake depth - block depth);
* a **per-causal-depth profile** of messages/words/decisions, the
  round-phase view of the run.

Sampling guarantees (see DESIGN.md section 9): the gauge series share
one uniform grid over the delivery counter whose stride doubles
whenever the budget would overflow, so the series always span the whole
run at uniform resolution with between budget/2 and budget points --
deterministic, no randomness, no wall clock.  Quantile sketches keep a
systematic every-k-th sample with the same stride-doubling rule plus
exact count/min/max over what they are fed; link latency
(``DeliverEvent.step - DeliverEvent.sent_step``) is itself fed a
systematic 1-in-8 sample by network sequence number (feeding the
sketch a method call per delivery would dominate the fold loop, and
quantiles over ~1/8 of the messages are statistically
indistinguishable for this use).  Identical event streams therefore
produce identical snapshots, and an attached probe never perturbs the
run (asserted by ``benchmarks/bench_observability_overhead.py``).

Dispatch cost: the probe buffers events and folds them in bounded
chunks (memory stays O(chunk + budgets), never O(events)), so the
per-event online price is one list append plus the chunk fold amortised
across the chunk -- bounded alongside the monitors' dispatch cost at
< 3% of the bare run's wall-clock by
``benchmarks/bench_observability_overhead.py``.

Attach with ``run_protocol(..., telemetry=probe)``; persist with
:func:`save_telemetry` (``python -m repro record`` writes the sidecar
``<recording>.telemetry.json`` automatically); rebuild from any loaded
recording with :func:`telemetry_from_events`.  ``python -m repro
dashboard`` renders the snapshot as SVG timelines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    PhaseEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
)

__all__ = [
    "LAYER_OF_KIND",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SCHEMA_VERSION",
    "SeriesBank",
    "StreamingQuantiles",
    "TelemetryProbe",
    "load_telemetry",
    "save_telemetry",
    "telemetry_from_events",
    "telemetry_path_for",
]

TELEMETRY_SCHEMA = "repro.telemetry"
TELEMETRY_SCHEMA_VERSION = 1

# Message kind -> protocol layer, for the cumulative-words trajectory.
# The approver's three committees carry Init/Echo/Ok; both coins speak
# First/Second; baseline protocols (Bracha, Ben-Or, ...) land in "other".
# ``repro.experiments.report`` renders its word breakdown from this map.
LAYER_OF_KIND = {
    "InitMsg": "approver",
    "EchoMsg": "approver",
    "OkMsg": "approver",
    "FirstMsg": "coin",
    "SecondMsg": "coin",
}

_LAYERS = ("approver", "coin", "other")

# The same map as an index into a three-slot accumulator, so the fold
# loop charges a send's words with one dict get and one list add
# (unknown kinds default to the trailing "other" slot).
_LAYER_INDEX = {
    kind: _LAYERS.index(layer) for kind, layer in LAYER_OF_KIND.items()
}

# Systematic 1-in-k source sampling of link latencies, keyed by network
# sequence number (power of two so the filter is a single mask).
_LATENCY_STRIDE = 8
_LATENCY_MASK = _LATENCY_STRIDE - 1


class SeriesBank:
    """Parallel bounded time series sharing one uniform sample grid.

    Every gauge is sampled at the same instants, so one steps list and
    one stride serve all columns.  The caller offers one row per grid
    point (:class:`TelemetryProbe` samples every ``stride``-th
    delivery); when the point count would exceed ``budget``, every
    other retained row is dropped and :meth:`record` returns ``True``
    so the caller doubles its grid stride.  The bank therefore always
    spans the whole run at uniform resolution with between budget/2 and
    budget points -- deterministic decimation, no randomness.
    """

    __slots__ = ("budget", "stride", "steps", "columns")

    def __init__(self, names: Iterable[str], budget: int = 512) -> None:
        if budget < 8:
            raise ValueError("sample budget must be at least 8")
        self.budget = budget
        self.stride = 1
        self.steps: list[int] = []
        self.columns: dict[str, list[float]] = {name: [] for name in names}

    def record(self, step: int, values: Iterable[float]) -> bool:
        """Append one sample row; returns True when the grid coarsened."""
        steps = self.steps
        steps.append(step)
        for column, value in zip(self.columns.values(), values):
            column.append(value)
        if len(steps) > self.budget:
            self.steps = steps[::2]
            for name, column in self.columns.items():
                self.columns[name] = column[::2]
            self.stride *= 2
            return True
        return False

    def to_dict(self) -> dict[str, Any]:
        """One ``{stride, steps, values}`` series document per column."""
        return {
            name: {
                "stride": self.stride,
                "steps": list(self.steps),
                "values": list(column),
            }
            for name, column in self.columns.items()
        }


class StreamingQuantiles:
    """Approximate stream quantiles under a fixed memory budget.

    Keeps every ``stride``-th observation (systematic sampling, stride
    doubling on overflow -- same rule as :class:`SeriesBank`, so the
    sketch is deterministic for a given stream) plus exact count, min
    and max of everything it was fed.  Quantiles are nearest-rank over
    the retained sample; with a budget of 1024 the retained fraction
    bounds the rank error well below the run-to-run noise of the
    quantities measured here.
    """

    __slots__ = ("budget", "stride", "count", "vmin", "vmax", "sample")

    def __init__(self, budget: int = 1024) -> None:
        if budget < 8:
            raise ValueError("quantile budget must be at least 8")
        self.budget = budget
        self.stride = 1
        self.count = 0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.sample: list[float] = []

    def record(self, value: float) -> None:
        if self.count % self.stride == 0:
            self.sample.append(value)
            if len(self.sample) > self.budget:
                self.sample = self.sample[::2]
                self.stride *= 2
        self.count += 1
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def quantile(self, q: float) -> float | None:
        if not self.sample:
            return None
        ordered = sorted(self.sample)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class TelemetryProbe:
    """Fold a kernel event stream into bounded virtual-time telemetry.

    Subscribe via ``run_protocol(..., telemetry=probe)`` (or
    ``probe.attach(simulation)``); call :meth:`snapshot` after the run.

    The online path is deliberately minimal -- one buffer append per
    event, with the buffer folded into the gauges/series/sketches every
    ``_CHUNK`` events -- so an attached probe's dispatch cost stays
    under the same < 3% bound as the conformance monitors (asserted by
    ``bench_observability_overhead.py``).  State is O(chunk + sample
    budgets + n), never O(events).
    """

    _CHUNK = 1024

    def __init__(self, sample_budget: int = 256, quantile_budget: int = 1024) -> None:
        self.sample_budget = sample_budget
        # Gauge state, advanced chunk-at-a-time by _fold().  The backlog
        # is a pid-indexed list (grown on demand) because list indexing
        # is the cheapest per-event counter CPython offers.
        self._sends = 0
        self._delivers = 0
        self._backlog: list[int] = []
        self._blocked: set[int] = set()
        self._words = [0] * len(_LAYERS)
        # Pending state for wait-latency pairing (popped at wake, so
        # memory tracks currently parked pids).
        self._block_at: dict[int, tuple[int, int]] = {}
        # All gauges share one grid over the delivery counter; the fold
        # loop's grid check is a single integer comparison against the
        # next sample's delivery index.
        self._grid_stride = 1
        self._next_sample = 1
        self.bank = SeriesBank(
            (
                "in_flight",
                "blocked",
                "backlog_max",
                "backlog_mean",
                "words_approver",
                "words_coin",
                "words_other",
            ),
            sample_budget,
        )
        # Streaming latency sketches.
        self.link_latency_steps = StreamingQuantiles(quantile_budget)
        self.wait_steps = StreamingQuantiles(quantile_budget)
        self.wait_depth = StreamingQuantiles(quantile_budget)
        # Per-causal-depth profile: depth -> [messages, words], plus
        # decisions on the side (depth is O(duration), so these dicts
        # are really O(rounds) -- tiny).
        self._depth_rows: dict[int, list[int]] = {}
        self._depth_decisions: dict[int, int] = {}
        self.counters = {
            "events": 0,
            "sends": 0,
            "delivers": 0,
            "decides": 0,
            "corrupts": 0,
            "wait_blocks": 0,
            "wait_wakes": 0,
            "phases": 0,
        }
        # The online path: append, fold when the chunk fills.  Bound as
        # a closure so the per-event cost is one call, one append and
        # one length check -- no attribute lookups.
        pending: list[KernelEvent] = []
        self._pending = pending

        def on_event(
            event: KernelEvent,
            _append=pending.append,
            _pending=pending,
            _chunk=self._CHUNK,
            _fold=self._fold,
        ) -> None:
            _append(event)
            if len(_pending) >= _chunk:
                _fold()

        self.on_event = on_event

    # -- event handling --------------------------------------------------------

    def attach(self, simulation) -> "TelemetryProbe":
        """Subscribe to ``simulation``'s event bus; returns self."""
        simulation.events.subscribe(self.on_event)
        return self

    def _fold(self) -> None:
        """Fold the pending chunk into gauges, series and sketches.

        One tight loop with every piece of state (and every constant)
        aliased to a local; this is the amortised per-event cost the
        overhead benchmark bounds, so additions here must stay O(1)
        dict/int work per event.
        """
        chunk = self._pending
        backlog = self._backlog
        blocked = self._blocked
        block_at = self._block_at
        depth_rows = self._depth_rows
        last_depth = -1
        last_row: list[int] | None = None
        li_get = _LAYER_INDEX.get
        last_kind: str | None = None
        last_layer = 2
        lat_mask = _LATENCY_MASK
        latencies: list[int] = []
        lat_append = latencies.append
        sends = self._sends
        delivers = self._delivers
        words = self._words
        grid_stride = self._grid_stride
        next_sample = self._next_sample
        counters = self.counters
        n_decides = n_corrupts = n_blocks = n_wakes = n_phases = 0
        send_cls = SendEvent
        deliver_cls = DeliverEvent
        for event in chunk:
            kind = type(event)
            if kind is send_cls:
                sends += 1
                dest = event.dest
                try:
                    backlog[dest] += 1
                except IndexError:
                    backlog.extend([0] * (dest + 1 - len(backlog)))
                    backlog[dest] += 1
                if event.sender_correct:
                    # Kinds arrive in broadcast bursts; an identity
                    # check on the (interned) kind string dodges the
                    # dict get on almost every send.
                    message_kind = event.message_kind
                    if message_kind is not last_kind:
                        last_kind = message_kind
                        last_layer = li_get(message_kind, 2)
                    words[last_layer] += event.words
            elif kind is deliver_cls:
                delivers += 1
                dest = event.dest
                try:
                    # Clamp at zero: tolerate logs that start mid-run
                    # (a deliver whose send was never seen).
                    if backlog[dest] > 0:
                        backlog[dest] -= 1
                except IndexError:
                    pass
                if not event.seq & lat_mask:
                    lat_append(event.step - event.sent_step)
                depth = event.depth
                if depth == last_depth:
                    # Delivery depths arrive in long monotone stretches,
                    # so one cached row absorbs almost every dict get.
                    last_row[0] += 1
                    last_row[1] += event.words
                else:
                    last_row = depth_rows.get(depth)
                    if last_row is None:
                        depth_rows[depth] = last_row = [1, event.words]
                    else:
                        last_row[0] += 1
                        last_row[1] += event.words
                    last_depth = depth
                if delivers == next_sample:
                    # Write the loop's running state back before the
                    # (rare) sample so the gauges read current values.
                    self._sends = sends
                    self._delivers = delivers
                    if self._sample(event.step):
                        grid_stride *= 2
                    next_sample = delivers + grid_stride
            elif kind is WaitBlockEvent:
                n_blocks += 1
                blocked.add(event.pid)
                block_at[event.pid] = (event.step, event.depth)
            elif kind is WaitWakeEvent:
                n_wakes += 1
                blocked.discard(event.pid)
                parked = block_at.pop(event.pid, None)
                if parked is not None:
                    self.wait_steps.record(event.step - parked[0])
                    self.wait_depth.record(event.depth - parked[1])
            elif kind is DecideEvent:
                n_decides += 1
                depth = event.depth
                self._depth_decisions[depth] = (
                    self._depth_decisions.get(depth, 0) + 1
                )
            elif kind is CorruptEvent:
                n_corrupts += 1
                blocked.discard(event.pid)
                block_at.pop(event.pid, None)
            elif kind is PhaseEvent:
                n_phases += 1
        self._sends = sends
        self._delivers = delivers
        self._grid_stride = grid_stride
        self._next_sample = next_sample
        counters["events"] += len(chunk)
        counters["sends"] = sends
        counters["delivers"] = delivers
        counters["decides"] += n_decides
        counters["corrupts"] += n_corrupts
        counters["wait_blocks"] += n_blocks
        counters["wait_wakes"] += n_wakes
        counters["phases"] += n_phases
        record_latency = self.link_latency_steps.record
        for value in latencies:
            record_latency(value)
        del chunk[:]

    def _sample(self, step: int) -> bool:
        """Sample every gauge at ``step``; True when the grid coarsened.

        The O(n) scans over the backlog list happen only here -- at most
        ~2x sample_budget times per run -- never on the per-event path.
        """
        backlog = self._backlog
        active = len(backlog) - backlog.count(0)
        in_flight = max(0, self._sends - self._delivers)
        words = self._words
        return self.bank.record(
            step,
            (
                in_flight,
                len(self._blocked),
                max(backlog, default=0),
                in_flight / active if active else 0.0,
                words[0],
                words[1],
                words[2],
            ),
        )

    # -- snapshotting ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The JSON-ready telemetry document (schema-versioned)."""
        if self._pending:
            self._fold()
        series = self.bank.to_dict()
        words_by_layer = {
            layer: series.pop(f"words_{layer}") for layer in _LAYERS
        }
        series["words_by_layer"] = words_by_layer
        depths = sorted(set(self._depth_rows) | set(self._depth_decisions))
        empty_row = (0, 0)
        return {
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_SCHEMA_VERSION,
            "sample_budget": self.sample_budget,
            "series": series,
            "quantiles": {
                "link_latency_steps": {
                    **self.link_latency_steps.to_dict(),
                    "source_stride": _LATENCY_STRIDE,
                },
                "wait_steps": self.wait_steps.to_dict(),
                "wait_depth": self.wait_depth.to_dict(),
            },
            "depth_profile": [
                {
                    "depth": depth,
                    "messages": row[0],
                    "words": row[1],
                    "decisions": self._depth_decisions.get(depth, 0),
                }
                for depth in depths
                for row in (self._depth_rows.get(depth, empty_row),)
            ],
            "words_total": sum(self._words),
            "counters": dict(self.counters),
        }


def telemetry_from_events(
    events: Iterable[KernelEvent],
    sample_budget: int = 256,
    quantile_budget: int = 1024,
) -> dict[str, Any]:
    """Replay a recorded event log through a fresh probe; returns the
    snapshot.  This is how ``repro dashboard`` synthesises telemetry for
    recordings made without a probe attached."""
    probe = TelemetryProbe(sample_budget, quantile_budget)
    on_event = probe.on_event
    for event in events:
        on_event(event)
    return probe.snapshot()


def telemetry_path_for(recording_path: str | Path) -> Path:
    """The sidecar path convention: ``run.jsonl`` -> ``run.telemetry.json``."""
    path = Path(recording_path)
    return path.with_name(path.name.removesuffix(".jsonl") + ".telemetry.json")


def save_telemetry(
    path: str | Path,
    probe: "TelemetryProbe | dict[str, Any]",
    header: dict[str, Any] | None = None,
) -> Path:
    """Persist a probe snapshot (or a prebuilt snapshot dict) as JSON.

    ``header`` merges run-identity fields (n, f, seed, ...) into the
    document so the sidecar is self-describing.
    """
    snapshot = probe.snapshot() if isinstance(probe, TelemetryProbe) else dict(probe)
    if header:
        snapshot["run"] = dict(header)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_telemetry(path: str | Path) -> dict[str, Any]:
    """Load a :func:`save_telemetry` document, failing loudly on damage.

    Raises ``ValueError`` with a one-line diagnosis on empty files,
    non-JSON content, foreign schemas, or future versions -- the same
    policy as flight recordings and the trend store.
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        raise ValueError(f"{path}: empty file (not a telemetry snapshot)")
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: not valid JSON ({exc.msg}); truncated or corrupt file?"
        ) from exc
    if not isinstance(snapshot, dict) or snapshot.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"{path}: unknown schema "
            f"{snapshot.get('schema') if isinstance(snapshot, dict) else None!r} "
            f"(expected {TELEMETRY_SCHEMA!r})"
        )
    version = snapshot.get("version")
    if version != TELEMETRY_SCHEMA_VERSION:
        newer = isinstance(version, int) and version > TELEMETRY_SCHEMA_VERSION
        hint = (
            "written by a newer build; upgrade this checkout to read it"
            if newer
            else "re-record the run or load it with a matching build"
        )
        raise ValueError(
            f"{path}: telemetry schema version {version!r}, this build "
            f"reads {TELEMETRY_SCHEMA_VERSION} ({hint})"
        )
    return snapshot
