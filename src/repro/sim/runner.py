"""High-level run helpers and the immutable result snapshot."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.metrics import MetricsRecorder
from repro.sim.network import DEFAULT_MAX_DELIVERIES, Simulation
from repro.sim.process import ProcessContext, ProtocolFactory

__all__ = [
    "RunResult",
    "run_protocol",
    "stop_when_all_decided",
    "stop_when_all_returned",
]


def stop_when_all_decided(simulation: Simulation) -> bool:
    """Stop once every correct process has decided.

    This is how runs of the (forever-looping) Byzantine Agreement protocol
    terminate: the algorithm never halts, the experiment does.

    Evaluated after every delivery, so the common case (not done yet) is a
    cheap length check; the precise set union only runs when the counts
    could possibly cover every correct process.
    """
    if len(simulation.decided) + len(simulation.corrupted) < simulation.n:
        return False
    return len(simulation.decided | simulation.corrupted) == simulation.n


def stop_when_all_returned(simulation: Simulation) -> bool:
    """Stop once every correct process's protocol generator returned."""
    if len(simulation.finished) + len(simulation.corrupted) < simulation.n:
        return False
    return len(simulation.finished | simulation.corrupted) == simulation.n


# Both conditions are monotone in state that only ever grows (decided /
# finished / corrupted), so their value can only change when one of those
# sets does.  The batched kernel loop uses this to skip re-evaluating an
# unchanged condition between deliveries (same stop point, fewer calls).
stop_when_all_decided.monotone_stop = True  # type: ignore[attr-defined]
stop_when_all_returned.monotone_stop = True  # type: ignore[attr-defined]


@dataclass(frozen=True)
class RunResult:
    """Snapshot of one finished run."""

    n: int
    f: int
    seed: int
    corrupted: frozenset[int]
    returns: dict[int, Any]
    decisions: dict[int, Any]
    decision_depths: dict[int, int]
    notes: dict[int, dict[str, Any]]
    metrics: MetricsRecorder
    deliveries: int
    deadlocked: bool
    exhausted: bool
    stopped_by_condition: bool

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in range(self.n) if pid not in self.corrupted]

    @property
    def words(self) -> int:
        """Word complexity: words sent by correct processes (paper Section 2)."""
        return self.metrics.words_correct

    @property
    def duration(self) -> int:
        """Causal running time: depth of the deepest decision (or return)."""
        if self.decision_depths:
            return max(self.decision_depths.values())
        return 0

    @property
    def words_delivered(self) -> int:
        """Words actually delivered (sent minus dropped, plus duplicates)."""
        return self.metrics.words_delivered

    @property
    def lossy_counters(self) -> dict[str, int]:
        """Link-fault counters (all zero for reliable-model runs)."""
        if self.metrics.lossy_link:
            return dict(self.metrics.lossy_link)
        return {"drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0}

    @property
    def lossy_by_kind(self) -> dict[str, dict[str, int]]:
        """Per-message-kind link-fault counters (empty when reliable)."""
        return {
            fate: dict(kinds)
            for fate, kinds in self.metrics.lossy_by_kind.items()
        }

    @property
    def live(self) -> bool:
        """True if the run terminated properly (no deadlock, no step cap)."""
        return not self.deadlocked and not self.exhausted

    @property
    def all_correct_decided(self) -> bool:
        return all(pid in self.decisions for pid in self.correct_pids)

    @property
    def decided_values(self) -> set[Any]:
        return {self.decisions[pid] for pid in self.correct_pids if pid in self.decisions}

    @property
    def agreement(self) -> bool:
        """No two correct processes decided differently (vacuous if none decided)."""
        return len(self.decided_values) <= 1

    @property
    def returned_values(self) -> set[Any]:
        return {
            self.returns[pid] for pid in self.correct_pids if pid in self.returns
        }

    # -- protocol-record rollups (delegated to the metrics recorder) -----------

    @property
    def rounds(self) -> list[dict[str, Any]]:
        """Round-indexed rollup of the protocol's ``round`` annotations."""
        return self.metrics.rounds()

    @property
    def coin_invocations(self) -> list[dict[str, Any]]:
        return self.metrics.coin_invocations()

    @property
    def coin_success_rate(self) -> float:
        return self.metrics.coin_success_rate()

    @property
    def committee_sizes(self) -> dict[str, dict[int, int]]:
        return self.metrics.committee_sizes()

    @property
    def protocol_summary(self) -> dict[str, Any]:
        return self.metrics.protocol_summary()

    @staticmethod
    def of(simulation: Simulation) -> "RunResult":
        return RunResult(
            n=simulation.n,
            f=simulation.f,
            seed=simulation.seed,
            corrupted=frozenset(simulation.corrupted),
            returns=dict(simulation.returns),
            decisions={
                pid: simulation.contexts[pid].decision
                for pid in simulation.decided
            },
            decision_depths={
                pid: simulation.contexts[pid].decision_depth
                for pid in simulation.decided
                if simulation.contexts[pid].decision_depth is not None
            },
            notes={
                pid: dict(simulation.contexts[pid].notes)
                for pid in range(simulation.n)
                if simulation.contexts[pid].notes
            },
            metrics=simulation.metrics,
            deliveries=simulation.deliveries,
            deadlocked=simulation.deadlocked,
            exhausted=simulation.exhausted,
            stopped_by_condition=simulation.stopped_by_condition,
        )


def run_protocol(
    n: int,
    f: int,
    protocol: ProtocolFactory,
    *,
    adversary: Adversary | None = None,
    corrupt: set[int] | None = None,
    seed: int = 0,
    pki: PKI | None = None,
    backend: str = "simulated",
    params: Any = None,
    stop_condition: Callable[[Simulation], bool] | None = stop_when_all_returned,
    max_deliveries: int = DEFAULT_MAX_DELIVERIES,
    protocols_by_pid: dict[int, ProtocolFactory] | None = None,
    verify_cache: bool = True,
    eager_wakeups: bool = False,
    profile: bool = False,
    delivery_mode: str = "classic",
    lossy: Any = None,
    subscribers: list[Callable[[Any], None]] | None = None,
    monitors: Any = None,
    telemetry: Any = None,
    coverage: Any = None,
) -> RunResult:
    """Run one protocol instance end to end and snapshot the result.

    By default every process runs ``protocol``, the ``corrupt`` pid set is
    statically Byzantine-silent, scheduling is uniformly random (seeded
    from ``seed``), and the run stops when every correct process's
    generator returns.  ``verify_cache=False`` disables the PKI's
    memoized verification (only consulted when ``pki`` is created here);
    ``eager_wakeups=True`` disables instance-keyed wait wakeups.  Both
    exist for equivalence testing and benchmarking against the uncached
    kernel.  ``delivery_mode="batched"`` turns on the batched kernel
    loop (observably identical; schedulers that cannot commit batches
    fall back to the classic step -- see ``Simulation``).

    ``profile=True`` turns on the wall-clock kernel/span timers
    (``metrics.phase_timings``); ``subscribers`` attaches kernel
    event-bus callbacks before the run starts (e.g. a
    ``FlightRecorder.on_event`` or ``TraceRecorder.on_event``).  Both are
    off by default so an unobserved run does no observability work beyond
    one list-truthiness check per emission site.

    ``monitors`` attaches conformance monitors (a
    :class:`~repro.sim.monitors.MonitorSuite` or an iterable of
    :class:`~repro.sim.monitors.Monitor`): the suite subscribes to the
    event bus for the run and is finalized against the snapshotted
    result, so the paper's properties are checked online without
    perturbing the run (see DESIGN.md section 8).  The same suite may be
    passed to successive runs to accumulate cross-run statistics.

    ``telemetry`` attaches a :class:`~repro.sim.telemetry.TelemetryProbe`
    (just another event-bus subscriber, so the same no-subscriber guard
    applies): the probe folds the run's event stream into bounded
    virtual-time series -- in-flight messages, mailbox backlog, blocked
    processes, cumulative words by layer, latency quantiles -- call
    ``probe.snapshot()`` afterwards (see DESIGN.md section 9).

    ``lossy`` attaches a :class:`~repro.sim.network.LossyLinkConfig`
    enabling the lossy-link model *extension* (per-link drop / duplicate
    / reorder / bit-corrupt fates, deterministic from ``seed``).  ``None``
    or an all-zero config keeps the run byte-identical to the reliable
    model; an active config forces classic stepping (see ``Simulation``).

    ``coverage`` attaches a :class:`~repro.sim.coverage.CoverageProbe`
    (another event-bus subscriber): the probe folds the run into its
    schedule-coverage signature set -- which races resolved which way,
    which wait interleavings and delivery permutations occurred -- call
    ``probe.snapshot()`` afterwards (see DESIGN.md section 11).
    """
    suite = None
    if monitors is not None:
        from repro.sim.monitors import as_suite

        suite = as_suite(monitors)
    rng = random.Random(derive_seed(seed, "setup"))
    if pki is None:
        pki = PKI.create(n, backend=backend, rng=rng, verify_cache=verify_cache)
    if adversary is not None and corrupt is not None:
        raise ValueError("pass either a full adversary or a corrupt set, not both")
    if adversary is None:
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(derive_seed(seed, "sched"))),
            corruption=StaticCorruption(corrupt or set()),
        )
    simulation = Simulation(
        n=n,
        f=f,
        pki=pki,
        adversary=adversary,
        seed=seed,
        params=params,
        max_deliveries=max_deliveries,
        stop_condition=stop_condition,
        eager_wakeups=eager_wakeups,
        profile=profile,
        delivery_mode=delivery_mode,
        lossy=lossy,
    )
    for subscriber in subscribers or ():
        simulation.events.subscribe(subscriber)
    if telemetry is not None:
        simulation.events.subscribe(telemetry.on_event)
    if coverage is not None:
        simulation.events.subscribe(coverage.on_event)
    if suite is not None:
        suite.begin_run()
        simulation.events.subscribe(suite.on_event)
    simulation.set_protocol_all(protocol)
    if protocols_by_pid:
        for pid, factory in protocols_by_pid.items():
            simulation.set_protocol(pid, factory)
    simulation.run()
    result = RunResult.of(simulation)
    if suite is not None:
        suite.finalize(result, simulation)
    return result
