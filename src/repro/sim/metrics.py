"""Run metrics: word complexity, causal time, and per-round protocol records.

* **Word complexity** (Section 2): the total number of words sent by
  *correct* processes; a word holds a signature, a VRF output, or a
  constant-size value.  Each message self-reports its size via
  ``Message.words()``.
* **Running time**: the longest causally-related message chain until all
  correct processes decide.  The kernel threads a causal depth through
  every envelope; the duration is the maximum decision depth.

Message counts and per-kind breakdowns are also kept -- they make the
complexity benches' output auditable.  The recorder also carries the
kernel's hot-path observability: per-run verification-cache hit/miss
counters (snapshotted from the PKI by ``Simulation.run``), wait-wakeup
counters (re-evaluated versus skipped pending conditions), wall-clock
phase timers (populated only when the run profiles, see
``Simulation(profile=True)``), and the **protocol record log** --
structured per-round facts (round outcomes, coin invocations, observed
committee sizes, approver grades) appended by protocol code through
:meth:`repro.sim.process.ProcessContext.annotate` and rolled up by
:meth:`MetricsRecorder.protocol_summary`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.sim.messages import Envelope

__all__ = ["MetricsRecorder", "ProtocolRecord", "histogram"]


@dataclass(frozen=True)
class ProtocolRecord:
    """One structured fact a protocol recorded about its own progress.

    ``kind`` names the fact category (``"round"``, ``"coin"``,
    ``"approve"``, ``"committee"``, ``"sampled"``); ``data`` holds the
    category's JSON-friendly fields.  ``step`` is the kernel's delivery
    counter at annotation time, so records are round-indexed *and*
    schedule-ordered.
    """

    step: int
    pid: int
    kind: str
    data: tuple[tuple[str, Any], ...]

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.data:
            if key == name:
                return value
        return default


def histogram(values) -> dict[int, int]:
    """Sorted value -> multiplicity map (the report's histogram helper)."""
    return dict(sorted(Counter(values).items()))


@dataclass
class MetricsRecorder:
    """Mutable accumulator the kernel writes into during a run."""

    words_correct: int = 0
    words_total: int = 0
    messages_sent_correct: int = 0
    messages_sent_total: int = 0
    messages_delivered: int = 0
    words_delivered: int = 0
    words_by_kind: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    # Per-process accounting (correct senders only, like words_by_kind):
    # the evidence that no single node secretly does O(n) work in the
    # sub-quadratic protocols.
    words_by_sender: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    # Verification-cache accounting for this run (deltas of the PKI's
    # monotone counters, written by Simulation.run).
    vrf_verifications: int = 0
    vrf_cache_hits: int = 0
    sig_verifications: int = 0
    sig_cache_hits: int = 0
    # Pending-wait wakeup accounting: evaluated vs skipped by subscription.
    wait_evaluations: int = 0
    wait_skips: int = 0
    # Wall-clock seconds per kernel section / protocol span; empty unless
    # the simulation ran with profile=True (timings are the one field that
    # legitimately differs between otherwise identical runs).
    phase_timings: dict[str, float] = field(default_factory=dict)
    # Structured per-round facts appended by ProcessContext.annotate.
    protocol_records: list[ProtocolRecord] = field(default_factory=list)
    # Lossy-link accounting, written by Simulation.run when the run
    # carried an active LossyLinkConfig: the run-level fate counters
    # (drops/duplicates/reorders/corruptions) and the same counters
    # split by message kind.  Empty in reliable-model runs.
    lossy_link: dict[str, int] = field(default_factory=dict)
    lossy_by_kind: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def verifications(self) -> int:
        return self.vrf_verifications + self.sig_verifications

    @property
    def verification_cache_hits(self) -> int:
        return self.vrf_cache_hits + self.sig_cache_hits

    @property
    def verification_cache_hit_rate(self) -> float:
        """Fraction of verify calls answered from the cache (0.0 if none)."""
        total = self.verifications
        return self.verification_cache_hits / total if total else 0.0

    def record_verification_counters(
        self, before: tuple[int, int, int, int], after: tuple[int, int, int, int]
    ) -> None:
        """Store this run's share of the PKI's monotone verify counters."""
        self.vrf_verifications = after[0] - before[0]
        self.vrf_cache_hits = after[1] - before[1]
        self.sig_verifications = after[2] - before[2]
        self.sig_cache_hits = after[3] - before[3]

    def record_send(self, envelope: Envelope) -> None:
        words = envelope.payload.words()
        kind = type(envelope.payload).__name__
        self.words_total += words
        self.messages_sent_total += 1
        if envelope.sender_correct:
            self.words_correct += words
            self.messages_sent_correct += 1
            self.words_by_kind[kind] += words
            self.messages_by_kind[kind] += 1
            self.words_by_sender[envelope.sender] += words
            self.messages_by_sender[envelope.sender] += 1

    def record_delivery(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
        self.words_delivered += envelope.payload.words()

    def add_timing(self, section: str, seconds: float) -> None:
        self.phase_timings[section] = self.phase_timings.get(section, 0.0) + seconds

    # -- persistence ----------------------------------------------------------

    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        """Every persisted counter, ready for ``store.save_results``.

        Includes the hot-path counters (verification cache hits,
        wait evaluations/skips) and -- unless ``include_timings`` is
        False -- the wall-clock phase timers.  Timings are excluded when
        comparing runs for byte-identity, since wall-clock legitimately
        varies between otherwise identical executions.  The raw protocol
        record log is *not* inlined (it is schedule-sized); its rollup is
        exposed via :meth:`protocol_summary`.
        """
        payload: dict[str, Any] = {
            "words_correct": self.words_correct,
            "words_total": self.words_total,
            "messages_sent_correct": self.messages_sent_correct,
            "messages_sent_total": self.messages_sent_total,
            "messages_delivered": self.messages_delivered,
            "words_delivered": self.words_delivered,
            "words_by_kind": dict(self.words_by_kind),
            "messages_by_kind": dict(self.messages_by_kind),
            # str keys so the payload round-trips through JSON unchanged.
            "words_by_sender": {
                str(pid): self.words_by_sender[pid]
                for pid in sorted(self.words_by_sender)
            },
            "messages_by_sender": {
                str(pid): self.messages_by_sender[pid]
                for pid in sorted(self.messages_by_sender)
            },
            "vrf_verifications": self.vrf_verifications,
            "vrf_cache_hits": self.vrf_cache_hits,
            "sig_verifications": self.sig_verifications,
            "sig_cache_hits": self.sig_cache_hits,
            "verification_cache_hit_rate": self.verification_cache_hit_rate,
            "wait_evaluations": self.wait_evaluations,
            "wait_skips": self.wait_skips,
        }
        if self.lossy_link:
            payload["lossy_link"] = dict(self.lossy_link)
        if self.lossy_by_kind:
            payload["lossy_by_kind"] = {
                fate: dict(kinds) for fate, kinds in self.lossy_by_kind.items()
            }
        if include_timings:
            payload["phase_timings"] = dict(self.phase_timings)
        return payload

    # -- protocol-record rollups ----------------------------------------------

    def records_of(self, kind: str) -> list[ProtocolRecord]:
        return [record for record in self.protocol_records if record.kind == kind]

    def rounds(self) -> list[dict[str, Any]]:
        """Round-indexed rollup of the per-process ``round`` records.

        One entry per (tag, round), ordered by first occurrence, with the
        set of participating pids, how many decided in that round, and the
        estimates the round ended with.
        """
        by_round: dict[Hashable, dict[str, Any]] = {}
        for record in self.records_of("round"):
            key = (record.get("tag"), record.get("round"))
            entry = by_round.setdefault(
                key,
                {
                    "tag": key[0],
                    "round": key[1],
                    "pids": [],
                    "decided": 0,
                    "estimates": Counter(),
                    "first_step": record.step,
                    "last_step": record.step,
                },
            )
            entry["pids"].append(record.pid)
            entry["estimates"][record.get("est")] += 1
            if record.get("decided") is not None:
                entry["decided"] += 1
            entry["first_step"] = min(entry["first_step"], record.step)
            entry["last_step"] = max(entry["last_step"], record.step)
        rows = sorted(by_round.values(), key=lambda row: (str(row["tag"]), row["round"]))
        for row in rows:
            row["pids"] = sorted(row["pids"])
            row["estimates"] = {
                repr(value): count for value, count in sorted(
                    row["estimates"].items(), key=lambda item: repr(item[0])
                )
            }
        return rows

    def coin_invocations(self) -> list[dict[str, Any]]:
        """Per-invocation coin rollup: outcomes, unanimity, observed sizes."""
        by_instance: dict[Hashable, dict[str, Any]] = {}
        for record in self.records_of("coin"):
            key = record.get("instance")
            entry = by_instance.setdefault(
                key,
                {
                    "instance": key,
                    "variant": record.get("variant"),
                    "outcomes": Counter(),
                    "participants": 0,
                    "first_step": record.step,
                    "last_step": record.step,
                },
            )
            entry["outcomes"][record.get("outcome")] += 1
            entry["participants"] += 1
            entry["first_step"] = min(entry["first_step"], record.step)
            entry["last_step"] = max(entry["last_step"], record.step)
        rows = sorted(by_instance.values(), key=lambda row: repr(row["instance"]))
        for row in rows:
            outcomes = row.pop("outcomes")
            row["outcomes"] = {repr(bit): count for bit, count in sorted(
                outcomes.items(), key=lambda item: repr(item[0])
            )}
            row["unanimous"] = len(outcomes) == 1
        return rows

    def coin_success_rate(self) -> float:
        """Fraction of coin invocations on which every participant agreed."""
        rows = self.coin_invocations()
        if not rows:
            return 0.0
        return sum(row["unanimous"] for row in rows) / len(rows)

    @staticmethod
    def _role_family(role: Any) -> str:
        """Collapse per-value role labels (e.g. ``("echo", v)``) to a family."""
        if isinstance(role, (tuple, list)) and role:
            return str(role[0])
        return str(role)

    def committee_sizes(self) -> dict[str, dict[int, int]]:
        """Observed committee-size histograms, keyed by committee role family.

        "Observed" means the count of distinct *validated* members a
        process saw for that committee by the time its instance finished
        -- the quantity the (1±d)λ concentration claims bound.
        """
        by_role: dict[str, list[int]] = {}
        for record in self.records_of("committee"):
            by_role.setdefault(self._role_family(record.get("role")), []).append(
                record.get("size")
            )
        return {role: histogram(sizes) for role, sizes in sorted(by_role.items())}

    def sampled_committee_sizes(self) -> dict[str, dict[int, int]]:
        """Self-reported committee sizes from the ``sampled`` records.

        Counts the processes whose private ``sample_i`` came up True, per
        (instance, role), then histograms those counts by role family --
        the trusted-setup-free twin of experiment F1's committee view.
        """
        sizes: dict[Hashable, int] = {}
        for record in self.records_of("sampled"):
            key = (record.get("instance"), record.get("role"))
            sizes.setdefault(key, 0)
            if record.get("member"):
                sizes[key] += 1
        by_role: dict[str, list[int]] = {}
        for (_, role), size in sizes.items():
            by_role.setdefault(self._role_family(role), []).append(size)
        return {role: histogram(sizes) for role, sizes in sorted(by_role.items())}

    def approver_grades(self) -> dict[int, int]:
        """Histogram of approver return-set sizes (the 'grade')."""
        return histogram(
            record.get("grade") for record in self.records_of("approve")
        )

    def per_process_words(self) -> dict[str, Any]:
        """Per-node word-load rollup: the 'no hot node' evidence.

        Max/mean/min words sent per correct sender, the heaviest
        talkers, and the committee vs non-committee split (committee
        membership from the self-reported ``sampled`` records) -- in the
        sub-quadratic protocols the committee side should carry the
        heavy per-node load while everyone else stays near the mean.
        """
        loads = dict(self.words_by_sender)
        if not loads:
            return {"senders": 0}
        words = list(loads.values())
        committee_pids = {
            record.pid
            for record in self.records_of("sampled")
            if record.get("member")
        }
        committee = [loads[pid] for pid in loads if pid in committee_pids]
        rest = [loads[pid] for pid in loads if pid not in committee_pids]

        def stats(values: list[int]) -> dict[str, Any]:
            if not values:
                return {"senders": 0, "words": 0}
            return {
                "senders": len(values),
                "words": sum(values),
                "max_words": max(values),
                "mean_words": sum(values) / len(values),
                "min_words": min(values),
            }

        top = sorted(loads.items(), key=lambda item: (-item[1], item[0]))[:5]
        return {
            **stats(words),
            "top_senders": [[pid, load] for pid, load in top],
            "committee": stats(committee),
            "non_committee": stats(rest),
        }

    def protocol_summary(self) -> dict[str, Any]:
        """All protocol-record rollups in one JSON-friendly dict."""
        return {
            "rounds": self.rounds(),
            "coin_invocations": self.coin_invocations(),
            "coin_success_rate": self.coin_success_rate(),
            "committee_sizes": self.committee_sizes(),
            "sampled_committee_sizes": self.sampled_committee_sizes(),
            "approver_grades": self.approver_grades(),
            "per_process_words": self.per_process_words(),
        }
