"""Run metrics: word complexity and causal time, per the paper's definitions.

* **Word complexity** (Section 2): the total number of words sent by
  *correct* processes; a word holds a signature, a VRF output, or a
  constant-size value.  Each message self-reports its size via
  ``Message.words()``.
* **Running time**: the longest causally-related message chain until all
  correct processes decide.  The kernel threads a causal depth through
  every envelope; the duration is the maximum decision depth.

Message counts and per-kind breakdowns are also kept -- they make the
complexity benches' output auditable.  The recorder also carries the
kernel's hot-path observability: per-run verification-cache hit/miss
counters (snapshotted from the PKI by ``Simulation.run``) and wait-wakeup
counters (how many pending wait-conditions were re-evaluated versus
skipped thanks to instance-keyed subscriptions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import Envelope

__all__ = ["MetricsRecorder"]


@dataclass
class MetricsRecorder:
    """Mutable accumulator the kernel writes into during a run."""

    words_correct: int = 0
    words_total: int = 0
    messages_sent_correct: int = 0
    messages_sent_total: int = 0
    messages_delivered: int = 0
    words_by_kind: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    # Verification-cache accounting for this run (deltas of the PKI's
    # monotone counters, written by Simulation.run).
    vrf_verifications: int = 0
    vrf_cache_hits: int = 0
    sig_verifications: int = 0
    sig_cache_hits: int = 0
    # Pending-wait wakeup accounting: evaluated vs skipped by subscription.
    wait_evaluations: int = 0
    wait_skips: int = 0

    @property
    def verifications(self) -> int:
        return self.vrf_verifications + self.sig_verifications

    @property
    def verification_cache_hits(self) -> int:
        return self.vrf_cache_hits + self.sig_cache_hits

    @property
    def verification_cache_hit_rate(self) -> float:
        """Fraction of verify calls answered from the cache (0.0 if none)."""
        total = self.verifications
        return self.verification_cache_hits / total if total else 0.0

    def record_verification_counters(
        self, before: tuple[int, int, int, int], after: tuple[int, int, int, int]
    ) -> None:
        """Store this run's share of the PKI's monotone verify counters."""
        self.vrf_verifications = after[0] - before[0]
        self.vrf_cache_hits = after[1] - before[1]
        self.sig_verifications = after[2] - before[2]
        self.sig_cache_hits = after[3] - before[3]

    def record_send(self, envelope: Envelope) -> None:
        words = envelope.payload.words()
        kind = type(envelope.payload).__name__
        self.words_total += words
        self.messages_sent_total += 1
        if envelope.sender_correct:
            self.words_correct += words
            self.messages_sent_correct += 1
            self.words_by_kind[kind] += words
            self.messages_by_kind[kind] += 1

    def record_delivery(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
