"""Run metrics: word complexity and causal time, per the paper's definitions.

* **Word complexity** (Section 2): the total number of words sent by
  *correct* processes; a word holds a signature, a VRF output, or a
  constant-size value.  Each message self-reports its size via
  ``Message.words()``.
* **Running time**: the longest causally-related message chain until all
  correct processes decide.  The kernel threads a causal depth through
  every envelope; the duration is the maximum decision depth.

Message counts and per-kind breakdowns are also kept -- they make the
complexity benches' output auditable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import Envelope

__all__ = ["MetricsRecorder"]


@dataclass
class MetricsRecorder:
    """Mutable accumulator the kernel writes into during a run."""

    words_correct: int = 0
    words_total: int = 0
    messages_sent_correct: int = 0
    messages_sent_total: int = 0
    messages_delivered: int = 0
    words_by_kind: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)

    def record_send(self, envelope: Envelope) -> None:
        words = envelope.payload.words()
        kind = type(envelope.payload).__name__
        self.words_total += words
        self.messages_sent_total += 1
        if envelope.sender_correct:
            self.words_correct += words
            self.messages_sent_correct += 1
            self.words_by_kind[kind] += words
            self.messages_by_kind[kind] += 1

    def record_delivery(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
