"""The adversary: message scheduling plus adaptive corruption.

All asynchrony in the simulator is adversarial -- the scheduler picks which
in-flight message is delivered next.  The delayed-adaptive restriction of
Definition 2.1 (contents of a concurrent correct message may not influence
scheduling) is enforced *mechanically*: content-oblivious schedulers only
ever see :class:`~repro.sim.messages.EnvelopeView` metadata.  They are
strictly weaker than the definition allows, which preserves the paper's
guarantees; :class:`ContentAwareMinWithholdScheduler` is deliberately
*stronger* than allowed and exists solely for the E6 ablation that shows
why the restriction is necessary.

Corruption strategies decide *who* gets corrupted and *when*; the kernel
enforces the budget of ``f`` corruptions and the no-front-running rule
(messages already submitted by a process before its corruption are
delivered unchanged).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable

from repro.sim.byzantine import ByzantineBehavior, SilentBehavior
from repro.sim.messages import EnvelopeView

if TYPE_CHECKING:
    from repro.sim.network import SchedulerPool

__all__ = [
    "AdaptiveFirstSpeakersCorruption",
    "CommitteeTargetingCorruption",
    "Adversary",
    "ContentAwareMinWithholdScheduler",
    "CorruptionStrategy",
    "DelayBoundedScheduler",
    "FIFOScheduler",
    "PartitionScheduler",
    "RandomScheduler",
    "ReplayScheduler",
    "Scheduler",
    "ScriptedScheduleError",
    "ScriptedScheduler",
    "StaticCorruption",
    "TargetedDelayScheduler",
]


class _IndexedSet:
    """A set supporting O(1) add/discard and O(1) uniform random choice."""

    def __init__(self) -> None:
        self._items: list[int] = []
        self._positions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._positions

    def add(self, item: int) -> None:
        if item not in self._positions:
            self._positions[item] = len(self._items)
            self._items.append(item)

    def discard(self, item: int) -> None:
        position = self._positions.pop(item, None)
        if position is None:
            return
        last = self._items.pop()
        if position < len(self._items):
            self._items[position] = last
            self._positions[last] = position

    def choose(self, rng: random.Random) -> int:
        return self._items[rng.randrange(len(self._items))]


class Scheduler:
    """Chooses the next message to deliver.

    ``content_aware`` declares whether the scheduler may read payloads; the
    pool refuses payload access to schedulers that do not set it, so a
    scheduler cannot *accidentally* break the delayed-adaptive model.

    ``wants_view`` declares whether :meth:`on_submit` reads its ``view``
    argument.  Schedulers whose submission bookkeeping is seq-only (FIFO,
    delay-bounded) set it False and the kernel skips building the
    per-submission :class:`EnvelopeView` -- measurable at n>=1000 where
    submissions outnumber deliveries' other overheads.
    """

    content_aware = False
    wants_view = True

    def on_submit(self, seq: int, view: EnvelopeView | None) -> None:
        """Hook: a new message entered the network.

        ``view`` is ``None`` when the scheduler declared
        ``wants_view = False``.
        """

    def on_submit_range(self, start: int, stop: int) -> None:
        """Hook: seqs ``start..stop-1`` entered the network, in order.

        Equivalent to ``on_submit(seq, None)`` per seq; the kernel uses it
        for broadcasts (one call per message instead of one per copy) and
        only when ``wants_view`` is False.  Schedulers may override it with
        a bulk insert; the override must leave the scheduler in exactly
        the state the per-seq calls would (including RNG draws, in seq
        order).
        """
        on_submit = self.on_submit
        for seq in range(start, stop):
            on_submit(seq, None)

    def on_delivered(self, seq: int) -> None:
        """Hook: a message left the network."""

    def choose(self, pool: "SchedulerPool") -> int:
        """Return the ``seq`` of the message to deliver next."""
        raise NotImplementedError

    def drain(self, pool: "SchedulerPool", limit: int) -> list[int] | None:
        """Return a batch of seqs committed for delivery, oldest first.

        The batched-kernel contract: the returned list must be **exactly**
        the sequence of seqs that ``limit`` consecutive
        ``choose``/``on_delivered`` cycles would have produced, *no matter
        what messages are submitted between those deliveries*.  A scheduler
        can only promise that when its future choices are insensitive to
        future submissions over the batch -- FIFO (new seqs sort after
        every drained seq) and bounded-delay schedules (ranks of future
        submissions are bounded below) qualify; a uniformly random
        scheduler does not, because each submission reweights every
        subsequent draw.

        Drained seqs leave the scheduler's bookkeeping immediately: the
        kernel does **not** call :meth:`on_delivered` for them.  The kernel
        delivers the batch as a prefix -- it abandons the remainder only
        when the run terminates mid-batch (stop condition or delivery
        budget), in which case the scheduler is never consulted again.

        Return ``None`` (the default) to decline; the kernel falls back to
        the classic one-``choose``-per-delivery step.
        """
        return None


class RandomScheduler(Scheduler):
    """Uniformly random delivery order -- the baseline oblivious adversary."""

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random()

    def choose(self, pool: "SchedulerPool") -> int:
        return pool.random_seq(self.rng)


class FIFOScheduler(Scheduler):
    """Delivers messages in submission order (a synchronous-looking run).

    Useful as a best-case debugging schedule; it is of course also a legal
    asynchronous adversary.  Supports batched drain: seqs are assigned
    monotonically, so every message submitted *during* a batch sorts after
    every message drained *into* it -- consecutive ``choose`` calls would
    return exactly the drained prefix.
    """

    wants_view = False

    def __init__(self) -> None:
        # The kernel assigns seqs monotonically, so submission order IS
        # ascending seq order: a deque (O(1) at both ends) replaces the
        # heap with identical delivery order.
        self._queue: deque[int] = deque()
        self._delivered: set[int] = set()

    def on_submit(self, seq: int, view: EnvelopeView | None) -> None:
        self._queue.append(seq)

    def on_submit_range(self, start: int, stop: int) -> None:
        self._queue.extend(range(start, stop))

    def on_delivered(self, seq: int) -> None:
        self._delivered.add(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        queue = self._queue
        delivered = self._delivered
        while queue and queue[0] in delivered:
            delivered.discard(queue.popleft())
        return queue[0]

    def drain(self, pool: "SchedulerPool", limit: int) -> list[int] | None:
        queue = self._queue
        delivered = self._delivered
        popleft = queue.popleft
        batch: list[int] = []
        append = batch.append
        while queue and len(batch) < limit:
            seq = popleft()
            if seq in delivered:
                delivered.discard(seq)
            else:
                append(seq)
        return batch or None


class DelayBoundedScheduler(Scheduler):
    """Random reordering with a bounded per-message delay.

    Each submission draws an integer jitter in ``[0, max_delay]`` and is
    delivered in order of ``rank = seq + jitter`` (ties by seq) -- every
    message overtakes at most ``max_delay`` later submissions, the classic
    bounded-asynchrony schedule.  ``max_delay=0`` degenerates to FIFO.

    Supports batched drain: a message submitted in the future has
    ``rank >= next unseen seq``, so every in-flight entry ranked below
    that bound is already committed -- no future submission can preempt
    it.  That makes this the canonical *randomised* schedule the batched
    kernel can exploit at n>=1000.
    """

    wants_view = False

    def __init__(self, max_delay: int = 64, rng: random.Random | None = None) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.max_delay = max_delay
        self.rng = rng or random.Random()
        self._heap: list[tuple[int, int]] = []
        self._delivered: set[int] = set()
        self._next_seq_bound = 0

    def on_submit(self, seq: int, view: EnvelopeView | None) -> None:
        if seq >= self._next_seq_bound:
            self._next_seq_bound = seq + 1
        heapq.heappush(self._heap, (seq + self.rng.randint(0, self.max_delay), seq))

    def on_submit_range(self, start: int, stop: int) -> None:
        # Same state and RNG draws as per-seq on_submit, in seq order.
        if stop > self._next_seq_bound:
            self._next_seq_bound = stop
        heap = self._heap
        push = heapq.heappush
        randint = self.rng.randint
        max_delay = self.max_delay
        for seq in range(start, stop):
            push(heap, (seq + randint(0, max_delay), seq))

    def on_delivered(self, seq: int) -> None:
        self._delivered.add(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        while self._heap and self._heap[0][1] in self._delivered:
            self._delivered.discard(heapq.heappop(self._heap)[1])
        return self._heap[0][1]

    def drain(self, pool: "SchedulerPool", limit: int) -> list[int] | None:
        heap = self._heap
        delivered = self._delivered
        bound = self._next_seq_bound
        pop = heapq.heappop
        batch: list[int] = []
        while heap and len(batch) < limit and heap[0][0] < bound:
            seq = pop(heap)[1]
            if seq in delivered:
                delivered.discard(seq)
            else:
                batch.append(seq)
        return batch or None


class TargetedDelayScheduler(Scheduler):
    """Starves a fixed set of processes: messages to or from the targets are
    delivered only when nothing else is in flight.

    Target selection is content-oblivious (by pid), so this is a legal
    delayed-adaptive adversary; it stresses quorum liveness by simulating
    very slow links around the targets.
    """

    def __init__(self, targets: Iterable[int], rng: random.Random | None = None) -> None:
        self.targets = frozenset(targets)
        self.rng = rng or random.Random()
        self._normal = _IndexedSet()
        self._delayed = _IndexedSet()

    def on_submit(self, seq: int, view: EnvelopeView) -> None:
        if view.sender in self.targets or view.dest in self.targets:
            self._delayed.add(seq)
        else:
            self._normal.add(seq)

    def on_delivered(self, seq: int) -> None:
        self._normal.discard(seq)
        self._delayed.discard(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        bucket = self._normal if len(self._normal) else self._delayed
        return bucket.choose(self.rng)


class ScriptedScheduleError(RuntimeError):
    """A scripted schedule named a seq that cannot be delivered.

    Raised with the offending seq and its script position, instead of the
    bare ``KeyError``/``IndexError`` the kernel pool would produce --
    hand-written schedules get a diagnosable failure naming the exact
    script step that went wrong.
    """


class ScriptedScheduler(Scheduler):
    """Delivery order driven by an explicit choice sequence.

    In the default *index* mode, ``choices[i] mod |pool|`` indexes the
    in-flight set at step i; when the script runs out, a deterministic
    fallback (index 0) applies.  Content-oblivious and therefore a legal
    delayed-adaptive adversary.

    Built for property-based testing: hypothesis supplies the choice list
    and *shrinks it* on failure, turning "some schedule breaks the
    protocol" into a minimal counterexample schedule.

    Pass ``seqs=[...]`` instead for *seq* mode: each script step names
    the exact message seq to deliver.  A step naming a seq that was never
    submitted, or one that was already delivered, raises
    :class:`ScriptedScheduleError` describing the seq and the script
    position (previously these surfaced as a bare ``KeyError`` out of the
    kernel's in-flight map); after the script runs out, the index-0
    fallback applies.
    """

    wants_view = False

    def __init__(
        self,
        choices: Iterable[int] | None = None,
        *,
        seqs: Iterable[int] | None = None,
    ) -> None:
        if choices is not None and seqs is not None:
            raise ValueError("pass either index choices or exact seqs, not both")
        self._choices = list(choices) if choices is not None else None
        self._seqs = list(seqs) if seqs is not None else None
        self._position = 0
        self._submitted: set[int] = set()
        self._delivered: set[int] = set()

    def on_submit(self, seq: int, view: EnvelopeView | None) -> None:
        self._submitted.add(seq)

    def on_submit_range(self, start: int, stop: int) -> None:
        self._submitted.update(range(start, stop))

    def on_delivered(self, seq: int) -> None:
        self._delivered.add(seq)

    def _choose_seq(self, pool: "SchedulerPool") -> int:
        if self._position >= len(self._seqs):
            return pool.seq_at(0)
        position = self._position
        seq = self._seqs[position]
        self._position += 1
        if seq in self._delivered:
            raise ScriptedScheduleError(
                f"script step {position} names seq {seq}, which was already "
                "delivered"
            )
        if seq not in self._submitted:
            raise ScriptedScheduleError(
                f"script step {position} names seq {seq}, which was never "
                f"submitted (highest submitted seq so far: "
                f"{max(self._submitted) if self._submitted else 'none'})"
            )
        return seq

    def choose(self, pool: "SchedulerPool") -> int:
        if self._seqs is not None:
            return self._choose_seq(pool)
        if self._choices is not None and self._position < len(self._choices):
            index = self._choices[self._position] % len(pool)
            self._position += 1
        else:
            index = 0
        return pool.seq_at(index)


class ReplayScheduler(Scheduler):
    """Re-executes a recorded schedule exactly.

    Takes the ``(sender, dest)`` delivery order of a previous run (from
    :meth:`repro.sim.trace.TraceRecorder.delivery_order` or a flight
    recording) and delivers the in-flight message matching each pair in
    turn.  Valid only when the replayed run is byte-identical up to
    scheduling (same protocol code, keys and seed); raises loudly when
    the schedule diverges.

    Link-level replay delivers each link's messages in submission order.
    That reproduces any FIFO-per-link schedule, but the random scheduler
    may deliver a link's *second* in-flight message first -- pass the
    recorded ``seqs`` (message sequence numbers, e.g.
    :meth:`repro.sim.flightrecorder.FlightRecorder.delivery_seqs`) for a
    seq-exact replay that reproduces the original event log bit for bit.
    """

    def __init__(
        self,
        order: Iterable[tuple[int, int]],
        seqs: Iterable[int] | None = None,
    ) -> None:
        self._order = list(order)
        self._seqs = None if seqs is None else list(seqs)
        if self._seqs is not None and len(self._seqs) != len(self._order):
            raise ValueError("seqs and order must describe the same deliveries")
        self._position = 0
        # (sender, dest) -> FIFO of in-flight seqs on that link.  Per-link
        # FIFO matches the kernel's per-link submission order.
        self._links: dict[tuple[int, int], list[int]] = {}

    def on_submit(self, seq: int, view: EnvelopeView) -> None:
        self._links.setdefault((view.sender, view.dest), []).append(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        if self._position >= len(self._order):
            raise RuntimeError(
                "replay schedule exhausted but messages remain in flight; "
                "the run being replayed diverged from the recording"
            )
        link = self._order[self._position]
        queue = self._links.get(link)
        if not queue:
            raise RuntimeError(
                f"replay schedule expects a message on link {link} but none "
                "is in flight; the run diverged from the recording"
            )
        if self._seqs is None:
            seq = queue.pop(0)
        else:
            seq = self._seqs[self._position]
            try:
                queue.remove(seq)
            except ValueError:
                raise RuntimeError(
                    f"replay schedule expects message #{seq} on link {link} "
                    "but it is not in flight; the run diverged from the "
                    "recording"
                ) from None
        self._position += 1
        return seq


class PartitionScheduler(Scheduler):
    """Temporarily partitions the network into two halves.

    Messages crossing the cut are withheld until ``heal_after`` intra-
    partition deliveries have happened, then everything mixes randomly.
    A legal delayed-adaptive adversary (the cut is chosen by pid, and
    nothing is ever dropped): asynchronous protocols must tolerate any
    finite partition, which is exactly what the liveness tests use this
    for.  Note a partition smaller than a quorum simply stalls until the
    heal -- that is the expected behaviour, not a bug.
    """

    def __init__(
        self,
        group_a: Iterable[int],
        heal_after: int,
        rng: random.Random | None = None,
    ) -> None:
        self.group_a = frozenset(group_a)
        self.heal_after = heal_after
        self.rng = rng or random.Random()
        self._delivered = 0
        self._intra = _IndexedSet()
        self._cross = _IndexedSet()

    @property
    def healed(self) -> bool:
        return self._delivered >= self.heal_after

    def on_submit(self, seq: int, view: EnvelopeView) -> None:
        crosses = (view.sender in self.group_a) != (view.dest in self.group_a)
        if crosses and not self.healed:
            self._cross.add(seq)
        else:
            self._intra.add(seq)

    def on_delivered(self, seq: int) -> None:
        self._delivered += 1
        self._intra.discard(seq)
        self._cross.discard(seq)

    def _merge_after_heal(self) -> None:
        # Messages withheld during the partition must rejoin the common
        # pool, otherwise a protocol that keeps generating traffic (BA
        # loops rounds forever) would starve them indefinitely -- a
        # reliable-link violation in effect.
        for seq in list(self._cross._items):
            self._cross.discard(seq)
            self._intra.add(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        if self.healed:
            if len(self._cross):
                self._merge_after_heal()
            return self._intra.choose(self.rng)
        if not len(self._intra):
            # A side has drained: deliver a withheld message (the model
            # only lets the adversary reorder, never block forever).
            return self._cross.choose(self.rng)
        return self._intra.choose(self.rng)


class ContentAwareMinWithholdScheduler(Scheduler):
    """ABLATION ONLY -- violates the delayed-adaptive model.

    Reads coin-message payloads and withholds the messages carrying the
    smallest VRF values so that the global minimum never becomes *common*
    (received by enough correct processes), then starves the processes that
    did see it.  Against Algorithm 1 this visibly collapses the coin's
    success rate, demonstrating why the paper's adversary restriction is
    load-bearing (experiment E6).

    The attack keys on any payload exposing an integer ``value`` attribute
    above 1 (the coin's FIRST/SECOND messages do: VRF values are 256-bit).
    Every message carrying the smallest value observed so far -- the
    origin's FIRST *and* every SECOND relaying the minimum -- is delivered
    only when nothing else is in flight.  Quorums therefore fill without
    the minimum wherever the spare senders allow it, while the minimum's
    owner itself outputs the true minimum's bit: disagreement in roughly
    half the runs.

    Note the attack needs scheduling slack: if f processes are also
    *silent*, every correct sender is quorum-critical and withholding
    degenerates to reordering (the E6 bench shows both regimes).
    """

    content_aware = True

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random()
        self._normal = _IndexedSet()
        self._withheld = _IndexedSet()
        self._values: dict[int, int] = {}
        self._min_value: int | None = None

    def _classify(self, seq: int) -> None:
        withhold = (
            self._min_value is not None
            and self._values.get(seq) == self._min_value
        )
        if withhold:
            self._normal.discard(seq)
            self._withheld.add(seq)
        else:
            self._withheld.discard(seq)
            self._normal.add(seq)

    def on_submit(self, seq: int, view: EnvelopeView) -> None:
        # Payload inspection happens in inspect_payload (called by the pool
        # because we declared content_aware); until then treat as normal.
        self._normal.add(seq)

    def inspect_payload(self, seq: int, payload: object, sender: int) -> None:
        value = getattr(payload, "value", None)
        # Ignore tiny values: protocol-control fields (estimates, aux bits)
        # also surface a .value; the coin's 256-bit outputs never collide
        # with them.
        if not isinstance(value, int) or value <= 1:
            return
        self._values[seq] = value
        if self._min_value is None or value < self._min_value:
            self._min_value = value
            # Reclassify everything currently believed normal.
            for known_seq in list(self._values):
                self._classify(known_seq)
        else:
            self._classify(seq)

    def on_delivered(self, seq: int) -> None:
        self._values.pop(seq, None)
        self._normal.discard(seq)
        self._withheld.discard(seq)

    def choose(self, pool: "SchedulerPool") -> int:
        bucket = self._normal if len(self._normal) else self._withheld
        return bucket.choose(self.rng)


class CorruptionStrategy:
    """Decides which processes to corrupt and when (budget enforced by kernel)."""

    def initial_corruptions(self, n: int, f: int) -> set[int]:
        """Processes corrupted before the run starts."""
        return set()

    def on_delivery(self, view: EnvelopeView, corrupted: frozenset[int]) -> set[int]:
        """Additional corruptions requested after observing a delivery.

        Receives only the metadata view -- adaptive corruption is allowed
        by the model, predicting VRF outputs is not.
        """
        return set()


class StaticCorruption(CorruptionStrategy):
    """Corrupts a fixed pid set at time zero (the standard experiment setup)."""

    def __init__(self, pids: Iterable[int]) -> None:
        self.pids = set(pids)

    def initial_corruptions(self, n: int, f: int) -> set[int]:
        return set(self.pids)


class AdaptiveFirstSpeakersCorruption(CorruptionStrategy):
    """Corrupts the first ``f`` distinct senders it observes.

    A legal delayed-adaptive strategy: it reacts to *who spoke*, not to
    message contents.  Because corruption cannot remove messages already
    sent (no after-the-fact removal), this attack is provably weak against
    the coin -- tests use it to confirm exactly that.
    """

    def on_delivery(self, view: EnvelopeView, corrupted: frozenset[int]) -> set[int]:
        if view.sender in corrupted:
            return set()
        return {view.sender}


class CommitteeTargetingCorruption(CorruptionStrategy):
    """Corrupts committee members the moment their membership is revealed.

    A legal delayed-adaptive strategy: committee membership only becomes
    observable when a member's message appears on the wire (metadata kind
    is enough -- no payload access).  The paper's *process replaceability*
    argument says this is futile: a correct committee member broadcasts at
    most one message per role, so by the time the adversary can react, the
    contribution it wanted to suppress is already in flight and cannot be
    removed.  Tests and the E8 grid confirm protocols survive it.
    """

    def __init__(self, message_kinds: Iterable[str] = ("FirstMsg", "SecondMsg",
                                                       "InitMsg", "EchoMsg", "OkMsg")) -> None:
        self.message_kinds = frozenset(message_kinds)

    def on_delivery(self, view: EnvelopeView, corrupted: frozenset[int]) -> set[int]:
        if view.kind in self.message_kinds and view.sender not in corrupted:
            return {view.sender}
        return set()


class Adversary:
    """Scheduler + corruption strategy + behaviour for corrupted processes."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        corruption: CorruptionStrategy | None = None,
        behavior_factory: Callable[[int], ByzantineBehavior] | None = None,
    ) -> None:
        self.scheduler = scheduler or RandomScheduler()
        self.corruption = corruption or CorruptionStrategy()
        self.behavior_factory = behavior_factory or (lambda pid: SilentBehavior())
