"""Delta-debugging recorded schedules under seq-exact replay.

A flight recording plus :class:`~repro.sim.adversary.ReplayScheduler`
makes any failure that is a function of the schedule *reproducible*:
re-running the same ``(sender, dest)`` order with the same envelope
seqs reproduces the event log bit for bit.  That turns counterexample
minimization into a search over schedules:

* :func:`minimal_prefix` binary-searches the shortest delivery prefix
  that still reproduces the failure (sound because a seq-exact prefix
  replay is *identical* to the original run up to its last delivery, so
  "the failure has happened by delivery k" is monotone in k).
* :func:`ddmin_deliveries` then delta-debugs *within* the prefix: it
  greedily drops delivery chunks whose absence still reproduces the
  failure.  A dropped delivery is a message the adversary delays past
  the end of the run -- a legal asynchronous schedule -- so what
  survives is the set of delay sites that actually *matter*.  Candidate
  schedules that make the protocol diverge from the recording (the
  replay scheduler raises ``RuntimeError``) simply don't reproduce.
* :func:`minimize_schedule` composes both into a
  :class:`MinimizationResult`.

The caller supplies ``reproduce(order, seqs) -> bool``: re-run the
scenario under ``ReplayScheduler(order, seqs=seqs)`` with
``max_deliveries=len(order)`` (the kernel checks the cap *before*
asking the scheduler, so a prefix run ends cleanly) and report whether
the failure -- a monitor violation, a decision mismatch, an equivalence
break -- recurred.  :mod:`repro.experiments.forensics` builds that
callable from a recording; everything here is schedule arithmetic, far
from the kernel hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "MinimizationResult",
    "ddmin_deliveries",
    "minimal_prefix",
    "minimize_schedule",
]

# reproduce(order, seqs) -> did the failure recur under this schedule?
ReproduceFn = Callable[[Sequence[tuple[int, int]], Sequence[int]], bool]


@dataclass(frozen=True)
class MinimizationResult:
    """A shrunk schedule that still reproduces the original failure."""

    original: int                       # deliveries in the recorded schedule
    prefix: int                         # minimal reproducing prefix length
    order: tuple[tuple[int, int], ...]  # the minimal schedule (links)
    seqs: tuple[int, ...]               # its envelope seqs (replay-exact)
    dropped: tuple[int, ...]            # prefix seqs delayed past the end
    tests: int                          # reproduce() calls spent

    @property
    def deliveries(self) -> int:
        return len(self.order)

    def describe(self) -> str:
        return (
            f"minimized {self.original} deliveries -> prefix {self.prefix} "
            f"-> {self.deliveries} essential "
            f"({len(self.dropped)} delayed, {self.tests} replays)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "original_deliveries": self.original,
            "minimal_prefix": self.prefix,
            "deliveries": self.deliveries,
            "order": [list(link) for link in self.order],
            "seqs": list(self.seqs),
            "dropped_seqs": list(self.dropped),
            "tests": self.tests,
            "describe": self.describe(),
        }


class _Counted:
    """Wrap a reproduce callable, counting invocations."""

    def __init__(self, reproduce: ReproduceFn) -> None:
        self._reproduce = reproduce
        self.tests = 0

    def __call__(
        self, order: Sequence[tuple[int, int]], seqs: Sequence[int]
    ) -> bool:
        self.tests += 1
        return bool(self._reproduce(order, seqs))


def minimal_prefix(
    reproduce: ReproduceFn,
    order: Sequence[tuple[int, int]],
    seqs: Sequence[int],
) -> int:
    """The shortest k such that ``reproduce(order[:k], seqs[:k])``.

    Requires the full schedule to reproduce (raises ``ValueError``
    otherwise -- a failure that does not recur under seq-exact replay of
    its own recording is not schedule-determined and cannot be shrunk).
    Binary search is sound because prefix replays are identical to the
    original run up to their cap, so reproduction is monotone in k.
    """
    if len(order) != len(seqs):
        raise ValueError("order and seqs must describe the same deliveries")
    if not reproduce(order, seqs):
        raise ValueError(
            "failure does not reproduce under seq-exact replay of the full "
            "schedule; nothing to minimize"
        )
    low, high = 0, len(order)
    while low < high:
        mid = (low + high) // 2
        if reproduce(order[:mid], seqs[:mid]):
            high = mid
        else:
            low = mid + 1
    return high


def ddmin_deliveries(
    reproduce: ReproduceFn,
    order: Sequence[tuple[int, int]],
    seqs: Sequence[int],
    max_tests: int | None = None,
) -> list[int]:
    """Greedy delta debugging over the delivery set (Zeller's ddmin).

    Returns the (sorted) indices into ``order``/``seqs`` of the
    deliveries that survive complement reduction: every attempt to drop
    any single remaining delivery stops reproducing the failure.
    Assumes the full index set reproduces (callers establish that).

    ``max_tests`` caps the number of ``reproduce`` calls spent in this
    phase; on exhaustion the current (reproducing, possibly non-minimal)
    index set is returned.  Batch minimizers -- the fuzzer shrinks every
    counterexample it finds -- use it to bound per-candidate work.
    """
    current = list(range(len(order)))
    spent = 0

    def test(indices: list[int]) -> bool:
        nonlocal spent
        spent += 1
        return reproduce(
            [order[i] for i in indices], [seqs[i] for i in indices]
        )

    chunks = 2
    while len(current) >= 2:
        if max_tests is not None and spent >= max_tests:
            break
        chunk = max(1, -(-len(current) // chunks))  # ceil division
        reduced = False
        for start in range(0, len(current), chunk):
            complement = current[:start] + current[start + chunk:]
            if complement and test(complement):
                current = complement
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break  # 1-minimal: no single delivery is droppable
            chunks = min(len(current), chunks * 2)
    if len(current) == 1 and test([]):
        current = []
    return current


def minimize_schedule(
    reproduce: ReproduceFn,
    order: Sequence[tuple[int, int]],
    seqs: Sequence[int],
    prefix_only: bool = False,
    max_tests: int | None = None,
) -> MinimizationResult:
    """Shrink a recorded schedule to the deliveries that matter.

    Phase 1 truncates (:func:`minimal_prefix`); phase 2 delta-debugs
    within the prefix (:func:`ddmin_deliveries`) unless ``prefix_only``.
    The returned schedule is verified reproducing by construction: every
    accepted candidate passed ``reproduce``.  ``max_tests`` bounds the
    ddmin phase's replay budget (the prefix search is O(log n) and always
    runs); the result is then reproducing but possibly non-minimal.
    """
    counted = _Counted(reproduce)
    prefix = minimal_prefix(counted, order, seqs)
    kept = list(range(prefix))
    if not prefix_only and prefix:
        kept = ddmin_deliveries(
            counted, order[:prefix], seqs[:prefix], max_tests=max_tests
        )
    return MinimizationResult(
        original=len(order),
        prefix=prefix,
        order=tuple(order[i] for i in kept),
        seqs=tuple(seqs[i] for i in kept),
        dropped=tuple(seqs[i] for i in range(prefix) if i not in set(kept)),
        tests=counted.tests,
    )
