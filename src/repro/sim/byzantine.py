"""Byzantine behaviours.

A corrupted process is driven by a :class:`ByzantineBehavior` instead of a
protocol generator.  Behaviours receive the corrupted process's context --
i.e. its private keys, mailbox and links -- which models the adversary's
"full access to corrupted processes' private data" (Definition 2.1).  They
may send arbitrary :class:`~repro.sim.messages.Message` objects; they
cannot forge other processes' VRF outputs or signatures because they never
hold those keys.

Protocol-specific attacks (approver equivocation, coin withholding, ...)
are built on :class:`ScriptedBehavior` in the protocol test modules; the
generic behaviours here cover the crash/silent spectrum every experiment
needs.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.messages import Envelope
from repro.sim.process import ProcessContext

__all__ = [
    "ByzantineBehavior",
    "CrashBehavior",
    "ScriptedBehavior",
    "SilentBehavior",
]


class ByzantineBehavior:
    """Base behaviour: hooks invoked by the kernel."""

    def on_start(self, ctx: ProcessContext) -> None:
        """Called once when the run starts (or never, if corrupted later)."""

    def on_corrupt(self, ctx: ProcessContext) -> None:
        """Called when an initially-correct process is adaptively corrupted."""

    def on_deliver(self, ctx: ProcessContext, envelope: Envelope) -> None:
        """Called for every message delivered to the corrupted process."""


class SilentBehavior(ByzantineBehavior):
    """Sends nothing, ever -- the maximal omission failure."""


class CrashBehavior(ByzantineBehavior):
    """Alias of :class:`SilentBehavior` for corrupt-at-start crash faults.

    When installed via adaptive corruption it models a crash at the
    corruption point: everything sent before corruption stands (no
    after-the-fact removal), nothing is sent afterwards.
    """


class ScriptedBehavior(ByzantineBehavior):
    """Behaviour assembled from plain callables, for protocol-aware attacks.

    Parameters are optional callbacks with the same signatures as the base
    hooks.  Example -- an approver equivocator that inits both values::

        ScriptedBehavior(on_start=lambda ctx: (
            ctx.broadcast(InitMsg(instance, value=0, ...)),
            ctx.broadcast(InitMsg(instance, value=1, ...)),
        ))
    """

    def __init__(
        self,
        on_start: Callable[[ProcessContext], None] | None = None,
        on_corrupt: Callable[[ProcessContext], None] | None = None,
        on_deliver: Callable[[ProcessContext, Envelope], None] | None = None,
    ) -> None:
        self._on_start = on_start
        self._on_corrupt = on_corrupt
        self._on_deliver = on_deliver

    def on_start(self, ctx: ProcessContext) -> None:
        if self._on_start is not None:
            self._on_start(ctx)

    def on_corrupt(self, ctx: ProcessContext) -> None:
        if self._on_corrupt is not None:
            self._on_corrupt(ctx)

    def on_deliver(self, ctx: ProcessContext, envelope: Envelope) -> None:
        if self._on_deliver is not None:
            self._on_deliver(ctx, envelope)
