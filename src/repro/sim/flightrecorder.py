"""The flight recorder: persistable kernel-event logs and their analyses.

A :class:`FlightRecorder` is an event-bus subscriber that keeps every
kernel event of a run (with live payload references stripped, so the log
stays valid after the run).  :func:`save_recording` /
:func:`load_recording` move a recording through the schema-versioned
JSONL format -- one header line, one line per event, one summary footer
-- via :mod:`repro.experiments.store`.  :func:`critical_path` walks a
recorded event log back from the deepest decision along the causal
depth chain, recovering the message sequence whose length *is* the run's
running time (paper Section 2's longest causally-related chain).

The recorder is also the replay bridge: :meth:`FlightRecorder.delivery_order`
feeds :class:`repro.sim.adversary.ReplayScheduler`, so any recording can
be re-executed delivery-for-delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.sim.events import (
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    DecideEvent,
    DeliverEvent,
    KernelEvent,
    SendEvent,
    event_from_record,
    event_to_record,
)

if TYPE_CHECKING:
    from repro.sim.network import Simulation
    from repro.sim.runner import RunResult

__all__ = [
    "FlightRecorder",
    "Recording",
    "causal_chain",
    "critical_path",
    "load_recording",
    "save_recording",
]


class FlightRecorder:
    """Collects every kernel event of a run, ready to persist or analyse.

    Subscribe with :meth:`attach` (or pass ``subscribers=[recorder.on_event]``
    to :func:`repro.sim.runner.run_protocol`).  Deliver events are stored
    with the live payload reference dropped -- only the immutable
    :class:`~repro.sim.events.PayloadSummary` survives -- so holding a
    recording never pins or aliases protocol message objects.
    """

    def __init__(self) -> None:
        self.events: list[KernelEvent] = []

    def on_event(self, event: KernelEvent) -> None:
        if type(event) is DeliverEvent and event.payload is not None:
            event = replace(event, payload=None)
        self.events.append(event)

    def attach(self, simulation: "Simulation") -> "FlightRecorder":
        """Subscribe to ``simulation``'s event bus; returns self."""
        simulation.events.subscribe(self.on_event)
        return self

    def delivery_order(self) -> list[tuple[int, int]]:
        """The run's ``(sender, dest)`` delivery schedule, replay-ready."""
        return _delivery_order(self.events)

    def delivery_seqs(self) -> list[int]:
        """The run's delivered message sequence numbers, in order."""
        return _delivery_seqs(self.events)

    def replay_scheduler(self):
        """A seq-exact :class:`~repro.sim.adversary.ReplayScheduler`."""
        return _replay_scheduler(self.events)


@dataclass(frozen=True)
class Recording:
    """A loaded flight recording: run header, typed events, summary."""

    header: dict[str, Any]
    events: tuple[KernelEvent, ...]
    summary: dict[str, Any]

    def delivery_order(self) -> list[tuple[int, int]]:
        return _delivery_order(self.events)

    def delivery_seqs(self) -> list[int]:
        return _delivery_seqs(self.events)

    def replay_scheduler(self):
        """A seq-exact :class:`~repro.sim.adversary.ReplayScheduler`."""
        return _replay_scheduler(self.events)


def _delivery_order(events) -> list[tuple[int, int]]:
    return [
        (event.sender, event.dest)
        for event in events
        if type(event) is DeliverEvent
    ]


def _delivery_seqs(events) -> list[int]:
    return [event.seq for event in events if type(event) is DeliverEvent]


def _replay_scheduler(events):
    from repro.sim.adversary import ReplayScheduler

    return ReplayScheduler(_delivery_order(events), seqs=_delivery_seqs(events))


def save_recording(
    path: str | Path,
    recorder: FlightRecorder,
    result: "RunResult",
    protocol: str | None = None,
) -> Path:
    """Write a run's flight recording to ``path`` as schema-versioned JSONL.

    Line 1 is the header (schema name/version and run identity), then one
    line per event, then a ``summary`` footer carrying the persisted
    metrics (timings included -- a recording documents one concrete run)
    and the protocol rollups, so reports render without re-execution.

    ``protocol`` names the protocol/scenario registry entry the run came
    from (``make_runner``/``make_scenario``); recordings that carry it
    can be re-executed by ``python -m repro explain`` without the caller
    remembering how the run was built.
    """
    from repro.experiments.store import save_jsonl

    header = {
        "k": "header",
        "schema": EVENT_SCHEMA,
        "version": EVENT_SCHEMA_VERSION,
        "n": result.n,
        "f": result.f,
        "seed": result.seed,
        "corrupted": sorted(result.corrupted),
    }
    if protocol is not None:
        header["protocol"] = protocol
    summary = {
        "k": "summary",
        "deliveries": result.deliveries,
        "duration": result.duration,
        "words": result.words,
        "live": result.live,
        "all_correct_decided": result.all_correct_decided,
        "decisions": {str(pid): result.decisions[pid] for pid in sorted(result.decisions)},
        "metrics": result.metrics.to_dict(),
        "protocol": result.metrics.protocol_summary(),
    }
    records = [header, *map(event_to_record, _persistable(recorder.events)), summary]
    return save_jsonl(path, records)


def _persistable(events: list[KernelEvent]) -> list[KernelEvent]:
    return [
        replace(event, payload=None)
        if type(event) is DeliverEvent and event.payload is not None
        else event
        for event in events
    ]


def load_recording(path: str | Path) -> Recording:
    """Load a :func:`save_recording` file back into typed events.

    Raises ``ValueError`` on anything that is not a complete recording of
    this build's schema -- empty file, missing header, unknown schema or
    version, a truncated line (diagnosed with its line number by the
    store), or a missing summary footer (the writer always ends with one,
    so its absence means the recording was cut short) -- so stale or
    damaged recordings fail loudly rather than misrender.
    """
    from repro.experiments.store import load_jsonl

    records = load_jsonl(path)
    if not records:
        raise ValueError(f"{path}: empty file (not a flight recording)")
    if records[0].get("k") != "header":
        raise ValueError(f"{path}: not a flight recording (no header line)")
    header = records[0]
    if header.get("schema") != EVENT_SCHEMA:
        raise ValueError(f"{path}: unknown schema {header.get('schema')!r}")
    version = header.get("version")
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {version!r}, "
            f"expected {EVENT_SCHEMA_VERSION}"
        )
    summary: dict[str, Any] = {}
    events = []
    for record in records[1:]:
        if record.get("k") == "summary":
            summary = record
            continue
        events.append(event_from_record(record, version=version))
    if not summary:
        raise ValueError(
            f"{path}: no summary footer after {len(events)} events; "
            "the recording is truncated"
        )
    return Recording(header=header, events=tuple(events), summary=summary)


def critical_path(events, target: DecideEvent | None = None) -> list[dict[str, Any]]:
    """Recover the causal chain behind a decision in ``events``.

    The kernel threads a causal depth through every envelope (depth =
    sender's depth + 1; a receiver's depth is the max over its
    deliveries), so the deepest decision sits at the end of at least one
    send->deliver chain touching every depth.  This walks that chain
    backwards: from the deciding process, find the first delivery that
    brought it to its decision depth, jump to that message's sender via
    the matching send, and repeat until depth 0.

    By default the chain ends at the deepest decision in the log (the
    run's running time); pass ``target`` to explain a specific
    :class:`DecideEvent` instead -- the conformance monitors use this to
    attach the causal slice behind a violating decision.

    Returns the chain in causal order: a ``send``/``deliver`` entry per
    hop and a final ``decide`` entry.  Empty if nothing decided.
    """
    if target is None:
        decides = [event for event in events if type(event) is DecideEvent]
        if not decides:
            return []
        deepest = max(decides, key=lambda event: (event.depth, -event.step))
    else:
        deepest = target
    chain: list[dict[str, Any]] = [
        {
            "kind": "decide",
            "step": deepest.step,
            "pid": deepest.pid,
            "value": deepest.value,
            "depth": deepest.depth,
        }
    ]
    chain += causal_chain(events, deepest.pid, deepest.depth, deepest.step)
    chain.reverse()
    return chain


def causal_chain(
    events,
    pid: int,
    depth: int,
    step: int,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Walk the causal-depth chain backwards from ``(pid, depth, step)``.

    The hop rule of :func:`critical_path`, exposed for any anchor -- the
    divergence differ (:mod:`repro.sim.diffing`) walks back from the
    first divergent event the same way the monitors walk back from a
    violating decision.  Returns alternating ``deliver``/``send``
    entries in *reverse-causal* order (the delivery that put ``pid`` at
    ``depth`` first); ``limit`` bounds the entry count so slices over
    deep runs stay readable.  Stops early on an incomplete log (e.g. a
    recording attached mid-run).
    """
    sends_by_seq: dict[int, SendEvent] = {
        event.seq: event for event in events if type(event) is SendEvent
    }
    delivers_by_dest: dict[int, list[DeliverEvent]] = {}
    for event in events:
        if type(event) is DeliverEvent:
            delivers_by_dest.setdefault(event.dest, []).append(event)

    chain: list[dict[str, Any]] = []
    while depth > 0 and (limit is None or len(chain) < limit):
        hop = next(
            (
                event
                for event in delivers_by_dest.get(pid, ())
                if event.depth == depth and event.step <= step
            ),
            None,
        )
        if hop is None:
            break  # incomplete log (e.g. recording attached mid-run)
        send = sends_by_seq.get(hop.seq)
        chain.append(
            {
                "kind": "deliver",
                "step": hop.step,
                "seq": hop.seq,
                "sender": hop.sender,
                "dest": hop.dest,
                "message_kind": hop.message_kind,
                "instance": hop.instance,
                "words": hop.words,
                "depth": hop.depth,
            }
        )
        if send is not None and (limit is None or len(chain) < limit):
            chain.append(
                {
                    "kind": "send",
                    "step": send.step,
                    "seq": send.seq,
                    "sender": send.sender,
                    "dest": send.dest,
                    "message_kind": send.message_kind,
                    "instance": send.instance,
                    "depth": send.depth,
                }
            )
        pid, depth, step = hop.sender, depth - 1, (send.step if send else hop.step)
    return chain
