"""Per-process mailbox: append-only, indexed by protocol instance.

Asynchrony means messages for a future round (or a sub-protocol the
process has not entered yet) can arrive arbitrarily early; the mailbox
buffers everything and lets each wait-condition consume its instance's
stream incrementally via a cursor, so re-evaluation after every delivery
stays O(new messages).

Reading never allocates: probing an instance that has no messages yet
returns a cheap live *view* instead of materialising (and permanently
storing) an empty buffer.  Long BA runs probe thousands of future-round
instances that may never receive a message; inserting a list per probe --
the old ``setdefault`` behaviour -- grew the mailbox without bound.  The
view honours the append-only cursor contract: it reflects messages that
arrive after it was handed out, exactly like the underlying list.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.sim.messages import Message

__all__ = ["Mailbox"]

# Shared immutable target for views of instances with no messages yet.
_EMPTY: list = []


class _InstanceStream:
    """Live read-only view of one instance's stream before any message exists.

    Delegates every access to the mailbox's current buffer for the
    instance, so a view obtained before the first delivery 'grows in
    place' once messages arrive -- identical observable behaviour to
    holding the underlying list, without creating that list on read.
    """

    __slots__ = ("_buffers", "_instance")

    def __init__(self, buffers: dict, instance: Hashable) -> None:
        self._buffers = buffers
        self._instance = instance

    def _target(self) -> list:
        return self._buffers.get(self._instance, _EMPTY)

    def __len__(self) -> int:
        return len(self._target())

    def __getitem__(self, index):
        return self._target()[index]

    def __iter__(self):
        return iter(self._target())

    def __bool__(self) -> bool:
        return bool(self._target())

    def __eq__(self, other) -> bool:
        if isinstance(other, _InstanceStream):
            other = other._target()
        return self._target() == other

    def __repr__(self) -> str:
        return repr(self._target())


class Mailbox:
    """All messages delivered to one process, grouped by instance.

    ``counts`` is the per-instance delivery counter, maintained on
    :meth:`add`: the kernel's incremental-quorum gate (``Wait.min_count``)
    reads message totals off it in O(subscribed instances) when a wait
    blocks, instead of rescanning buffered streams on every delivery.
    """

    def __init__(self) -> None:
        self._by_instance: dict[Hashable, list[tuple[int, Message]]] = {}
        self.counts: dict[Hashable, int] = {}
        self.total_delivered = 0

    def add(self, sender: int, message: Message) -> None:
        """Record a delivered message (called by the kernel only)."""
        instance = message.instance
        self._by_instance.setdefault(instance, []).append((sender, message))
        self.counts[instance] = self.counts.get(instance, 0) + 1
        self.total_delivered += 1

    def total_for(self, instances) -> int:
        """Total messages delivered across ``instances`` (O(len(instances)))."""
        counts = self.counts
        return sum(counts.get(instance, 0) for instance in instances)

    def stream(self, instance: Hashable) -> list[tuple[int, Message]]:
        """The (growing) list of ``(sender, message)`` for ``instance``.

        Callers must treat the result as append-only and read it with
        their own cursor; they must never mutate it.  Probing an instance
        with no messages yet returns a live view (see module docstring)
        rather than allocating a buffer.
        """
        existing = self._by_instance.get(instance)
        if existing is not None:
            return existing
        return _InstanceStream(self._by_instance, instance)  # type: ignore[return-value]

    def instances(self) -> Iterator[Hashable]:
        return iter(self._by_instance)

    def count(self, instance: Hashable) -> int:
        return self.counts.get(instance, 0)
