"""Per-process mailbox: append-only, indexed by protocol instance.

Asynchrony means messages for a future round (or a sub-protocol the
process has not entered yet) can arrive arbitrarily early; the mailbox
buffers everything and lets each wait-condition consume its instance's
stream incrementally via a cursor, so re-evaluation after every delivery
stays O(new messages).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.sim.messages import Message

__all__ = ["Mailbox"]


class Mailbox:
    """All messages delivered to one process, grouped by instance."""

    def __init__(self) -> None:
        self._by_instance: dict[Hashable, list[tuple[int, Message]]] = {}
        self.total_delivered = 0

    def add(self, sender: int, message: Message) -> None:
        """Record a delivered message (called by the kernel only)."""
        self._by_instance.setdefault(message.instance, []).append((sender, message))
        self.total_delivered += 1

    def stream(self, instance: Hashable) -> list[tuple[int, Message]]:
        """The (growing) list of ``(sender, message)`` for ``instance``.

        Callers must treat the list as append-only and read it with their
        own cursor; they must never mutate it.
        """
        return self._by_instance.setdefault(instance, [])

    def instances(self) -> Iterator[Hashable]:
        return iter(self._by_instance)

    def count(self, instance: Hashable) -> int:
        return len(self._by_instance.get(instance, ()))
