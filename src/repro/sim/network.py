"""The simulation kernel: reliable links, adversarial delivery, corruption.

One :class:`Simulation` models one run.  The event loop is::

    while in-flight messages remain and the stop condition is unmet:
        seq  <- adversary.scheduler.choose(pool)   # all asynchrony is here
        deliver envelope(seq) to its destination
        let the corruption strategy react (budget f, no message removal)

Correct processes are generator coroutines (see
:mod:`repro.sim.process`); corrupted ones are driven by
:class:`~repro.sim.byzantine.ByzantineBehavior` hooks.  Reliable links:
nothing is ever dropped -- the adversary only reorders.

:class:`LossyLinkConfig` relaxes the reliable-link assumption as a
documented *model extension* (per-link drop/duplicate/reorder/corrupt
rates, off by default, deterministic from the run seed).  With no config
-- or an all-zero one -- the kernel is byte-identical to the reliable
model.
"""

from __future__ import annotations

import copy
import random
import time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Mapping

from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, CorruptionStrategy, Scheduler
from repro.sim.events import (
    CorruptEvent,
    DeliverEvent,
    EventBus,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    summarize_payload,
)
from repro.sim.messages import Envelope, EnvelopeView, Message
from repro.sim.metrics import MetricsRecorder
from repro.sim.process import ProcessContext, ProtocolFactory, Wait

__all__ = [
    "EmptySchedulerPoolError",
    "LossyLinkConfig",
    "SchedulerPool",
    "Simulation",
]

DEFAULT_MAX_DELIVERIES = 2_000_000

_FATE_RATE_FIELDS = ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate")


@dataclass(frozen=True)
class LossyLinkConfig:
    """Lossy-link fault model: a documented *extension* of the paper's model.

    The paper assumes reliable asynchronous links -- the adversary may
    reorder arbitrarily but never loses a message.  This config relaxes
    that per link.  Every submitted message is assigned at most one
    *fate*, decided deterministically from the run seed and the message
    seq (so lossy runs replay bit-for-bit):

    ``drop``
        The message never enters the scheduler pool.  The sender still
        pays for it (metrics + SendEvent) -- the link ate it.  Drops can
        legitimately deadlock a protocol that the reliable model keeps
        live; that degradation is the experiment.
    ``duplicate``
        A second envelope with a fresh seq and the same payload is
        injected.  Injected duplicates do not re-roll fates and are not
        counted as protocol sends (the *network* pays, not the process).
    ``reorder``
        The message is held outside the pool until the delivery counter
        advances by a bounded amount (``reorder_hold``), then released.
        A lossy link may delay but cannot withhold forever: if the pool
        empties while messages are held, the earliest is released early.
    ``corrupt``
        The destination receives a shallow copy of the payload with one
        bit flipped in an integer field (never ``instance``).  Messages
        with no eligible field are delivered intact.

    All rates default to zero; an all-zero config leaves the kernel
    byte-identical to a run without one.  ``per_link`` maps
    ``(sender, dest)`` pairs to override configs (one level deep).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_hold: int = 16
    per_link: Mapping[tuple[int, int], "LossyLinkConfig"] | None = None

    def __post_init__(self) -> None:
        total = 0.0
        for name in _FATE_RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
            total += rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                "fates are mutually exclusive: drop_rate + duplicate_rate + "
                f"reorder_rate + corrupt_rate must be <= 1, got {total}"
            )
        if self.reorder_hold < 1:
            raise ValueError(f"reorder_hold must be >= 1, got {self.reorder_hold}")
        if self.per_link:
            for link, config in self.per_link.items():
                if config.per_link:
                    raise ValueError(
                        f"per_link override for {link} cannot itself carry "
                        "per_link overrides"
                    )

    @property
    def active(self) -> bool:
        """True when any fate can actually fire (here or in an override)."""
        if any(getattr(self, name) > 0.0 for name in _FATE_RATE_FIELDS):
            return True
        if self.per_link:
            return any(config.active for config in self.per_link.values())
        return False

    def rates_for(self, sender: int, dest: int) -> "LossyLinkConfig":
        """The effective config on the ``sender -> dest`` link."""
        if self.per_link:
            override = self.per_link.get((sender, dest))
            if override is not None:
                return override
        return self

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            name: getattr(self, name) for name in _FATE_RATE_FIELDS
        }
        payload["reorder_hold"] = self.reorder_hold
        if self.per_link:
            payload["per_link"] = {
                f"{sender}->{dest}": config.to_dict()
                for (sender, dest), config in sorted(self.per_link.items())
            }
        return payload

    @classmethod
    def targeted(
        cls,
        n: int,
        senders: Iterable[int] = (),
        dests: Iterable[int] = (),
        base: "LossyLinkConfig | None" = None,
        **rates: Any,
    ) -> "LossyLinkConfig":
        """Aim ``rates`` at specific processes via per-link overrides.

        Builds a config whose ``per_link`` overrides apply
        ``cls(**rates)`` to every link *out of* a pid in ``senders`` and
        every link *into* a pid in ``dests`` (self-links included: the
        kernel routes loopback sends through the same link model).  All
        other links follow ``base`` (default: lossless).  Overrides from
        ``base.per_link`` are kept but lose to the targeted ones.

        This is how committee-targeted scenarios are built: compute the
        committee membership from the trusted setup
        (:func:`repro.core.committees.sample_committee`) and starve
        exactly those links, e.g.
        ``LossyLinkConfig.targeted(n, senders=members, drop_rate=0.4)``.
        """
        override = cls(**rates)
        base = base if base is not None else cls()
        links: dict[tuple[int, int], "LossyLinkConfig"] = (
            dict(base.per_link) if base.per_link else {}
        )
        for sender in senders:
            for dest in range(n):
                links[(sender, dest)] = override
        for dest in dests:
            for sender in range(n):
                links[(sender, dest)] = override
        return cls(
            drop_rate=base.drop_rate,
            duplicate_rate=base.duplicate_rate,
            reorder_rate=base.reorder_rate,
            corrupt_rate=base.corrupt_rate,
            reorder_hold=base.reorder_hold,
            per_link=links,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LossyLinkConfig":
        per_link = None
        if data.get("per_link"):
            per_link = {}
            for key, sub in data["per_link"].items():
                sender, _, dest = key.partition("->")
                per_link[(int(sender), int(dest))] = cls.from_dict(sub)
        return cls(
            drop_rate=data.get("drop_rate", 0.0),
            duplicate_rate=data.get("duplicate_rate", 0.0),
            reorder_rate=data.get("reorder_rate", 0.0),
            corrupt_rate=data.get("corrupt_rate", 0.0),
            reorder_hold=data.get("reorder_hold", 16),
            per_link=per_link,
        )


def _bit_corrupt(message: Message, rng: random.Random) -> Message | None:
    """A shallow copy of ``message`` with one integer bit flipped.

    Returns ``None`` when the message has no eligible field (no plain
    ``int`` besides ``instance``, or the dataclass is frozen/slotted) --
    the caller then delivers the original intact.
    """
    try:
        fields = vars(message)
    except TypeError:
        return None
    names = sorted(
        name
        for name, value in fields.items()
        if name != "instance" and type(value) is int
    )
    if not names:
        return None
    name = names[rng.randrange(len(names))]
    value = fields[name]
    clone = copy.copy(message)
    try:
        setattr(clone, name, value ^ (1 << rng.randrange(max(value.bit_length(), 8))))
    except AttributeError:
        return None
    return clone


class _LossyState:
    """Per-run lossy-link machinery: fate rolls, the reorder heap, counters."""

    __slots__ = ("config", "_root", "drops", "duplicates", "reorders",
                 "corruptions", "held", "by_kind")

    def __init__(self, config: LossyLinkConfig, seed: int) -> None:
        self.config = config
        self._root = derive_seed(seed, "lossy")
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0
        self.corruptions = 0
        # Fate counters split by message kind (class name), one dict per
        # fate -- the per-kind accounting `repro report` renders.
        self.by_kind: dict[str, dict[str, int]] = {
            "drops": {}, "duplicates": {}, "reorders": {}, "corruptions": {}
        }
        # Min-heap of (release_at_deliveries, seq, envelope): reordered
        # messages waiting outside the scheduler pool.
        self.held: list[tuple[int, int, Envelope]] = []

    def count(self, fate_key: str, kind: str) -> None:
        kinds = self.by_kind[fate_key]
        kinds[kind] = kinds.get(kind, 0) + 1

    def fate(
        self, seq: int, sender: int, dest: int
    ) -> tuple[str, random.Random, LossyLinkConfig]:
        """The fate of seq on this link, deterministic in (run seed, seq)."""
        config = self.config.rates_for(sender, dest)
        rng = random.Random(derive_seed(self._root, seq))
        roll = rng.random()
        for name, fate in (
            ("drop_rate", "drop"),
            ("duplicate_rate", "duplicate"),
            ("reorder_rate", "reorder"),
            ("corrupt_rate", "corrupt"),
        ):
            rate = getattr(config, name)
            if roll < rate:
                return fate, rng, config
            roll -= rate
        return "deliver", rng, config


class EmptySchedulerPoolError(RuntimeError):
    """A scheduler asked the pool for a message while nothing is in flight.

    The kernel never calls ``choose`` on an empty pool, so this means an
    adversary implementation indexed the pool outside ``choose`` (or a
    test drove the pool directly).  Named so adversary authors get a
    diagnosable failure instead of a bare ``randrange(0)`` traceback.
    """


class SchedulerPool:
    """The scheduler's window onto the in-flight message set.

    Payload access is refused unless the scheduler declared itself
    ``content_aware`` -- the mechanical enforcement of delayed adaptivity.
    """

    def __init__(self, simulation: "Simulation") -> None:
        self._simulation = simulation

    def __len__(self) -> int:
        return len(self._simulation._seq_list)

    def _require_messages(self) -> None:
        if not self._simulation._seq_list:
            scheduler = type(self._simulation.adversary.scheduler).__name__
            raise EmptySchedulerPoolError(
                f"scheduler {scheduler} requested a message from an empty "
                "pool: no messages are in flight"
            )

    def seq_at(self, index: int) -> int:
        self._require_messages()
        return self._simulation._seq_list[index]

    def random_seq(self, rng: random.Random) -> int:
        self._require_messages()
        return self._simulation._seq_list[rng.randrange(len(self._simulation._seq_list))]

    def view(self, seq: int) -> EnvelopeView:
        return EnvelopeView.of(self._simulation._in_flight[seq])

    def payload(self, seq: int) -> Message:
        if not self._simulation.adversary.scheduler.content_aware:
            raise PermissionError(
                "content-oblivious scheduler attempted to read a payload; "
                "this would violate the delayed-adaptive adversary model"
            )
        return self._simulation._in_flight[seq].payload


class Simulation:
    """One run of a protocol under one adversary.

    Parameters
    ----------
    n, f:
        System size and corruption budget.  ``f`` bounds the *total* number
        of corruptions (initial plus adaptive).
    pki:
        Trusted setup (generated before the run, as the paper assumes).
    adversary:
        Scheduler + corruption strategy + Byzantine behaviour factory.
    seed:
        Root of all per-process deterministic randomness.
    params:
        Arbitrary protocol parameter object exposed as ``ctx.params``.
    stop_condition:
        ``callable(sim) -> bool`` evaluated after every delivery; lets BA
        runs halt once every correct process decided even though the
        protocol itself loops forever.
    eager_wakeups:
        When True, ignore ``Wait.instances`` subscriptions and re-evaluate
        every pending condition after every delivery (the pre-subscription
        behaviour).  Exists so equivalence tests can diff the keyed and
        eager paths.
    profile:
        When True, wall-clock timers wrap the kernel sections (scheduler
        choice, delivery/stepping, signature+VRF verification) and every
        :meth:`~repro.sim.process.ProcessContext.span`; totals land in
        ``metrics.phase_timings``.  Off by default: timing every delivery
        is not free and wall-clock is the one observable that legitimately
        differs between identical runs.
    delivery_mode:
        ``"classic"`` (default) runs one scheduler ``choose`` per
        delivery.  ``"batched"`` asks the scheduler to
        :meth:`~repro.sim.adversary.Scheduler.drain` every committed seq
        in one call and delivers the batch in a tight loop -- observably
        identical (the drain contract guarantees the same delivery order,
        and every per-delivery effect, including stop-condition checks,
        corruption hooks and wait evaluation, still happens per
        envelope), but without the per-delivery dispatch overhead.
        Schedulers that decline to drain (e.g. uniformly random) fall
        back to the classic step, so batched mode is always safe to
        request.  Under ``profile=True`` the classic loop is used
        regardless, so the ``kernel.schedule``/``kernel.step`` timers
        keep their per-delivery meaning.
    lossy:
        Optional :class:`LossyLinkConfig` enabling the lossy-link model
        extension.  ``None`` (default) or an all-zero config keeps the
        kernel byte-identical to the reliable model.  An active config
        forces the classic stepping loop (reorder holds are incompatible
        with the batched drain contract, so batched mode falls back
        cleanly) and does not record the ``kernel.schedule``/
        ``kernel.step`` profile timers.
    """

    def __init__(
        self,
        n: int,
        f: int,
        pki: PKI,
        adversary: Adversary,
        seed: int = 0,
        params: Any = None,
        max_deliveries: int = DEFAULT_MAX_DELIVERIES,
        stop_condition: Callable[["Simulation"], bool] | None = None,
        eager_wakeups: bool = False,
        profile: bool = False,
        delivery_mode: str = "classic",
        lossy: LossyLinkConfig | None = None,
    ) -> None:
        if pki.n != n:
            raise ValueError("PKI size does not match n")
        if not 0 <= f < n:
            raise ValueError("need 0 <= f < n")
        if delivery_mode not in ("classic", "batched"):
            raise ValueError(
                f"unknown delivery_mode {delivery_mode!r}; "
                "expected 'classic' or 'batched'"
            )
        if lossy is not None and not isinstance(lossy, LossyLinkConfig):
            raise TypeError(
                f"lossy must be a LossyLinkConfig or None, got {type(lossy).__name__}"
            )
        self.n = n
        self.f = f
        self.pki = pki
        self.adversary = adversary
        self.seed = seed
        self.params = params
        self.max_deliveries = max_deliveries
        self.stop_condition = stop_condition
        self.eager_wakeups = eager_wakeups
        self.profile = profile
        self.delivery_mode = delivery_mode
        self.lossy = lossy
        # Inactive configs compile to the exact reliable-model code paths:
        # `self._lossy is None` is the only check the hot paths make.
        self._lossy = (
            _LossyState(lossy, seed) if lossy is not None and lossy.active else None
        )
        self.metrics = MetricsRecorder()
        # The kernel event bus.  Emission sites read this list reference
        # directly: `if subscribers:` is the whole no-subscriber cost.
        self.events = EventBus()
        self._subscribers = self.events.subscribers
        self.deliveries = 0
        # Batch accounting (kernel-side, deliberately *not* in metrics so
        # classic and batched runs stay byte-identical): deliveries that
        # arrived via a drained batch, and the number of batches.
        self.batched_deliveries = 0
        self.drain_batches = 0

        self.contexts = [ProcessContext(pid, self) for pid in range(n)]
        self.corrupted: set[int] = set()
        self.decided: set[int] = set()
        self.finished: set[int] = set()
        self.returns: dict[int, Any] = {}

        self._behaviors: dict[int, Any] = {}
        self._generators: dict[int, Any] = {}
        self._pending: dict[int, Wait | None] = {}
        # Incremental-quorum countdown per blocked pid: subscribed
        # deliveries still needed before the pending wait's min_count
        # floor is reached (0 = evaluate normally).
        self._pending_remaining: dict[int, int] = {}
        self._factories: dict[int, ProtocolFactory] = {}

        self._in_flight: dict[int, Envelope] = {}
        self._seq_list: list[int] = []
        self._seq_pos: dict[int, int] = {}
        self._next_seq = 0
        self._pool = SchedulerPool(self)
        self._stopped = False
        self._started = False
        # Set again by run(); initialised here so a never-run simulation
        # answers `exhausted`/`deadlocked` instead of raising.
        self.exhausted = False
        # Submission fast path: skip the per-envelope EnvelopeView (and
        # the call itself) when the scheduler's on_submit is the base
        # no-op or declares it ignores the view.
        scheduler = adversary.scheduler
        if type(scheduler).on_submit is Scheduler.on_submit:
            self._submit_hook = None
        else:
            self._submit_hook = scheduler.on_submit
        self._submit_wants_view = bool(getattr(scheduler, "wants_view", True))
        # Corruption fast path: a strategy that keeps the base no-op
        # on_delivery never reacts, so the per-delivery view/frozenset
        # construction can be skipped entirely.
        self._corruption_reacts = (
            type(adversary.corruption).on_delivery
            is not CorruptionStrategy.on_delivery
        )

    # -- configuration ---------------------------------------------------------

    def set_protocol(self, pid: int, factory: ProtocolFactory) -> None:
        """Install the protocol a (correct) process will run."""
        self._factories[pid] = factory

    def set_protocol_all(self, factory: ProtocolFactory) -> None:
        for pid in range(self.n):
            self.set_protocol(pid, factory)

    # -- kernel services used by ProcessContext ---------------------------------

    def submit(self, sender: int, dest: int, message: Message) -> None:
        """Place a message on the link from ``sender`` to ``dest``.

        Links are reliable (the paper's model) unless an active
        :class:`LossyLinkConfig` was installed, in which case the
        message's fate is rolled in :meth:`_submit_lossy`.
        """
        if self._lossy is not None:
            self._submit_lossy(sender, dest, message)
            return
        if not 0 <= dest < self.n:
            raise ValueError(f"invalid destination {dest}")
        if not 0 <= sender < self.n:
            # A negative sender would silently index contexts[-1] and stamp
            # the wrong depth/sender_correct; fail like an invalid dest.
            raise ValueError(f"invalid sender {sender}")
        ctx = self.contexts[sender]
        # Positional: keyword construction measurably slows this path.
        envelope = Envelope(
            self._next_seq,
            sender,
            dest,
            message,
            ctx.depth + 1,
            sender not in self.corrupted,
            self.deliveries,
        )
        self._next_seq += 1
        self.metrics.record_send(envelope)
        if self._subscribers:
            self.events.emit(
                SendEvent(
                    step=self.deliveries,
                    seq=envelope.seq,
                    sender=sender,
                    dest=dest,
                    instance=message.instance,
                    message_kind=type(message).__name__,
                    words=message.words(),
                    depth=envelope.depth,
                    sender_correct=envelope.sender_correct,
                )
            )
        self._in_flight[envelope.seq] = envelope
        self._seq_pos[envelope.seq] = len(self._seq_list)
        self._seq_list.append(envelope.seq)
        on_submit = self._submit_hook
        if on_submit is not None:
            on_submit(
                envelope.seq,
                EnvelopeView.of(envelope) if self._submit_wants_view else None,
            )
        scheduler = self.adversary.scheduler
        if scheduler.content_aware:
            inspect = getattr(scheduler, "inspect_payload", None)
            if inspect is not None:
                inspect(envelope.seq, message, sender)

    def submit_broadcast(self, sender: int, message: Message) -> None:
        """Submit ``message`` from ``sender`` to every process (self included).

        Observably identical to ``n`` consecutive :meth:`submit` calls in
        destination order -- same seqs, envelopes, events, metrics and
        scheduler callbacks -- with the per-message work (word count, kind,
        depth, the metrics increments) hoisted out of the destination loop.
        Broadcast is the protocols' only send primitive, so this is the
        kernel's hottest submission path.
        """
        n = self.n
        if self._lossy is not None:
            # Lossy runs take the per-destination path so every envelope
            # rolls its own fate; the hoisted fast path below assumes the
            # reliable model.
            for dest in range(n):
                self._submit_lossy(sender, dest, message)
            return
        if not 0 <= sender < n:
            raise ValueError(f"invalid sender {sender}")
        ctx = self.contexts[sender]
        depth = ctx.depth + 1
        sender_correct = sender not in self.corrupted
        sent_step = self.deliveries
        metrics = self.metrics
        words = message.words()
        kind = type(message).__name__
        # record_send x n, batched: identical final counter values.
        metrics.words_total += words * n
        metrics.messages_sent_total += n
        if sender_correct:
            metrics.words_correct += words * n
            metrics.messages_sent_correct += n
            metrics.words_by_kind[kind] += words * n
            metrics.messages_by_kind[kind] += n
            metrics.words_by_sender[sender] += words * n
            metrics.messages_by_sender[sender] += n
        emit = self.events.emit if self._subscribers else None
        instance = message.instance
        in_flight = self._in_flight
        seq_pos = self._seq_pos
        seq_list = self._seq_list
        on_submit = self._submit_hook
        wants_view = self._submit_wants_view
        scheduler = self.adversary.scheduler
        inspect = (
            getattr(scheduler, "inspect_payload", None)
            if scheduler.content_aware
            else None
        )
        seq = self._next_seq
        first_seq = seq
        pos = len(seq_list)
        for dest in range(n):
            # Positional: keyword construction measurably slows this loop.
            envelope = Envelope(
                seq, sender, dest, message, depth, sender_correct, sent_step
            )
            if emit is not None:
                emit(
                    SendEvent(
                        step=sent_step,
                        seq=seq,
                        sender=sender,
                        dest=dest,
                        instance=instance,
                        message_kind=kind,
                        words=words,
                        depth=depth,
                        sender_correct=sender_correct,
                    )
                )
            in_flight[seq] = envelope
            seq_pos[seq] = pos
            seq_list.append(seq)
            if on_submit is not None and wants_view:
                on_submit(seq, EnvelopeView.of(envelope))
            if inspect is not None:
                inspect(seq, message, sender)
            seq += 1
            pos += 1
        self._next_seq = seq
        if on_submit is not None and not wants_view:
            # Seq-only bookkeeping: one bulk call per broadcast.  Deferring
            # it past the destination loop is invisible -- the kernel only
            # consults the scheduler between deliveries, never mid-submit.
            scheduler.on_submit_range(first_seq, seq)

    def _insert_in_flight(self, envelope: Envelope) -> None:
        """Enter ``envelope`` into the scheduler pool (lossy paths only).

        The same pool bookkeeping + scheduler callbacks :meth:`submit`
        inlines; factored out so reordered envelopes can join the pool at
        release time rather than submit time.
        """
        seq = envelope.seq
        self._in_flight[seq] = envelope
        self._seq_pos[seq] = len(self._seq_list)
        self._seq_list.append(seq)
        on_submit = self._submit_hook
        if on_submit is not None:
            on_submit(
                seq,
                EnvelopeView.of(envelope) if self._submit_wants_view else None,
            )
        scheduler = self.adversary.scheduler
        if scheduler.content_aware:
            inspect = getattr(scheduler, "inspect_payload", None)
            if inspect is not None:
                inspect(seq, envelope.payload, envelope.sender)

    def _submit_lossy(
        self, sender: int, dest: int, message: Message, injected: bool = False
    ) -> None:
        """:meth:`submit` under an active :class:`LossyLinkConfig`.

        The envelope's fate is a deterministic function of (run seed,
        seq).  ``injected`` marks the second copy of a duplicated
        message: it takes a fresh seq but never re-rolls a fate (no
        recursive duplication) and is not counted as a protocol send.
        """
        if not 0 <= dest < self.n:
            raise ValueError(f"invalid destination {dest}")
        if not 0 <= sender < self.n:
            raise ValueError(f"invalid sender {sender}")
        lossy = self._lossy
        seq = self._next_seq
        if injected:
            fate, rng, config = "deliver", None, None
        else:
            fate, rng, config = lossy.fate(seq, sender, dest)
        if fate == "corrupt":
            corrupted_payload = _bit_corrupt(message, rng)
            if corrupted_payload is not None:
                lossy.corruptions += 1
                lossy.count("corruptions", type(message).__name__)
                message = corrupted_payload
        ctx = self.contexts[sender]
        envelope = Envelope(
            seq,
            sender,
            dest,
            message,
            ctx.depth + 1,
            sender not in self.corrupted,
            self.deliveries,
        )
        self._next_seq = seq + 1
        if not injected:
            self.metrics.record_send(envelope)
        if self._subscribers:
            self.events.emit(
                SendEvent(
                    step=self.deliveries,
                    seq=seq,
                    sender=sender,
                    dest=dest,
                    instance=message.instance,
                    message_kind=type(message).__name__,
                    words=message.words(),
                    depth=envelope.depth,
                    sender_correct=envelope.sender_correct,
                )
            )
        if fate == "drop":
            lossy.drops += 1
            lossy.count("drops", type(message).__name__)
            return
        if fate == "reorder":
            lossy.reorders += 1
            lossy.count("reorders", type(message).__name__)
            release_at = self.deliveries + 1 + rng.randrange(config.reorder_hold)
            heappush(lossy.held, (release_at, seq, envelope))
            return
        self._insert_in_flight(envelope)
        if fate == "duplicate":
            lossy.duplicates += 1
            lossy.count("duplicates", type(message).__name__)
            self._submit_lossy(sender, dest, message, injected=True)

    def note_decision(self, pid: int) -> None:
        self.decided.add(pid)

    # -- corruption ---------------------------------------------------------------

    def corrupt(self, pid: int) -> bool:
        """Corrupt ``pid`` if the budget allows; returns True on success.

        Messages the process already submitted stay in flight untouched
        (no after-the-fact removal, no front-running).
        """
        if pid in self.corrupted or len(self.corrupted) >= self.f:
            return False
        self.corrupted.add(pid)
        if self._subscribers:
            self.events.emit(CorruptEvent(step=self.deliveries, pid=pid))
        self._generators.pop(pid, None)
        self._pending.pop(pid, None)
        self._pending_remaining.pop(pid, None)
        behavior = self.adversary.behavior_factory(pid)
        self._behaviors[pid] = behavior
        ctx = self.contexts[pid]
        if self._started:
            behavior.on_corrupt(ctx)
        return True

    # -- correct-process stepping ----------------------------------------------

    def _advance(self, pid: int, value: Any, first: bool) -> None:
        """Run ``pid``'s generator until it blocks or returns."""
        generator = self._generators[pid]
        send = generator.send
        ctx = self.contexts[pid]
        mailbox = ctx.mailbox
        spins = 0
        wait: Wait | None = None
        while True:
            spins += 1
            if spins > 100_000:
                # A condition that is immediately true on every yield would
                # otherwise livelock the kernel inside a single delivery.
                # `wait` is the previous iteration's Wait -- the one whose
                # condition keeps returning non-None.
                if wait is None:
                    detail = ""
                elif wait.instances is None:
                    detail = (
                        f" (wait {wait.description!r}, subscribed to all "
                        "instances)"
                    )
                else:
                    subscribed = ", ".join(
                        sorted(repr(instance) for instance in wait.instances)
                    )
                    detail = (
                        f" (wait {wait.description!r}, subscribed instances: "
                        f"{subscribed})"
                    )
                raise RuntimeError(
                    f"process {pid} resumed 100000 times without blocking; "
                    "its wait condition is probably unconditionally true"
                    + detail
                )
            try:
                wait = next(generator) if first else send(value)
            except StopIteration as stop:
                self.returns[pid] = stop.value
                self.finished.add(pid)
                self._pending[pid] = None
                del self._generators[pid]
                return
            first = False
            # A condition may already be satisfiable from buffered messages.
            result = wait.condition(mailbox)
            if result is None:
                self._pending[pid] = wait
                min_count = wait.min_count
                if (
                    min_count > 0
                    and wait.instances is not None
                    and not self.eager_wakeups
                ):
                    need = min_count - mailbox.total_for(wait.instances)
                    self._pending_remaining[pid] = need if need > 0 else 0
                else:
                    self._pending_remaining[pid] = 0
                if self._subscribers:
                    self.events.emit(
                        WaitBlockEvent(
                            step=self.deliveries,
                            pid=pid,
                            description=wait.description,
                            subscribed=wait.instances is not None,
                            depth=ctx.depth,
                        )
                    )
                return
            value = result

    def _deliver(self, envelope: Envelope) -> None:
        self.metrics.record_delivery(envelope)
        if self._subscribers:
            payload = envelope.payload
            self.events.emit(
                DeliverEvent(
                    step=self.deliveries,
                    seq=envelope.seq,
                    sender=envelope.sender,
                    dest=envelope.dest,
                    instance=payload.instance,
                    message_kind=type(payload).__name__,
                    words=payload.words(),
                    depth=envelope.depth,
                    sent_step=envelope.sent_step,
                    summary=summarize_payload(payload),
                    payload=payload,
                )
            )
        # The delivery counter advances before the delivery's effects, so
        # sends and decisions triggered by this delivery are stamped with
        # the post-delivery step (events above carry the pre-delivery one).
        self.deliveries += 1
        pid = envelope.dest
        ctx = self.contexts[pid]
        ctx.depth = max(ctx.depth, envelope.depth)
        if pid in self.corrupted:
            self._behaviors[pid].on_deliver(ctx, envelope)
            return
        ctx.mailbox.add(envelope.sender, envelope.payload)
        if ctx.background_handlers:
            for handler in list(ctx.background_handlers):
                handler(ctx.mailbox)
        if pid in self._generators:
            wait = self._pending.get(pid)
            if wait is not None:
                # Instance-keyed wakeup: a condition subscribed to a set of
                # instances provably cannot change its answer on a delivery
                # for any other instance, so skip the re-evaluation.  Below
                # the wait's min_count floor the condition provably cannot
                # fire either (see Wait.min_count); count down instead of
                # evaluating.
                if self.eager_wakeups or wait.instances is None:
                    evaluate = True
                elif envelope.payload.instance in wait.instances:
                    remaining = self._pending_remaining.get(pid, 0)
                    if remaining > 1:
                        self._pending_remaining[pid] = remaining - 1
                        evaluate = False
                    else:
                        if remaining:
                            self._pending_remaining[pid] = 0
                        evaluate = True
                else:
                    evaluate = False
                if evaluate:
                    self.metrics.wait_evaluations += 1
                    result = wait.condition(ctx.mailbox)
                    if result is not None:
                        self._pending[pid] = None
                        if self._subscribers:
                            self.events.emit(
                                WaitWakeEvent(
                                    step=self.deliveries,
                                    pid=pid,
                                    description=wait.description,
                                    depth=ctx.depth,
                                )
                            )
                        self._advance(pid, result, first=False)
                else:
                    self.metrics.wait_skips += 1

    def _remove_in_flight(self, seq: int) -> Envelope:
        envelope = self._in_flight.pop(seq)
        position = self._seq_pos.pop(seq)
        last = self._seq_list.pop()
        if position < len(self._seq_list):
            self._seq_list[position] = last
            self._seq_pos[last] = position
        return envelope

    # -- main loop -----------------------------------------------------------------

    def _should_stop(self) -> bool:
        if self.stop_condition is None:
            return False
        return bool(self.stop_condition(self))

    def run(self) -> "Simulation":
        """Execute the run to completion; returns ``self`` for chaining."""
        if self._started:
            raise RuntimeError("a Simulation object runs at most once")
        self._started = True
        verify_base = self.pki.verification_counters()

        for pid in self.adversary.corruption.initial_corruptions(self.n, self.f):
            self.corrupt(pid)

        # Start Byzantine behaviours first: their initial messages being
        # already in flight when correct processes start only strengthens
        # the adversary.
        for pid in sorted(self.corrupted):
            self._behaviors[pid].on_start(self.contexts[pid])
        for pid in range(self.n):
            if pid in self.corrupted:
                continue
            factory = self._factories.get(pid)
            if factory is None:
                raise RuntimeError(f"no protocol installed for process {pid}")
            self._generators[pid] = factory(self.contexts[pid])
            self._pending[pid] = None
        for pid in range(self.n):
            if pid not in self.corrupted:
                self._advance(pid, None, first=True)

        scheduler = self.adversary.scheduler
        corruption = self.adversary.corruption
        profile = self.profile
        perf = time.perf_counter
        restore_verify = self._install_verify_timers() if profile else None
        corruption_reacts = self._corruption_reacts
        try:
            if self._lossy is not None:
                self._run_lossy(scheduler, corruption)
            elif self.delivery_mode == "batched" and not profile:
                self._run_batched(scheduler, corruption)
            else:
                while self._in_flight and self.deliveries < self.max_deliveries:
                    if self._should_stop():
                        self._stopped = True
                        break
                    if profile:
                        start = perf()
                        seq = scheduler.choose(self._pool)
                        chosen = perf()
                        self.metrics.add_timing("kernel.schedule", chosen - start)
                        envelope = self._remove_in_flight(seq)
                        scheduler.on_delivered(seq)
                        self._deliver(envelope)
                        self.metrics.add_timing("kernel.step", perf() - chosen)
                    else:
                        seq = scheduler.choose(self._pool)
                        envelope = self._remove_in_flight(seq)
                        scheduler.on_delivered(seq)
                        self._deliver(envelope)
                    if corruption_reacts and len(self.corrupted) < self.f:
                        view = EnvelopeView.of(envelope)
                        for pid in corruption.on_delivery(
                            view, frozenset(self.corrupted)
                        ):
                            self.corrupt(pid)
                else:
                    self._stopped = self._should_stop()
        finally:
            if restore_verify is not None:
                restore_verify()

        # A run that hits its stop condition on exactly the last permitted
        # delivery terminated normally; only report exhaustion when the
        # budget ran out *without* the condition holding.
        self.exhausted = self.deliveries >= self.max_deliveries and not self._stopped
        self.metrics.record_verification_counters(
            verify_base, self.pki.verification_counters()
        )
        if self._lossy is not None:
            # Surface the link-fault accounting into the run's metrics so
            # RunResult/recordings/reports carry it without reaching back
            # into the simulation object.
            self.metrics.lossy_link = self.lossy_counters
            self.metrics.lossy_by_kind = self.lossy_by_kind
        return self

    def _run_lossy(self, scheduler: Scheduler, corruption: CorruptionStrategy) -> None:
        """The classic stepping loop with lossy-link fates applied.

        Identical per-delivery semantics to the classic loop, plus the
        reorder-release machinery: held envelopes enter the pool once the
        delivery counter reaches their release point, and if the pool
        empties while messages are still held, the earliest is released
        immediately (a lossy link may delay but cannot withhold forever
        -- only genuine drops can deadlock a run).  Batched draining is
        skipped because a hold breaks the drain contract's commitment
        semantics; schedulers of either mode run here unchanged.
        """
        lossy = self._lossy
        held = lossy.held
        corruption_reacts = self._corruption_reacts
        while (self._in_flight or held) and self.deliveries < self.max_deliveries:
            if self._should_stop():
                self._stopped = True
                break
            while held and held[0][0] <= self.deliveries:
                self._insert_in_flight(heappop(held)[2])
            if not self._in_flight:
                self._insert_in_flight(heappop(held)[2])
            seq = scheduler.choose(self._pool)
            envelope = self._remove_in_flight(seq)
            scheduler.on_delivered(seq)
            self._deliver(envelope)
            if corruption_reacts and len(self.corrupted) < self.f:
                view = EnvelopeView.of(envelope)
                for pid in corruption.on_delivery(view, frozenset(self.corrupted)):
                    self.corrupt(pid)
        else:
            self._stopped = self._should_stop()

    def _run_batched(self, scheduler: Scheduler, corruption: CorruptionStrategy) -> None:
        """The batched delivery loop (``delivery_mode="batched"``).

        Per-envelope semantics are identical to the classic loop: the stop
        condition is checked before every delivery, the corruption
        strategy observes every delivery, and the pending-wait gates
        (instance subscription, min_count countdown) fire per envelope --
        so event streams, metrics and results are byte-identical.  What
        changes is dispatch: committed batches from
        :meth:`~repro.sim.adversary.Scheduler.drain` are delivered in one
        tight loop with ``_remove_in_flight``/``_deliver`` inlined and the
        kernel's per-delivery attribute traffic hoisted into locals.
        Schedulers that decline to drain fall back to the classic step, so
        any adversary runs under either mode.
        """
        # Aliases, not copies: mutations from corrupt()/submit() during the
        # batch stay visible to the loop.
        in_flight = self._in_flight
        seq_list = self._seq_list
        seq_pos = self._seq_pos
        contexts = self.contexts
        corrupted = self.corrupted
        behaviors = self._behaviors
        generators = self._generators
        pending = self._pending
        remaining_map = self._pending_remaining
        metrics = self.metrics
        subscribers = self._subscribers
        emit = self.events.emit
        eager = self.eager_wakeups
        advance = self._advance
        corruption_reacts = self._corruption_reacts
        max_deliveries = self.max_deliveries
        budget = self.f
        drain = scheduler.drain
        pool = self._pool
        # Monotone stop conditions (see runner.stop_when_all_decided) only
        # change value when decided/finished/corrupted grow; skip the call
        # while that fingerprint is unchanged.  Same stop point, evaluated
        # once per state change instead of once per delivery.
        stop_condition = self.stop_condition
        stop_monotone = bool(getattr(stop_condition, "monotone_stop", False))
        decided = self.decided
        finished = self.finished
        stop_fp = -1
        stop_val = False

        while in_flight and self.deliveries < max_deliveries:
            if stop_condition is not None:
                if stop_monotone:
                    fp = len(decided) + len(finished) + len(corrupted)
                    if fp != stop_fp:
                        stop_fp = fp
                        stop_val = bool(stop_condition(self))
                    if stop_val:
                        self._stopped = True
                        return
                elif self._should_stop():
                    self._stopped = True
                    return
            batch = drain(pool, max_deliveries - self.deliveries)
            if not batch:
                # Nothing committed (or the scheduler declined): one
                # classic step, then ask again.
                seq = scheduler.choose(pool)
                envelope = self._remove_in_flight(seq)
                scheduler.on_delivered(seq)
                self._deliver(envelope)
                if corruption_reacts and len(corrupted) < budget:
                    view = EnvelopeView.of(envelope)
                    for pid in corruption.on_delivery(view, frozenset(corrupted)):
                        self.corrupt(pid)
                continue
            self.drain_batches += 1
            first_in_batch = True
            for seq in batch:
                if first_in_batch:
                    first_in_batch = False  # the outer loop just checked stop
                elif stop_condition is not None:
                    if stop_monotone:
                        fp = len(decided) + len(finished) + len(corrupted)
                        if fp != stop_fp:
                            stop_fp = fp
                            stop_val = bool(stop_condition(self))
                        if stop_val:
                            self._stopped = True
                            return
                    elif self._should_stop():
                        self._stopped = True
                        return
                # -- _remove_in_flight, inlined --
                envelope = in_flight.pop(seq)
                position = seq_pos.pop(seq)
                last = seq_list.pop()
                if position < len(seq_list):
                    seq_list[position] = last
                    seq_pos[last] = position
                # -- _deliver, inlined --
                payload = envelope.payload
                metrics.messages_delivered += 1
                metrics.words_delivered += payload.words()
                payload_instance = payload.instance
                if subscribers:
                    emit(
                        DeliverEvent(
                            step=self.deliveries,
                            seq=envelope.seq,
                            sender=envelope.sender,
                            dest=envelope.dest,
                            instance=payload_instance,
                            message_kind=type(payload).__name__,
                            words=payload.words(),
                            depth=envelope.depth,
                            sent_step=envelope.sent_step,
                            summary=summarize_payload(payload),
                            payload=payload,
                        )
                    )
                self.deliveries += 1
                self.batched_deliveries += 1
                pid = envelope.dest
                ctx = contexts[pid]
                if ctx.depth < envelope.depth:
                    ctx.depth = envelope.depth
                if pid in corrupted:
                    behaviors[pid].on_deliver(ctx, envelope)
                else:
                    mailbox = ctx.mailbox
                    # -- Mailbox.add, inlined (kernel-owned hot path) --
                    by_instance = mailbox._by_instance
                    stream_list = by_instance.get(payload_instance)
                    if stream_list is None:
                        by_instance[payload_instance] = stream_list = []
                    stream_list.append((envelope.sender, payload))
                    mailbox_counts = mailbox.counts
                    mailbox_counts[payload_instance] = (
                        mailbox_counts.get(payload_instance, 0) + 1
                    )
                    mailbox.total_delivered += 1
                    if ctx.background_handlers:
                        for handler in list(ctx.background_handlers):
                            handler(mailbox)
                    if pid in generators:
                        wait = pending.get(pid)
                        if wait is not None:
                            instances = wait.instances
                            if eager or instances is None:
                                evaluate = True
                            elif payload_instance in instances:
                                remaining = remaining_map.get(pid, 0)
                                if remaining > 1:
                                    remaining_map[pid] = remaining - 1
                                    evaluate = False
                                else:
                                    if remaining:
                                        remaining_map[pid] = 0
                                    evaluate = True
                            else:
                                evaluate = False
                            if evaluate:
                                metrics.wait_evaluations += 1
                                result = wait.condition(mailbox)
                                if result is not None:
                                    pending[pid] = None
                                    if subscribers:
                                        emit(
                                            WaitWakeEvent(
                                                step=self.deliveries,
                                                pid=pid,
                                                description=wait.description,
                                                depth=ctx.depth,
                                            )
                                        )
                                    advance(pid, result, False)
                            else:
                                metrics.wait_skips += 1
                if corruption_reacts and len(corrupted) < budget:
                    view = EnvelopeView.of(envelope)
                    for pid in corruption.on_delivery(view, frozenset(corrupted)):
                        self.corrupt(pid)
        self._stopped = self._should_stop()

    def _install_verify_timers(self) -> Callable[[], None]:
        """Wrap the PKI's verify entry points with wall-clock accumulators.

        Only active under ``profile=True``.  The wrappers are instance
        attributes shadowing the bound methods, so the (possibly shared)
        PKI object is restored by the returned callable as soon as the run
        loop exits.  Verification time is nested inside ``kernel.step``.

        Restoration reinstates the *prior* instance-attribute state (a
        shared PKI may already carry instance-level verify wrappers, e.g.
        from an outer profiled run); a bare ``del`` would destroy them and
        raise if restore ran twice.  The returned callable is idempotent.
        """
        pki = self.pki
        metrics = self.metrics
        perf = time.perf_counter
        original_vrf = pki.vrf_verify
        original_sig = pki.signature_verify
        # Prior *instance* state (distinct from the bound class methods
        # captured above): what restore() must put back.
        missing = object()
        prior_vrf = pki.__dict__.get("vrf_verify", missing)
        prior_sig = pki.__dict__.get("signature_verify", missing)

        def timed_vrf(process_id, alpha, output):
            start = perf()
            try:
                return original_vrf(process_id, alpha, output)
            finally:
                metrics.add_timing("kernel.verify", perf() - start)

        def timed_sig(process_id, message, signature):
            start = perf()
            try:
                return original_sig(process_id, message, signature)
            finally:
                metrics.add_timing("kernel.verify", perf() - start)

        pki.vrf_verify = timed_vrf  # type: ignore[method-assign]
        pki.signature_verify = timed_sig  # type: ignore[method-assign]

        def restore() -> None:
            if prior_vrf is missing:
                pki.__dict__.pop("vrf_verify", None)
            else:
                pki.vrf_verify = prior_vrf  # type: ignore[method-assign]
            if prior_sig is missing:
                pki.__dict__.pop("signature_verify", None)
            else:
                pki.signature_verify = prior_sig  # type: ignore[method-assign]

        return restore

    # -- post-run inspection ----------------------------------------------------

    @property
    def lossy_counters(self) -> dict[str, int]:
        """How often each lossy-link fate fired (all zero when disabled)."""
        state = self._lossy
        if state is None:
            return {"drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0}
        return {
            "drops": state.drops,
            "duplicates": state.duplicates,
            "reorders": state.reorders,
            "corruptions": state.corruptions,
        }

    @property
    def lossy_by_kind(self) -> dict[str, dict[str, int]]:
        """Lossy fate counters split by message kind (empty when disabled)."""
        state = self._lossy
        if state is None:
            return {}
        return {
            fate: dict(sorted(kinds.items()))
            for fate, kinds in state.by_kind.items()
            if kinds
        }

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in range(self.n) if pid not in self.corrupted]

    @property
    def stopped_by_condition(self) -> bool:
        return self._stopped

    @property
    def deadlocked(self) -> bool:
        """True if the run ended with a correct process still blocked."""
        if self._stopped or self.exhausted:
            return False
        return any(pid in self._generators for pid in self.correct_pids)
