"""The simulation kernel: reliable links, adversarial delivery, corruption.

One :class:`Simulation` models one run.  The event loop is::

    while in-flight messages remain and the stop condition is unmet:
        seq  <- adversary.scheduler.choose(pool)   # all asynchrony is here
        deliver envelope(seq) to its destination
        let the corruption strategy react (budget f, no message removal)

Correct processes are generator coroutines (see
:mod:`repro.sim.process`); corrupted ones are driven by
:class:`~repro.sim.byzantine.ByzantineBehavior` hooks.  Reliable links:
nothing is ever dropped -- the adversary only reorders.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable

from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary
from repro.sim.events import (
    CorruptEvent,
    DeliverEvent,
    EventBus,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    summarize_payload,
)
from repro.sim.messages import Envelope, EnvelopeView, Message
from repro.sim.metrics import MetricsRecorder
from repro.sim.process import ProcessContext, ProtocolFactory, Wait

__all__ = ["EmptySchedulerPoolError", "SchedulerPool", "Simulation"]

DEFAULT_MAX_DELIVERIES = 2_000_000


class EmptySchedulerPoolError(RuntimeError):
    """A scheduler asked the pool for a message while nothing is in flight.

    The kernel never calls ``choose`` on an empty pool, so this means an
    adversary implementation indexed the pool outside ``choose`` (or a
    test drove the pool directly).  Named so adversary authors get a
    diagnosable failure instead of a bare ``randrange(0)`` traceback.
    """


class SchedulerPool:
    """The scheduler's window onto the in-flight message set.

    Payload access is refused unless the scheduler declared itself
    ``content_aware`` -- the mechanical enforcement of delayed adaptivity.
    """

    def __init__(self, simulation: "Simulation") -> None:
        self._simulation = simulation

    def __len__(self) -> int:
        return len(self._simulation._seq_list)

    def _require_messages(self) -> None:
        if not self._simulation._seq_list:
            scheduler = type(self._simulation.adversary.scheduler).__name__
            raise EmptySchedulerPoolError(
                f"scheduler {scheduler} requested a message from an empty "
                "pool: no messages are in flight"
            )

    def seq_at(self, index: int) -> int:
        self._require_messages()
        return self._simulation._seq_list[index]

    def random_seq(self, rng: random.Random) -> int:
        self._require_messages()
        return self._simulation._seq_list[rng.randrange(len(self._simulation._seq_list))]

    def view(self, seq: int) -> EnvelopeView:
        return EnvelopeView.of(self._simulation._in_flight[seq])

    def payload(self, seq: int) -> Message:
        if not self._simulation.adversary.scheduler.content_aware:
            raise PermissionError(
                "content-oblivious scheduler attempted to read a payload; "
                "this would violate the delayed-adaptive adversary model"
            )
        return self._simulation._in_flight[seq].payload


class Simulation:
    """One run of a protocol under one adversary.

    Parameters
    ----------
    n, f:
        System size and corruption budget.  ``f`` bounds the *total* number
        of corruptions (initial plus adaptive).
    pki:
        Trusted setup (generated before the run, as the paper assumes).
    adversary:
        Scheduler + corruption strategy + Byzantine behaviour factory.
    seed:
        Root of all per-process deterministic randomness.
    params:
        Arbitrary protocol parameter object exposed as ``ctx.params``.
    stop_condition:
        ``callable(sim) -> bool`` evaluated after every delivery; lets BA
        runs halt once every correct process decided even though the
        protocol itself loops forever.
    eager_wakeups:
        When True, ignore ``Wait.instances`` subscriptions and re-evaluate
        every pending condition after every delivery (the pre-subscription
        behaviour).  Exists so equivalence tests can diff the keyed and
        eager paths.
    profile:
        When True, wall-clock timers wrap the kernel sections (scheduler
        choice, delivery/stepping, signature+VRF verification) and every
        :meth:`~repro.sim.process.ProcessContext.span`; totals land in
        ``metrics.phase_timings``.  Off by default: timing every delivery
        is not free and wall-clock is the one observable that legitimately
        differs between identical runs.
    """

    def __init__(
        self,
        n: int,
        f: int,
        pki: PKI,
        adversary: Adversary,
        seed: int = 0,
        params: Any = None,
        max_deliveries: int = DEFAULT_MAX_DELIVERIES,
        stop_condition: Callable[["Simulation"], bool] | None = None,
        eager_wakeups: bool = False,
        profile: bool = False,
    ) -> None:
        if pki.n != n:
            raise ValueError("PKI size does not match n")
        if not 0 <= f < n:
            raise ValueError("need 0 <= f < n")
        self.n = n
        self.f = f
        self.pki = pki
        self.adversary = adversary
        self.seed = seed
        self.params = params
        self.max_deliveries = max_deliveries
        self.stop_condition = stop_condition
        self.eager_wakeups = eager_wakeups
        self.profile = profile
        self.metrics = MetricsRecorder()
        # The kernel event bus.  Emission sites read this list reference
        # directly: `if subscribers:` is the whole no-subscriber cost.
        self.events = EventBus()
        self._subscribers = self.events.subscribers
        self.deliveries = 0

        self.contexts = [ProcessContext(pid, self) for pid in range(n)]
        self.corrupted: set[int] = set()
        self.decided: set[int] = set()
        self.finished: set[int] = set()
        self.returns: dict[int, Any] = {}

        self._behaviors: dict[int, Any] = {}
        self._generators: dict[int, Any] = {}
        self._pending: dict[int, Wait | None] = {}
        self._factories: dict[int, ProtocolFactory] = {}

        self._in_flight: dict[int, Envelope] = {}
        self._seq_list: list[int] = []
        self._seq_pos: dict[int, int] = {}
        self._next_seq = 0
        self._pool = SchedulerPool(self)
        self._stopped = False
        self._started = False

    # -- configuration ---------------------------------------------------------

    def set_protocol(self, pid: int, factory: ProtocolFactory) -> None:
        """Install the protocol a (correct) process will run."""
        self._factories[pid] = factory

    def set_protocol_all(self, factory: ProtocolFactory) -> None:
        for pid in range(self.n):
            self.set_protocol(pid, factory)

    # -- kernel services used by ProcessContext ---------------------------------

    def submit(self, sender: int, dest: int, message: Message) -> None:
        """Place a message on the reliable link from ``sender`` to ``dest``."""
        if not 0 <= dest < self.n:
            raise ValueError(f"invalid destination {dest}")
        ctx = self.contexts[sender]
        envelope = Envelope(
            seq=self._next_seq,
            sender=sender,
            dest=dest,
            payload=message,
            depth=ctx.depth + 1,
            sender_correct=sender not in self.corrupted,
            sent_step=self.deliveries,
        )
        self._next_seq += 1
        self.metrics.record_send(envelope)
        if self._subscribers:
            self.events.emit(
                SendEvent(
                    step=self.deliveries,
                    seq=envelope.seq,
                    sender=sender,
                    dest=dest,
                    instance=message.instance,
                    message_kind=type(message).__name__,
                    words=message.words(),
                    depth=envelope.depth,
                    sender_correct=envelope.sender_correct,
                )
            )
        self._in_flight[envelope.seq] = envelope
        self._seq_pos[envelope.seq] = len(self._seq_list)
        self._seq_list.append(envelope.seq)
        scheduler = self.adversary.scheduler
        scheduler.on_submit(envelope.seq, EnvelopeView.of(envelope))
        if scheduler.content_aware:
            inspect = getattr(scheduler, "inspect_payload", None)
            if inspect is not None:
                inspect(envelope.seq, message, sender)

    def note_decision(self, pid: int) -> None:
        self.decided.add(pid)

    # -- corruption ---------------------------------------------------------------

    def corrupt(self, pid: int) -> bool:
        """Corrupt ``pid`` if the budget allows; returns True on success.

        Messages the process already submitted stay in flight untouched
        (no after-the-fact removal, no front-running).
        """
        if pid in self.corrupted or len(self.corrupted) >= self.f:
            return False
        self.corrupted.add(pid)
        if self._subscribers:
            self.events.emit(CorruptEvent(step=self.deliveries, pid=pid))
        self._generators.pop(pid, None)
        self._pending.pop(pid, None)
        behavior = self.adversary.behavior_factory(pid)
        self._behaviors[pid] = behavior
        ctx = self.contexts[pid]
        if self._started:
            behavior.on_corrupt(ctx)
        return True

    # -- correct-process stepping ----------------------------------------------

    def _advance(self, pid: int, value: Any, first: bool) -> None:
        """Run ``pid``'s generator until it blocks or returns."""
        generator = self._generators[pid]
        ctx = self.contexts[pid]
        spins = 0
        while True:
            spins += 1
            if spins > 100_000:
                # A condition that is immediately true on every yield would
                # otherwise livelock the kernel inside a single delivery.
                raise RuntimeError(
                    f"process {pid} resumed 100000 times without blocking; "
                    "its wait condition is probably unconditionally true"
                )
            try:
                wait = next(generator) if first else generator.send(value)
            except StopIteration as stop:
                self.returns[pid] = stop.value
                self.finished.add(pid)
                self._pending[pid] = None
                del self._generators[pid]
                return
            first = False
            # A condition may already be satisfiable from buffered messages.
            result = wait.condition(ctx.mailbox)
            if result is None:
                self._pending[pid] = wait
                if self._subscribers:
                    self.events.emit(
                        WaitBlockEvent(
                            step=self.deliveries,
                            pid=pid,
                            description=wait.description,
                            subscribed=wait.instances is not None,
                            depth=ctx.depth,
                        )
                    )
                return
            value = result

    def _deliver(self, envelope: Envelope) -> None:
        self.metrics.record_delivery(envelope)
        if self._subscribers:
            payload = envelope.payload
            self.events.emit(
                DeliverEvent(
                    step=self.deliveries,
                    seq=envelope.seq,
                    sender=envelope.sender,
                    dest=envelope.dest,
                    instance=payload.instance,
                    message_kind=type(payload).__name__,
                    words=payload.words(),
                    depth=envelope.depth,
                    sent_step=envelope.sent_step,
                    summary=summarize_payload(payload),
                    payload=payload,
                )
            )
        # The delivery counter advances before the delivery's effects, so
        # sends and decisions triggered by this delivery are stamped with
        # the post-delivery step (events above carry the pre-delivery one).
        self.deliveries += 1
        pid = envelope.dest
        ctx = self.contexts[pid]
        ctx.depth = max(ctx.depth, envelope.depth)
        if pid in self.corrupted:
            self._behaviors[pid].on_deliver(ctx, envelope)
            return
        ctx.mailbox.add(envelope.sender, envelope.payload)
        if ctx.background_handlers:
            for handler in list(ctx.background_handlers):
                handler(ctx.mailbox)
        if pid in self._generators:
            wait = self._pending.get(pid)
            if wait is not None:
                # Instance-keyed wakeup: a condition subscribed to a set of
                # instances provably cannot change its answer on a delivery
                # for any other instance, so skip the re-evaluation.
                if (
                    self.eager_wakeups
                    or wait.instances is None
                    or envelope.payload.instance in wait.instances
                ):
                    self.metrics.wait_evaluations += 1
                    result = wait.condition(ctx.mailbox)
                    if result is not None:
                        self._pending[pid] = None
                        if self._subscribers:
                            self.events.emit(
                                WaitWakeEvent(
                                    step=self.deliveries,
                                    pid=pid,
                                    description=wait.description,
                                    depth=ctx.depth,
                                )
                            )
                        self._advance(pid, result, first=False)
                else:
                    self.metrics.wait_skips += 1

    def _remove_in_flight(self, seq: int) -> Envelope:
        envelope = self._in_flight.pop(seq)
        position = self._seq_pos.pop(seq)
        last = self._seq_list.pop()
        if position < len(self._seq_list):
            self._seq_list[position] = last
            self._seq_pos[last] = position
        return envelope

    # -- main loop -----------------------------------------------------------------

    def _should_stop(self) -> bool:
        if self.stop_condition is None:
            return False
        return bool(self.stop_condition(self))

    def run(self) -> "Simulation":
        """Execute the run to completion; returns ``self`` for chaining."""
        if self._started:
            raise RuntimeError("a Simulation object runs at most once")
        self._started = True
        verify_base = self.pki.verification_counters()

        for pid in self.adversary.corruption.initial_corruptions(self.n, self.f):
            self.corrupt(pid)

        # Start Byzantine behaviours first: their initial messages being
        # already in flight when correct processes start only strengthens
        # the adversary.
        for pid in sorted(self.corrupted):
            self._behaviors[pid].on_start(self.contexts[pid])
        for pid in range(self.n):
            if pid in self.corrupted:
                continue
            factory = self._factories.get(pid)
            if factory is None:
                raise RuntimeError(f"no protocol installed for process {pid}")
            self._generators[pid] = factory(self.contexts[pid])
            self._pending[pid] = None
        for pid in range(self.n):
            if pid not in self.corrupted:
                self._advance(pid, None, first=True)

        scheduler = self.adversary.scheduler
        corruption = self.adversary.corruption
        profile = self.profile
        perf = time.perf_counter
        restore_verify = self._install_verify_timers() if profile else None
        try:
            while self._in_flight and self.deliveries < self.max_deliveries:
                if self._should_stop():
                    self._stopped = True
                    break
                if profile:
                    start = perf()
                    seq = scheduler.choose(self._pool)
                    chosen = perf()
                    self.metrics.add_timing("kernel.schedule", chosen - start)
                    envelope = self._remove_in_flight(seq)
                    scheduler.on_delivered(seq)
                    self._deliver(envelope)
                    self.metrics.add_timing("kernel.step", perf() - chosen)
                else:
                    seq = scheduler.choose(self._pool)
                    envelope = self._remove_in_flight(seq)
                    scheduler.on_delivered(seq)
                    self._deliver(envelope)
                if len(self.corrupted) < self.f:
                    view = EnvelopeView.of(envelope)
                    for pid in corruption.on_delivery(view, frozenset(self.corrupted)):
                        self.corrupt(pid)
            else:
                self._stopped = self._should_stop()
        finally:
            if restore_verify is not None:
                restore_verify()

        # A run that hits its stop condition on exactly the last permitted
        # delivery terminated normally; only report exhaustion when the
        # budget ran out *without* the condition holding.
        self.exhausted = self.deliveries >= self.max_deliveries and not self._stopped
        self.metrics.record_verification_counters(
            verify_base, self.pki.verification_counters()
        )
        return self

    def _install_verify_timers(self) -> Callable[[], None]:
        """Wrap the PKI's verify entry points with wall-clock accumulators.

        Only active under ``profile=True``.  The wrappers are instance
        attributes shadowing the bound methods, so the (possibly shared)
        PKI object is restored by the returned callable as soon as the run
        loop exits.  Verification time is nested inside ``kernel.step``.
        """
        pki = self.pki
        metrics = self.metrics
        perf = time.perf_counter
        original_vrf = pki.vrf_verify
        original_sig = pki.signature_verify

        def timed_vrf(process_id, alpha, output):
            start = perf()
            try:
                return original_vrf(process_id, alpha, output)
            finally:
                metrics.add_timing("kernel.verify", perf() - start)

        def timed_sig(process_id, message, signature):
            start = perf()
            try:
                return original_sig(process_id, message, signature)
            finally:
                metrics.add_timing("kernel.verify", perf() - start)

        pki.vrf_verify = timed_vrf  # type: ignore[method-assign]
        pki.signature_verify = timed_sig  # type: ignore[method-assign]

        def restore() -> None:
            del pki.vrf_verify
            del pki.signature_verify

        return restore

    # -- post-run inspection ----------------------------------------------------

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in range(self.n) if pid not in self.corrupted]

    @property
    def stopped_by_condition(self) -> bool:
        return self._stopped

    @property
    def deadlocked(self) -> bool:
        """True if the run ended with a correct process still blocked."""
        if self._stopped or self.exhausted:
            return False
        return any(pid in self._generators for pid in self.correct_pids)
