"""Discrete-event asynchronous distributed-system simulator.

Asynchrony is modelled exactly as in the paper: the adversary schedules
every message.  The simulator therefore funnels *all* nondeterminism
through one :class:`~repro.sim.adversary.Adversary` object whose view of
in-flight messages is capability-restricted -- content-oblivious schedulers
mechanically satisfy the paper's *delayed-adaptive* constraint (they are in
fact strictly weaker than the definition allows, which preserves every
theorem), while the content-aware scheduler used in the E6 ablation
deliberately violates it.

Protocols are written as Python generators that ``yield`` a single
reactive :class:`~repro.sim.process.Wait` condition; sub-protocols compose
with ``yield from``, so Algorithm 4's body reads like the paper's
pseudocode.
"""

from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    CommitteeTargetingCorruption,
    Adversary,
    ContentAwareMinWithholdScheduler,
    FIFOScheduler,
    PartitionScheduler,
    RandomScheduler,
    ReplayScheduler,
    Scheduler,
    ScriptedScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    EventBus,
    KernelEvent,
    PayloadSummary,
    PhaseEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    event_from_record,
    event_to_record,
)
from repro.sim.byzantine import (
    ByzantineBehavior,
    CrashBehavior,
    ScriptedBehavior,
    SilentBehavior,
)
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Envelope, Message
from repro.sim.flightrecorder import (
    FlightRecorder,
    critical_path,
    load_recording,
    save_recording,
)
from repro.sim.metrics import MetricsRecorder, ProtocolRecord, histogram
from repro.sim.monitors import (
    ApproverMonitor,
    CoinMonitor,
    CommitteeMonitor,
    Monitor,
    MonitorSuite,
    SafetyMonitor,
    ViolationReport,
    default_monitors,
)
from repro.sim.network import Simulation
from repro.sim.process import ProcessContext, Wait
from repro.sim.telemetry import (
    TelemetryProbe,
    load_telemetry,
    save_telemetry,
    telemetry_from_events,
)
from repro.sim.trace import TraceEvent, TraceRecorder, attach_trace
from repro.sim.traceexport import (
    chrome_trace_events,
    export_chrome_trace,
    save_chrome_trace,
)
from repro.sim.runner import (
    RunResult,
    run_protocol,
    stop_when_all_decided,
    stop_when_all_returned,
)

__all__ = [
    "AdaptiveFirstSpeakersCorruption",
    "CommitteeTargetingCorruption",
    "Adversary",
    "ApproverMonitor",
    "ByzantineBehavior",
    "CoinMonitor",
    "CommitteeMonitor",
    "ContentAwareMinWithholdScheduler",
    "CorruptEvent",
    "CrashBehavior",
    "DecideEvent",
    "DeliverEvent",
    "Envelope",
    "EventBus",
    "FIFOScheduler",
    "FlightRecorder",
    "KernelEvent",
    "Mailbox",
    "Monitor",
    "MonitorSuite",
    "PartitionScheduler",
    "Message",
    "MetricsRecorder",
    "PayloadSummary",
    "PhaseEvent",
    "ProcessContext",
    "ProtocolRecord",
    "RandomScheduler",
    "ReplayScheduler",
    "RunResult",
    "SafetyMonitor",
    "Scheduler",
    "SendEvent",
    "ScriptedBehavior",
    "ScriptedScheduler",
    "SilentBehavior",
    "Simulation",
    "StaticCorruption",
    "TargetedDelayScheduler",
    "TelemetryProbe",
    "TraceEvent",
    "TraceRecorder",
    "ViolationReport",
    "Wait",
    "WaitBlockEvent",
    "WaitWakeEvent",
    "attach_trace",
    "chrome_trace_events",
    "critical_path",
    "default_monitors",
    "event_from_record",
    "event_to_record",
    "export_chrome_trace",
    "histogram",
    "load_recording",
    "load_telemetry",
    "run_protocol",
    "save_chrome_trace",
    "save_recording",
    "save_telemetry",
    "telemetry_from_events",
    "stop_when_all_decided",
    "stop_when_all_returned",
]
