"""Discrete-event asynchronous distributed-system simulator.

Asynchrony is modelled exactly as in the paper: the adversary schedules
every message.  The simulator therefore funnels *all* nondeterminism
through one :class:`~repro.sim.adversary.Adversary` object whose view of
in-flight messages is capability-restricted -- content-oblivious schedulers
mechanically satisfy the paper's *delayed-adaptive* constraint (they are in
fact strictly weaker than the definition allows, which preserves every
theorem), while the content-aware scheduler used in the E6 ablation
deliberately violates it.

Protocols are written as Python generators that ``yield`` a single
reactive :class:`~repro.sim.process.Wait` condition; sub-protocols compose
with ``yield from``, so Algorithm 4's body reads like the paper's
pseudocode.
"""

from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    CommitteeTargetingCorruption,
    Adversary,
    ContentAwareMinWithholdScheduler,
    FIFOScheduler,
    PartitionScheduler,
    RandomScheduler,
    ReplayScheduler,
    Scheduler,
    ScriptedScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.byzantine import (
    ByzantineBehavior,
    CrashBehavior,
    ScriptedBehavior,
    SilentBehavior,
)
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Envelope, Message
from repro.sim.metrics import MetricsRecorder
from repro.sim.network import Simulation
from repro.sim.process import ProcessContext, Wait
from repro.sim.trace import TraceEvent, TraceRecorder, attach_trace
from repro.sim.runner import (
    RunResult,
    run_protocol,
    stop_when_all_decided,
    stop_when_all_returned,
)

__all__ = [
    "AdaptiveFirstSpeakersCorruption",
    "CommitteeTargetingCorruption",
    "Adversary",
    "ByzantineBehavior",
    "ContentAwareMinWithholdScheduler",
    "CrashBehavior",
    "Envelope",
    "FIFOScheduler",
    "Mailbox",
    "PartitionScheduler",
    "Message",
    "MetricsRecorder",
    "ProcessContext",
    "RandomScheduler",
    "ReplayScheduler",
    "RunResult",
    "Scheduler",
    "ScriptedBehavior",
    "ScriptedScheduler",
    "SilentBehavior",
    "Simulation",
    "StaticCorruption",
    "TargetedDelayScheduler",
    "TraceEvent",
    "TraceRecorder",
    "attach_trace",
    "Wait",
    "run_protocol",
    "stop_when_all_decided",
    "stop_when_all_returned",
]
