"""Schedule-fuzzing mechanism: candidates, typed mutations, corruption moves.

A recorded run fixes everything about a schedule -- the ``(sender, dest)``
delivery order, the exact envelope seqs, the corruption sites, the link
behaviour.  The fuzzer explores the neighbourhood of that recording by
applying *typed* mutations to a :class:`FuzzCandidate`:

========================  ====================================================
mutation                  effect
========================  ====================================================
``swap_adjacent``         exchange two neighbouring deliveries
``swap_random``           exchange two arbitrary deliveries
``delay_delivery``        move one delivery later in the schedule
``drop_delivery``         remove one delivery (drop-as-delay: the message is
                          delayed past the end of the run, a legal
                          asynchronous schedule -- the minimizer's move)
``move_corruption``       re-site a recorded corruption to a different
                          delivery count (via :class:`ScheduledCorruption`)
``lossy_duplicate``       raise the lossy-link duplicate rate
``lossy_corrupt``         raise the lossy-link bit-corrupt rate
``lossy_explore``         abandon seq-exact replay: run a fresh seeded random
                          schedule under a perturbed lossy config (the only
                          way to exercise drop/reorder fates, which make the
                          recorded schedule unrealizable)
``lossy_perturb``         nudge one rate of an existing lossy config
========================  ====================================================

Everything here is deterministic given the mutation RNG; policy (budget,
novelty feedback, corpus admission, counterexample triage) lives in
:mod:`repro.experiments.fuzzing`.  Mutated schedules that the protocol
cannot realize simply make the replay scheduler raise ``RuntimeError``;
the driver treats that as "candidate unrealizable", exactly like the
minimizer does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

from repro.sim.adversary import CorruptionStrategy
from repro.sim.messages import EnvelopeView
from repro.sim.network import LossyLinkConfig

__all__ = [
    "FuzzCandidate",
    "MUTATIONS",
    "MutationContext",
    "ScheduledCorruption",
    "mutate",
]

# Rate ceilings keep mutated configs in the regime where most candidates
# still terminate: a near-1.0 drop rate just deadlocks everything.
_MAX_RATE = 0.5
_MAX_DUPLICATE = 0.9


@dataclass(frozen=True)
class FuzzCandidate:
    """One point in the fuzzer's search space.

    ``order``/``seqs`` describe a seq-exact replay schedule;
    ``lossy``/``corrupt_after`` layer link faults and corruption re-siting
    on top of it.  ``explore_seed`` switches execution from seq-exact
    replay to a seeded random scheduler (set by ``lossy_explore``); the
    schedule fields then only carry the lineage's delivery budget.
    """

    order: tuple[tuple[int, int], ...]
    seqs: tuple[int, ...]
    lossy: LossyLinkConfig | None = None
    corrupt_after: tuple[tuple[int, int], ...] | None = None
    explore_seed: int | None = None
    mutation: str = "seed"
    parent: int = -1

    def to_dict(self) -> dict[str, Any]:
        return {
            "mutation": self.mutation,
            "parent": self.parent,
            "order": [list(link) for link in self.order],
            "seqs": list(self.seqs),
            "lossy": self.lossy.to_dict() if self.lossy is not None else None,
            "corrupt_after": (
                [list(entry) for entry in self.corrupt_after]
                if self.corrupt_after is not None
                else None
            ),
            "explore_seed": self.explore_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzCandidate":
        return cls(
            order=tuple((s, d) for s, d in data["order"]),
            seqs=tuple(data["seqs"]),
            lossy=(
                LossyLinkConfig.from_dict(data["lossy"])
                if data.get("lossy")
                else None
            ),
            corrupt_after=(
                tuple((pid, after) for pid, after in data["corrupt_after"])
                if data.get("corrupt_after")
                else None
            ),
            explore_seed=data.get("explore_seed"),
            mutation=data.get("mutation", "seed"),
            parent=data.get("parent", -1),
        )


@dataclass(frozen=True)
class MutationContext:
    """What the mutations may read about the recording being fuzzed."""

    corrupted: tuple[int, ...]  # pids the recorded run corrupted
    deliveries: int             # length of the recorded schedule


class ScheduledCorruption(CorruptionStrategy):
    """Corrupt each pid once the run has seen a given delivery count.

    The fuzzer's ``move_corruption`` mutation: the recorded corruption
    set is kept but each corruption is re-sited to fire after
    ``after_deliveries`` observed deliveries (0 = initial corruption,
    like :class:`~repro.sim.adversary.StaticCorruption`).  Stateful --
    build a fresh instance per run.
    """

    def __init__(self, schedule: Iterable[tuple[int, int]]) -> None:
        self._schedule = tuple((int(pid), int(after)) for pid, after in schedule)
        self._seen = 0

    def initial_corruptions(self, n: int, f: int) -> set[int]:
        return {pid for pid, after in self._schedule if after <= 0}

    def on_delivery(
        self, view: EnvelopeView, corrupted: frozenset[int]
    ) -> set[int]:
        self._seen += 1
        return {
            pid
            for pid, after in self._schedule
            if 0 < after <= self._seen and pid not in corrupted
        }


# -- schedule mutations --------------------------------------------------------


def _swap(candidate: FuzzCandidate, i: int, j: int) -> FuzzCandidate:
    order = list(candidate.order)
    seqs = list(candidate.seqs)
    order[i], order[j] = order[j], order[i]
    seqs[i], seqs[j] = seqs[j], seqs[i]
    return replace(candidate, order=tuple(order), seqs=tuple(seqs))


def _swap_adjacent(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if len(candidate.order) < 2:
        return None
    i = rng.randrange(len(candidate.order) - 1)
    return _swap(candidate, i, i + 1)


def _swap_random(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if len(candidate.order) < 2:
        return None
    i, j = rng.sample(range(len(candidate.order)), 2)
    return _swap(candidate, i, j)


def _delay_delivery(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if len(candidate.order) < 2:
        return None
    i = rng.randrange(len(candidate.order) - 1)
    j = rng.randrange(i + 1, len(candidate.order))
    order = list(candidate.order)
    seqs = list(candidate.seqs)
    order.insert(j, order.pop(i))
    seqs.insert(j, seqs.pop(i))
    return replace(candidate, order=tuple(order), seqs=tuple(seqs))


def _drop_delivery(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if not candidate.order:
        return None
    i = rng.randrange(len(candidate.order))
    order = list(candidate.order)
    seqs = list(candidate.seqs)
    del order[i], seqs[i]
    return replace(candidate, order=tuple(order), seqs=tuple(seqs))


def _move_corruption(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if not ctx.corrupted:
        return None
    sites = dict(candidate.corrupt_after or ((pid, 0) for pid in ctx.corrupted))
    pid = ctx.corrupted[rng.randrange(len(ctx.corrupted))]
    sites[pid] = rng.randrange(len(candidate.order) + 1)
    return replace(candidate, corrupt_after=tuple(sorted(sites.items())))


# -- lossy-link mutations ------------------------------------------------------


def _base_lossy(candidate: FuzzCandidate) -> LossyLinkConfig:
    return candidate.lossy if candidate.lossy is not None else LossyLinkConfig()


def _clamped(config: LossyLinkConfig, **updates: float) -> LossyLinkConfig | None:
    """A new config with ``updates`` applied, or None when the fates
    would no longer be mutually exclusive."""
    rates = {
        "drop_rate": config.drop_rate,
        "duplicate_rate": config.duplicate_rate,
        "reorder_rate": config.reorder_rate,
        "corrupt_rate": config.corrupt_rate,
    }
    rates.update(updates)
    if sum(rates.values()) > 1.0:
        return None
    return LossyLinkConfig(reorder_hold=config.reorder_hold, **rates)


def _lossy_duplicate(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    base = _base_lossy(candidate)
    rate = min(_MAX_DUPLICATE, base.duplicate_rate + 0.1 + 0.4 * rng.random())
    config = _clamped(base, duplicate_rate=rate)
    if config is None:
        return None
    return replace(candidate, lossy=config)


def _lossy_corrupt(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    base = _base_lossy(candidate)
    rate = min(_MAX_RATE, base.corrupt_rate + 0.05 + 0.25 * rng.random())
    config = _clamped(base, corrupt_rate=rate)
    if config is None:
        return None
    return replace(candidate, lossy=config)


def _lossy_explore(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    base = _base_lossy(candidate)
    config = _clamped(
        base,
        drop_rate=min(0.15, base.drop_rate + 0.05 * rng.random()),
        duplicate_rate=min(_MAX_DUPLICATE, base.duplicate_rate + 0.2 * rng.random()),
        reorder_rate=min(0.3, base.reorder_rate + 0.15 * rng.random()),
    )
    if config is None or not config.active:
        return None
    return replace(
        candidate, lossy=config, explore_seed=rng.getrandbits(32)
    )


def _lossy_perturb(
    candidate: FuzzCandidate, rng: random.Random, ctx: MutationContext
) -> FuzzCandidate | None:
    if candidate.lossy is None:
        return None
    base = candidate.lossy
    # Drop/reorder make a recorded schedule unrealizable; only perturb
    # them on explore candidates (which run a fresh random schedule).
    names = ["duplicate_rate", "corrupt_rate"]
    if candidate.explore_seed is not None:
        names += ["drop_rate", "reorder_rate"]
    name = names[rng.randrange(len(names))]
    ceiling = _MAX_DUPLICATE if name == "duplicate_rate" else _MAX_RATE
    value = getattr(base, name) + rng.uniform(-0.1, 0.1)
    config = _clamped(base, **{name: min(ceiling, max(0.0, value))})
    if config is None:
        return None
    explore_seed = candidate.explore_seed
    if explore_seed is not None:
        explore_seed = rng.getrandbits(32)
    return replace(candidate, lossy=config, explore_seed=explore_seed)


MUTATIONS: dict[
    str,
    Callable[[FuzzCandidate, random.Random, MutationContext], FuzzCandidate | None],
] = {
    "swap_adjacent": _swap_adjacent,
    "swap_random": _swap_random,
    "delay_delivery": _delay_delivery,
    "drop_delivery": _drop_delivery,
    "move_corruption": _move_corruption,
    "lossy_duplicate": _lossy_duplicate,
    "lossy_corrupt": _lossy_corrupt,
    "lossy_explore": _lossy_explore,
    "lossy_perturb": _lossy_perturb,
}


def mutate(
    candidate: FuzzCandidate,
    rng: random.Random,
    ctx: MutationContext,
    names: Sequence[str] | None = None,
    attempts: int = 8,
) -> FuzzCandidate | None:
    """Apply one applicable typed mutation; None if all attempts misfire.

    Draws mutation kinds uniformly (from ``names`` or the full registry)
    and retries when the drawn mutation is inapplicable to this candidate
    (e.g. ``move_corruption`` with no recorded corruption).  The result
    is stamped with the mutation name; the caller stamps lineage.
    """
    pool = list(names) if names is not None else list(MUTATIONS)
    for _ in range(attempts):
        name = pool[rng.randrange(len(pool))]
        mutated = MUTATIONS[name](candidate, rng, ctx)
        if mutated is not None and mutated != candidate:
            return replace(mutated, mutation=name)
    return None
