"""The kernel event bus: typed run events for zero-or-more subscribers.

The flight-recorder observability layer rests on this module.  The
:class:`~repro.sim.network.Simulation` kernel emits one frozen event
object per observable occurrence -- sends, deliveries, corruptions,
decisions, wait blocking/waking, protocol-phase entry and exit -- to an
:class:`EventBus`.  Subscribers are plain callables; the kernel guards
every emission site with a truthiness check on the subscriber list, so a
run with nothing attached pays one attribute read and one branch per
site (measured by ``benchmarks/bench_observability_overhead.py``).

Events reference live kernel objects only through immutable snapshots:
a :class:`DeliverEvent` carries the payload *reference* for subscribers
that want to inspect it at delivery time (the trusted-measurement use
case, e.g. experiment E1b), plus a :class:`PayloadSummary` that stays
valid even if the protocol later mutates or reuses the payload object.
Anything persisted must persist the summary, never the reference.

``step`` on every event is the kernel's global delivery counter at
emission time, so events are totally ordered by (step, index-in-log).

The JSONL flight-recording schema is versioned here
(:data:`EVENT_SCHEMA`, :data:`EVENT_SCHEMA_VERSION`); bump the version
whenever an event gains, loses or renames a field.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Hashable, Union

if TYPE_CHECKING:
    from repro.sim.messages import Message

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_SCHEMA_VERSION",
    "CorruptEvent",
    "DecideEvent",
    "DeliverEvent",
    "EventBus",
    "KernelEvent",
    "PayloadSummary",
    "PhaseEvent",
    "SendEvent",
    "WaitBlockEvent",
    "WaitWakeEvent",
    "event_from_record",
    "event_to_record",
    "summarize_payload",
]

EVENT_SCHEMA = "repro.flight"
# v2: WaitBlockEvent/WaitWakeEvent carry the parked process's causal
# depth, so wait latency is measurable in causal time, not just steps;
# DeliverEvent carries ``sent_step`` so link latency (how long the
# adversary held a message) is a per-event subtraction instead of a
# send/deliver join.
EVENT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class PayloadSummary:
    """Immutable snapshot of a protocol message, safe to persist.

    Captures the complexity-relevant facts (kind, instance, size in
    paper-words) plus the payload's ``repr`` at snapshot time.  Recording
    the summary instead of the live object keeps recordings valid even if
    a protocol mutates or reuses payload objects after delivery.
    """

    kind: str
    instance: Hashable
    words: int
    text: str


def summarize_payload(message: "Message") -> PayloadSummary:
    """Snapshot ``message`` into an immutable :class:`PayloadSummary`."""
    return PayloadSummary(
        kind=type(message).__name__,
        instance=message.instance,
        words=message.words(),
        text=repr(message),
    )


@dataclass(frozen=True)
class SendEvent:
    """A message entered the network (``Simulation.submit``)."""

    kind = "send"

    step: int
    seq: int
    sender: int
    dest: int
    instance: Hashable
    message_kind: str
    words: int
    depth: int
    sender_correct: bool


@dataclass(frozen=True)
class DeliverEvent:
    """A message left the network and reached its destination.

    ``sent_step`` is the delivery counter when the message entered the
    network (the matching :class:`SendEvent`'s ``step``), so
    ``step - sent_step`` is the link latency without a send/deliver
    join.  ``payload`` is the live message object -- valid to inspect
    *during* the subscriber callback, never to store (store
    ``summary``).
    """

    kind = "deliver"

    step: int
    seq: int
    sender: int
    dest: int
    instance: Hashable
    message_kind: str
    words: int
    depth: int
    sent_step: int
    summary: PayloadSummary
    payload: Any = None


@dataclass(frozen=True)
class CorruptEvent:
    """A process fell to the adversary (budget-permitting corruption)."""

    kind = "corrupt"

    step: int
    pid: int


@dataclass(frozen=True)
class DecideEvent:
    """A correct process recorded its irrevocable decision."""

    kind = "decide"

    step: int
    pid: int
    value: Any
    depth: int


@dataclass(frozen=True)
class WaitBlockEvent:
    """A protocol coroutine parked on an unsatisfied wait-condition.

    ``depth`` is the process's causal depth at the moment it parked;
    paired with the matching :class:`WaitWakeEvent`'s depth it gives the
    wait's latency in causal time (how many message hops elapsed while
    the process was blocked), the unit the paper's running-time claims
    are stated in.
    """

    kind = "wait_block"

    step: int
    pid: int
    description: str
    subscribed: bool
    depth: int


@dataclass(frozen=True)
class WaitWakeEvent:
    """A parked wait-condition fired and its coroutine resumed.

    ``depth`` is the process's causal depth at wake time (already
    advanced by the delivery that satisfied the condition).
    """

    kind = "wait_wake"

    step: int
    pid: int
    description: str
    depth: int


@dataclass(frozen=True)
class PhaseEvent:
    """A protocol span opened (``enter``) or closed (``exit``).

    Emitted by :meth:`repro.sim.process.ProcessContext.span`; ``phase``
    is the span label (e.g. ``"ba-round"``, ``"whp_coin"``), ``instance``
    the protocol instance it covers.  Round starts and ends are phase
    events with phase ``"ba-round"``.
    """

    kind = "phase"

    step: int
    pid: int
    phase: str
    instance: Hashable
    action: str  # "enter" | "exit"


KernelEvent = Union[
    SendEvent,
    DeliverEvent,
    CorruptEvent,
    DecideEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    PhaseEvent,
]

_EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        SendEvent,
        DeliverEvent,
        CorruptEvent,
        DecideEvent,
        WaitBlockEvent,
        WaitWakeEvent,
        PhaseEvent,
    )
}


class EventBus:
    """Dispatches kernel events to zero or more subscriber callables.

    The kernel holds a reference to :attr:`subscribers` and checks its
    truthiness before *constructing* an event, so the no-subscriber cost
    per emission site is one attribute read plus one branch.  Subscribers
    are invoked synchronously in subscription order and must not mutate
    the kernel or the payloads they are shown.
    """

    __slots__ = ("subscribers",)

    def __init__(self) -> None:
        self.subscribers: list[Callable[[KernelEvent], None]] = []

    def subscribe(self, callback: Callable[[KernelEvent], None]) -> Callable:
        """Register ``callback``; returns it (handy for unsubscribe)."""
        if callback not in self.subscribers:
            self.subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[KernelEvent], None]) -> None:
        if callback in self.subscribers:
            self.subscribers.remove(callback)

    def emit(self, event: KernelEvent) -> None:
        for callback in self.subscribers:
            callback(event)

    def __bool__(self) -> bool:
        return bool(self.subscribers)


# -- serialization -------------------------------------------------------------


def event_to_record(event: KernelEvent) -> dict[str, Any]:
    """Flatten ``event`` into a JSON-friendly dict (``k`` = event kind).

    Deliver events drop the live payload reference and inline the
    summary's fields; everything else serialises field-for-field.  The
    inverse is :func:`event_from_record`.
    """
    record: dict[str, Any] = {"k": event.kind}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if spec.name == "payload":
            continue
        if spec.name == "summary":
            record["payload_words"] = value.words
            record["payload_text"] = value.text
            continue
        record[spec.name] = value
    return record


def _as_instance(value: Any) -> Hashable:
    """Recover hashable instance labels from JSON round-trips (list->tuple)."""
    if isinstance(value, list):
        return tuple(_as_instance(item) for item in value)
    return value


def event_from_record(
    record: dict[str, Any], version: int = EVENT_SCHEMA_VERSION
) -> KernelEvent:
    """Rebuild a typed event from :func:`event_to_record` output.

    Tolerates JSON round-trips: instance tuples come back from lists.
    Raises ``ValueError`` on unknown kinds or an unknown schema
    ``version`` (pass the recording header's version through), so schema
    drift fails loudly instead of misrendering.
    """
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unknown {EVENT_SCHEMA} schema version {version!r}: this build "
            f"reads version {EVENT_SCHEMA_VERSION}; re-record the run or "
            "load it with a matching build"
        )
    data = dict(record)
    kind = data.pop("k", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r} in record {record!r}")
    if cls is DeliverEvent:
        data["summary"] = PayloadSummary(
            kind=data["message_kind"],
            instance=_as_instance(data["instance"]),
            words=data.pop("payload_words"),
            text=data.pop("payload_text"),
        )
    if "instance" in data:
        data["instance"] = _as_instance(data["instance"])
    if "value" in data:
        data["value"] = _as_instance(data["value"])
    return cls(**data)
