"""Protocol message base class and the network envelope that carries it.

Every protocol message declares its size in *words* using the paper's
complexity convention (Section 2): a word holds a signature, a VRF output,
or a constant-size value.  The envelope adds the routing metadata the
kernel and the adversary work with -- crucially, schedulers receive the
envelope's *metadata view* only, never the payload, unless they are
explicitly content-aware (ablation E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Envelope", "Message"]


@dataclass
class Message:
    """Base class for protocol messages.

    ``instance`` names the protocol instance the message belongs to (for
    example ``("coin", 3)`` or ``("ba", 2, "approve-est")``); mailboxes
    index on it so that messages for instances a slow process has not yet
    reached are buffered, not lost.
    """

    instance: Hashable

    def words(self) -> int:
        """Size in paper-words.  Subclasses override; default is one word."""
        return 1


@dataclass(slots=True)
class Envelope:
    """One in-flight message: payload plus routing and causality metadata.

    ``sent_step`` is the kernel's delivery counter when the message was
    submitted; the delivery event surfaces it so subscribers can read
    link latency off a single event.  Slotted but not frozen: the kernel
    creates one per (message, destination) pair -- the single hottest
    allocation site -- and a frozen dataclass pays seven
    ``object.__setattr__`` calls per construction.  Kernel discipline:
    nothing mutates an envelope after submission.
    """

    seq: int
    sender: int
    dest: int
    payload: Message
    depth: int
    sender_correct: bool
    sent_step: int

    @property
    def instance(self) -> Hashable:
        return self.payload.instance


@dataclass(frozen=True)
class EnvelopeView:
    """The metadata a content-oblivious scheduler is allowed to see.

    Exposes routing information and the instance/kind labels (which the
    adversary could infer from traffic analysis anyway) but *not* the
    payload values -- this is how the delayed-adaptive restriction is
    enforced mechanically.
    """

    seq: int
    sender: int
    dest: int
    instance: Hashable
    kind: str
    depth: int

    @staticmethod
    def of(envelope: Envelope) -> "EnvelopeView":
        return EnvelopeView(
            seq=envelope.seq,
            sender=envelope.sender,
            dest=envelope.dest,
            instance=envelope.instance,
            kind=type(envelope.payload).__name__,
            depth=envelope.depth,
        )
