"""Algorithm 2: the committee-based WHP coin.

The shared coin of Algorithm 1 with its two all-to-all phases replaced by
two sampled committees.  Only FIRST-committee members reveal VRF values;
only SECOND-committee members relay minima; everyone listens and outputs
the LSB of the minimum after W valid SECOND messages.  Word complexity
O(nλ) = Õ(n); success rate (18d² + 27d - 1)/(3 (5+6d)(1-d)(1+9d)) whp
(Lemma B.7), and liveness holds whp because each committee contains at
least W correct members (S3).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.committees import membership_checker, sample
from repro.core.messages import (
    CoinValue,
    FirstMsg,
    SecondMsg,
    coin_value_alpha,
    coin_value_checker,
)
from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["whp_coin"]

_FIRST_ROLE = "first"
_SECOND_ROLE = "second"


def whp_coin(
    ctx: ProcessContext, round_id: Hashable, params: ProtocolParams | None = None
) -> Protocol:
    """Run one WHP-coin instance; returns the coin bit (0 or 1).

    All correct processes must invoke the same ``round_id`` causally
    independently of each other's progress (the BA protocol guarantees
    this by flipping the coin after proposals are fixed).

    Observability: the invocation runs inside a ``whp_coin`` span; on
    completion the process annotates one ``coin`` record (its outcome bit
    -- the rollup checks unanimity per invocation) and two ``committee``
    records (the validated FIRST/SECOND membership counts it observed,
    feeding the observed committee-size histograms).
    """
    params = params or ctx.params
    instance = ("whp_coin", round_id)
    committee_quorum = params.committee_quorum
    pki = ctx.pki
    # Hoisted validators (same checks/counters as the free functions).
    valid_first_member = membership_checker(pki, instance, _FIRST_ROLE, params)
    valid_second_member = membership_checker(pki, instance, _SECOND_ROLE, params)
    valid_value = coin_value_checker(pki, instance, params, _FIRST_ROLE)

    in_first, first_proof = sample(ctx, instance, _FIRST_ROLE, params)
    if in_first:
        my_output = ctx.vrf(coin_value_alpha(instance))
        my_value = CoinValue(
            value=my_output.value,
            origin=ctx.pid,
            vrf=my_output,
            origin_membership=first_proof,
        )
        ctx.broadcast(FirstMsg(instance, coin_value=my_value, membership=first_proof))

    in_second, second_proof = sample(ctx, instance, _SECOND_ROLE, params)

    # vi starts at infinity (None): non-members of the SECOND committee
    # only learn values through SECOND messages.  (Pseudocode line 3 also
    # seeds a FIRST-committee member's vi with its own value; we fold that
    # value in through its self-delivered FIRST instead, which only second
    # members consume -- strictly *more* homogeneous across processes, so
    # every agreement bound is preserved.)
    state: dict = {"min": None, "sent_second": False}
    first_senders: set[int] = set()
    second_senders: set[int] = set()
    cursor = 0

    def consider(coin_value: CoinValue) -> None:
        if state["min"] is None or coin_value.value < state["min"].value:
            state["min"] = coin_value

    stream: list | None = None

    def step(mailbox: Mailbox):
        nonlocal cursor, stream
        s = stream
        if s is None:
            # Identity-stable once created (append-only): cache the list.
            s = mailbox.stream(instance)
            if type(s) is list:
                stream = s
        while cursor < len(s):
            sender, msg = s[cursor]
            cursor += 1
            if isinstance(msg, FirstMsg):
                # Only SECOND-committee members act on FIRST messages.
                if not in_second or sender in first_senders:
                    continue
                if msg.coin_value.origin != sender:
                    continue
                if not valid_first_member(sender, msg.membership):
                    continue
                if not valid_value(msg.coin_value):
                    continue
                first_senders.add(sender)
                consider(msg.coin_value)
            elif isinstance(msg, SecondMsg):
                if sender in second_senders:
                    continue
                if not valid_second_member(sender, msg.membership):
                    continue
                if not valid_value(msg.coin_value):
                    continue
                second_senders.add(sender)
                consider(msg.coin_value)
        if (
            in_second
            and not state["sent_second"]
            and len(first_senders) >= committee_quorum
        ):
            state["sent_second"] = True
            ctx.broadcast(
                SecondMsg(instance, coin_value=state["min"], membership=second_proof)
            )
        if len(second_senders) >= committee_quorum:
            return state["min"].value & 1
        return None

    with ctx.span("whp_coin", instance):
        # min_count: the earliest side effect (a SECOND-committee member
        # broadcasting its SECOND) needs W valid FIRSTs; returning needs W
        # valid SECONDs -- either way, at least W messages must be in.
        result = yield Wait(
            step,
            description=f"whp_coin{instance}",
            instances={instance},
            min_count=committee_quorum,
        )
    ctx.annotate(
        "committee", instance=instance, role=_FIRST_ROLE, size=len(first_senders)
    )
    ctx.annotate(
        "committee", instance=instance, role=_SECOND_ROLE, size=len(second_senders)
    )
    ctx.annotate(
        "coin",
        variant="whp",
        instance=instance,
        outcome=result,
        in_first=in_first,
        in_second=in_second,
    )
    return result
