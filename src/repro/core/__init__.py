"""The paper's contribution: Algorithms 1-4 and validated committee sampling.

* :func:`~repro.core.shared_coin.shared_coin` -- Algorithm 1, the
  full-participation VRF shared coin (O(n²) words).
* :mod:`~repro.core.committees` -- validated committee sampling
  (Section 5.1): ``sample`` / ``committee_val``.
* :func:`~repro.core.whp_coin.whp_coin` -- Algorithm 2, the
  committee-based WHP coin (Õ(n) words).
* :func:`~repro.core.approver.approve` -- Algorithm 3, the committee-based
  approver (Õ(n) words).
* :func:`~repro.core.agreement.byzantine_agreement` -- Algorithm 4,
  Byzantine Agreement WHP in O(1) expected rounds and Õ(n) expected words.
* :class:`~repro.core.params.ProtocolParams` -- n, f, ε, λ, d, W, B with
  the paper's feasibility windows.
"""

from repro.core.agreement import BOT, agreement_round, byzantine_agreement
from repro.core.hybrid import hybrid_agreement
from repro.core.multivalued import NO_DECISION, multivalued_agreement
from repro.core.approver import approve
from repro.core.committees import (
    committee_seed,
    committee_val,
    sample,
    sample_committee,
    sampling_threshold,
)
from repro.core.messages import (
    CoinValue,
    EchoMsg,
    FirstMsg,
    InitMsg,
    OkMsg,
    SecondMsg,
    coin_value_alpha,
    echo_signing_bytes,
    validate_coin_value,
)
from repro.core.params import ProtocolParams, paper_d_window, paper_epsilon_window
from repro.core.shared_coin import shared_coin
from repro.core.whp_coin import whp_coin

__all__ = [
    "BOT",
    "CoinValue",
    "EchoMsg",
    "FirstMsg",
    "InitMsg",
    "OkMsg",
    "ProtocolParams",
    "SecondMsg",
    "agreement_round",
    "approve",
    "byzantine_agreement",
    "hybrid_agreement",
    "multivalued_agreement",
    "NO_DECISION",
    "coin_value_alpha",
    "committee_seed",
    "committee_val",
    "echo_signing_bytes",
    "paper_d_window",
    "paper_epsilon_window",
    "sample",
    "sample_committee",
    "sampling_threshold",
    "shared_coin",
    "validate_coin_value",
    "whp_coin",
]
