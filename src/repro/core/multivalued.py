"""Multi-valued Byzantine Agreement via reduction to binary BA WHP.

The paper solves *binary* BA; [3] (Abraham-Malkhi-Spiegelman) get
multi-valued at O(n²).  This extension implements the classical
weak-validity reduction on top of our Algorithm 4:

1. **VAL phase** -- every process signs and broadcasts its input value,
   then waits for n-f valid VAL messages.  If all n-f carry the same
   value v, it enters the binary agreement with bit 1 and broadcasts a
   *certificate* for v (the quorum of signatures); otherwise bit 0.
2. **Binary agreement** (Algorithm 4's rounds) on the bit.
3. A decided 0 becomes the fallback :data:`NO_DECISION`; a decided 1 is
   resolved to a concrete value by waiting for any valid certificate
   CERT(v) -- n-f distinct signatures on VAL(v).

Why it is safe (n > 3f): bit 1 deciding means some correct process
proposed 1 (binary validity), i.e. saw n-f identical VALs.  Two
certificates for different values would need two (n-f)-quorums of signed
VALs; the quorums intersect in a correct process, and correct processes
sign exactly one VAL -- so every valid certificate names the same v.
Liveness: certificates are broadcast *before* the binary phase, so by the
time any process decides 1 its certificate is already on reliable links
to everyone; and like Algorithm 4, the reduction keeps participating in
binary rounds forever so laggards' committees stay populated.

Properties (whp, inherited from Algorithm 4): Agreement; Termination;
**weak validity** -- unanimous correct inputs decide that input, and any
non-⊥ decision was some correct process's input.  Word complexity O(n²)
from the VAL/CERT phases; committee-izing those is exactly the future
work the paper leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.agreement import agreement_round
from repro.core.params import ProtocolParams
from repro.crypto.hashing import encode
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["CertMsg", "NO_DECISION", "ValMsg", "multivalued_agreement"]

# The fallback decision when no proposed value gathers a unanimous quorum.
NO_DECISION = "<no-agreement>"


def _val_signing_bytes(instance: Hashable, value: object) -> bytes:
    return encode("mv-val", instance, value)


@dataclass
class ValMsg(Message):
    """Signed input value (one value word + one signature word)."""

    value: object = None
    signature: object = None

    def words(self) -> int:
        return 2


@dataclass
class CertMsg(Message):
    """A certificate: n-f distinct signatures on VAL(v)."""

    value: object = None
    certificate: tuple = ()  # (signer, signature) pairs

    def words(self) -> int:
        return 1 + 2 * len(self.certificate)


def multivalued_agreement(
    ctx: ProcessContext,
    value: object,
    params: ProtocolParams | None = None,
    tag: str = "mv",
) -> Protocol:
    """Propose any canonically-encodable ``value``; decide a proposed
    value or :data:`NO_DECISION` through ``ctx.decide``, whp.

    Like Algorithm 4 the generator loops forever after deciding (laggards
    depend on its committee participation); stop runs with
    ``stop_when_all_decided``.
    """
    params = params or ctx.params
    quorum = params.quorum
    val_instance = (tag, "val")
    cert_instance = (tag, "cert")

    signature = ctx.sign(_val_signing_bytes(val_instance, value))
    ctx.broadcast(ValMsg(val_instance, value=value, signature=signature))

    vals: dict[int, tuple[object, object]] = {}
    cursor = 0

    def val_quorum(mailbox: Mailbox):
        nonlocal cursor
        stream = mailbox.stream(val_instance)
        while cursor < len(stream):
            sender, msg = stream[cursor]
            cursor += 1
            if not isinstance(msg, ValMsg) or sender in vals:
                continue
            if ctx.verify_signature(
                sender, _val_signing_bytes(val_instance, msg.value), msg.signature
            ):
                vals[sender] = (msg.value, msg.signature)
        if len(vals) >= quorum:
            return dict(vals)
        return None

    quorum_vals = yield Wait(
        val_quorum, description=f"mv-val{val_instance}", instances={val_instance}
    )
    distinct = {v for v, _ in quorum_vals.values()}
    if len(distinct) == 1:
        candidate = next(iter(distinct))
        bit = 1
        certificate = tuple(
            (sender, sig) for sender, (_, sig) in sorted(quorum_vals.items())
        )[:quorum]
        # Broadcast the certificate *before* the binary phase: whoever
        # decides 1 later can rely on one already being on its links.
        ctx.broadcast(
            CertMsg(cert_instance, value=candidate, certificate=certificate)
        )
    else:
        bit = 0

    def valid_cert(mailbox: Mailbox):
        for sender, msg in mailbox.stream(cert_instance):
            if not isinstance(msg, CertMsg):
                continue
            signers: set[int] = set()
            for entry in msg.certificate:
                if not isinstance(entry, tuple) or len(entry) != 2:
                    break
                signer, sig = entry
                if signer in signers:
                    break
                if not ctx.verify_signature(
                    signer, _val_signing_bytes(val_instance, msg.value), sig
                ):
                    break
                signers.add(signer)
            else:
                if len(signers) >= quorum:
                    return msg.value
        return None

    # Binary phase: Algorithm 4's rounds, driven forever.  Decisions are
    # owned by this layer (agreement_round never calls ctx.decide).
    est = bit
    round_id = 0
    while True:
        est, decided_bit = yield from agreement_round(
            ctx, tag + "-bin", round_id, est, params
        )
        if decided_bit is not None and not ctx.decided:
            if decided_bit == 0:
                ctx.notes["decision_round"] = round_id
                ctx.decide(NO_DECISION)
            else:
                decided_value = yield Wait(
                    valid_cert,
                    description=f"mv-cert{cert_instance}",
                    instances={cert_instance},
                )
                ctx.notes["decision_round"] = round_id
                ctx.decide(decided_value)
        round_id += 1
