"""Algorithm 3: the committee-based approver.

A committee adaptation of MMR's synchronized binary-value broadcast.
Three phases, four committees (Figure 1): an *init* committee broadcasts
inputs; a *per-value echo* committee boosts any value received from B+1
distinct init members (one committee per value, so each correct member
broadcasts at most once -- process replaceability); an *ok* committee,
upon W echoes of some value, broadcasts an ok carrying those W signed
echoes as justification.  Everyone returns the value set of the first W
valid ok messages.

Under Assumption 1 (correct processes invoke with at most two distinct
values) the approver satisfies, whp: Validity, Graded Agreement and
Termination (Definition 6.1).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.committees import committee_val, sample
from repro.core.messages import EchoMsg, InitMsg, OkMsg, echo_signing_bytes
from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["approve"]

_INIT_ROLE = "init"
_OK_ROLE = "ok"


def _echo_role(value: object) -> tuple:
    """The value-specific echo committee's role label."""
    return ("echo", value)


def approve(
    ctx: ProcessContext,
    instance: Hashable,
    value: object,
    params: ProtocolParams | None = None,
    justify: bool = True,
) -> Protocol:
    """Run one approver instance with input ``value``; returns a value set.

    ``value`` may be any canonically-encodable object; the BA protocol
    uses 0, 1 and ``None`` (the paper's ⊥).

    ``justify=False`` is an ABLATION ONLY: ok messages omit the W signed
    echoes the paper attaches as proof of validity.  That erases the λ²
    word term -- and breaks the Validity property, because a Byzantine
    ok-committee member can then inject an arbitrary value into return
    sets (experiment X2 measures exactly this trade).  Real deployments
    must keep the default.
    """
    params = params or ctx.params
    committee_quorum = params.committee_quorum
    byzantine_bound = params.committee_byzantine_bound
    pki = ctx.pki

    in_init, init_proof = sample(ctx, instance, _INIT_ROLE, params)
    if in_init:
        ctx.broadcast(InitMsg(instance, value=value, membership=init_proof))
    in_ok, ok_proof = sample(ctx, instance, _OK_ROLE, params)

    # Reactive state.  Value-keyed dicts; Assumption 1 bounds the values
    # correct processes introduce, Byzantine extras just waste their
    # committee luck.
    init_senders: dict[object, set[int]] = {}
    echoed: set[object] = set()
    # value -> echo_sender -> (membership, signature), validated entries only.
    echo_records: dict[object, dict[int, tuple]] = {}
    ok_values: list[object] = []
    ok_senders: set[int] = set()
    state = {"sent_ok": False}
    cursor = 0

    def maybe_echo(candidate: object) -> None:
        """'Upon receiving init,v from B+1 distinct processes' (line 3)."""
        if candidate in echoed:
            return
        if len(init_senders.get(candidate, ())) <= byzantine_bound:
            return
        echoed.add(candidate)
        in_echo, echo_proof = sample(ctx, instance, _echo_role(candidate), params)
        if in_echo:
            signature = ctx.sign(echo_signing_bytes(instance, candidate))
            ctx.broadcast(
                EchoMsg(
                    instance,
                    value=candidate,
                    membership=echo_proof,
                    signature=signature,
                )
            )

    def maybe_ok(candidate: object) -> None:
        """'Upon receiving echo,v from W distinct processes' (line 6)."""
        if state["sent_ok"] or not in_ok:
            return
        records = echo_records.get(candidate, {})
        if len(records) < committee_quorum:
            return
        state["sent_ok"] = True
        if justify:
            justification = tuple(
                (echo_sender, membership, signature)
                for echo_sender, (membership, signature) in sorted(records.items())[
                    :committee_quorum
                ]
            )
        else:
            justification = ()
        ctx.broadcast(
            OkMsg(
                instance,
                value=candidate,
                membership=ok_proof,
                justification=justification,
            )
        )

    def valid_ok(sender: int, msg: OkMsg) -> bool:
        """Validate an ok message: committee membership + W signed echoes."""
        if not committee_val(pki, instance, _OK_ROLE, sender, msg.membership, params):
            return False
        if not justify:
            # Ablation mode: membership alone admits the ok (unsound!).
            return True
        if len(msg.justification) < committee_quorum:
            return False
        seen: set[int] = set()
        signing_bytes = echo_signing_bytes(instance, msg.value)
        role = _echo_role(msg.value)
        for entry in msg.justification:
            if not isinstance(entry, tuple) or len(entry) != 3:
                return False
            echo_sender, membership, signature = entry
            if echo_sender in seen:
                return False
            if not committee_val(pki, instance, role, echo_sender, membership, params):
                return False
            if not ctx.verify_signature(echo_sender, signing_bytes, signature):
                return False
            seen.add(echo_sender)
        return len(seen) >= committee_quorum

    def step(mailbox: Mailbox):
        nonlocal cursor
        stream = mailbox.stream(instance)
        while cursor < len(stream):
            sender, msg = stream[cursor]
            cursor += 1
            if isinstance(msg, InitMsg):
                if not committee_val(
                    pki, instance, _INIT_ROLE, sender, msg.membership, params
                ):
                    continue
                init_senders.setdefault(msg.value, set()).add(sender)
                maybe_echo(msg.value)
            elif isinstance(msg, EchoMsg):
                records = echo_records.setdefault(msg.value, {})
                if sender in records:
                    continue
                if not committee_val(
                    pki, instance, _echo_role(msg.value), sender, msg.membership, params
                ):
                    continue
                if not ctx.verify_signature(
                    sender, echo_signing_bytes(instance, msg.value), msg.signature
                ):
                    continue
                records[sender] = (msg.membership, msg.signature)
                maybe_ok(msg.value)
            elif isinstance(msg, OkMsg):
                if sender in ok_senders:
                    continue
                if not valid_ok(sender, msg):
                    continue
                ok_senders.add(sender)
                ok_values.append(msg.value)
                if len(ok_senders) >= committee_quorum:
                    return frozenset(ok_values)
        return None

    with ctx.span("approve", instance):
        result = yield Wait(
            step, description=f"approve{instance}", instances={instance}
        )
    observed_init: set[int] = set()
    for senders in init_senders.values():
        observed_init |= senders
    ctx.annotate(
        "committee", instance=instance, role=_INIT_ROLE, size=len(observed_init)
    )
    for candidate, records in echo_records.items():
        ctx.annotate(
            "committee",
            instance=instance,
            role=_echo_role(candidate),
            size=len(records),
        )
    ctx.annotate(
        "committee", instance=instance, role=_OK_ROLE, size=len(ok_senders)
    )
    ctx.annotate(
        "approve",
        instance=instance,
        grade=len(result),
        values=sorted(repr(value) for value in result),
        input=repr(value),
        in_init=in_init,
        in_ok=in_ok,
    )
    return result
