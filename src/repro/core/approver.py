"""Algorithm 3: the committee-based approver.

A committee adaptation of MMR's synchronized binary-value broadcast.
Three phases, four committees (Figure 1): an *init* committee broadcasts
inputs; a *per-value echo* committee boosts any value received from B+1
distinct init members (one committee per value, so each correct member
broadcasts at most once -- process replaceability); an *ok* committee,
upon W echoes of some value, broadcasts an ok carrying those W signed
echoes as justification.  Everyone returns the value set of the first W
valid ok messages.

Under Assumption 1 (correct processes invoke with at most two distinct
values) the approver satisfies, whp: Validity, Graded Agreement and
Termination (Definition 6.1).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.committees import membership_checker, sample
from repro.core.messages import EchoMsg, InitMsg, OkMsg, echo_signing_bytes
from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["approve"]

_INIT_ROLE = "init"
_OK_ROLE = "ok"

# Flush bound for the PKI-attached ok-justification memo; mirrors the
# PKI's own verify-cache bound (far above a single run's key count).
_MEMO_MAX_ENTRIES = 1 << 20


def _echo_role(value: object) -> tuple:
    """The value-specific echo committee's role label."""
    return ("echo", value)


def approve(
    ctx: ProcessContext,
    instance: Hashable,
    value: object,
    params: ProtocolParams | None = None,
    justify: bool = True,
) -> Protocol:
    """Run one approver instance with input ``value``; returns a value set.

    ``value`` may be any canonically-encodable object; the BA protocol
    uses 0, 1 and ``None`` (the paper's ⊥).

    ``justify=False`` is an ABLATION ONLY: ok messages omit the W signed
    echoes the paper attaches as proof of validity.  That erases the λ²
    word term -- and breaks the Validity property, because a Byzantine
    ok-committee member can then inject an arbitrary value into return
    sets (experiment X2 measures exactly this trade).  Real deployments
    must keep the default.
    """
    params = params or ctx.params
    committee_quorum = params.committee_quorum
    byzantine_bound = params.committee_byzantine_bound
    pki = ctx.pki
    # Hoisted validators (same checks/counters as committee_val); the echo
    # committees are per-value, so their checkers are cached on demand.
    valid_init_member = membership_checker(pki, instance, _INIT_ROLE, params)
    valid_ok_member = membership_checker(pki, instance, _OK_ROLE, params)
    echo_checkers: dict = {}

    def echo_member_checker(candidate: object):
        try:
            checker = echo_checkers.get(candidate)
        except TypeError:  # unhashable Byzantine value: uncached checker
            return membership_checker(pki, instance, _echo_role(candidate), params)
        if checker is None:
            checker = membership_checker(pki, instance, _echo_role(candidate), params)
            echo_checkers[candidate] = checker
        return checker

    in_init, init_proof = sample(ctx, instance, _INIT_ROLE, params)
    if in_init:
        ctx.broadcast(InitMsg(instance, value=value, membership=init_proof))
    in_ok, ok_proof = sample(ctx, instance, _OK_ROLE, params)

    # Reactive state.  Value-keyed dicts; Assumption 1 bounds the values
    # correct processes introduce, Byzantine extras just waste their
    # committee luck.
    init_senders: dict[object, set[int]] = {}
    echoed: set[object] = set()
    # value -> echo_sender -> (membership, signature), validated entries only.
    echo_records: dict[object, dict[int, tuple]] = {}
    ok_values: list[object] = []
    ok_senders: set[int] = set()
    state = {"sent_ok": False}
    cursor = 0

    def maybe_echo(candidate: object) -> None:
        """'Upon receiving init,v from B+1 distinct processes' (line 3)."""
        if candidate in echoed:
            return
        if len(init_senders.get(candidate, ())) <= byzantine_bound:
            return
        echoed.add(candidate)
        in_echo, echo_proof = sample(ctx, instance, _echo_role(candidate), params)
        if in_echo:
            signature = ctx.sign(echo_signing_bytes(instance, candidate))
            ctx.broadcast(
                EchoMsg(
                    instance,
                    value=candidate,
                    membership=echo_proof,
                    signature=signature,
                )
            )

    def maybe_ok(candidate: object) -> None:
        """'Upon receiving echo,v from W distinct processes' (line 6)."""
        if state["sent_ok"] or not in_ok:
            return
        records = echo_records.get(candidate, {})
        if len(records) < committee_quorum:
            return
        state["sent_ok"] = True
        if justify:
            justification = tuple(
                (echo_sender, membership, signature)
                for echo_sender, (membership, signature) in sorted(records.items())[
                    :committee_quorum
                ]
            )
        else:
            justification = ()
        ctx.broadcast(
            OkMsg(
                instance,
                value=candidate,
                membership=ok_proof,
                justification=justification,
            )
        )

    def justification_valid(msg: OkMsg) -> bool:
        """The pure part of ok validation: W distinct, signed, member echoes.

        Depends only on ``(instance, msg.value, msg.justification, params)``
        -- never on the receiver -- so its verdict (and the exact number of
        VRF/signature verifications it performs, all cache hits after the
        first receiver) can be shared across receivers via the PKI memo.
        """
        if len(msg.justification) < committee_quorum:
            return False
        seen: set[int] = set()
        signing_bytes = echo_signing_bytes(instance, msg.value)
        check_member = echo_member_checker(msg.value)
        signature_verify = pki.signature_verify
        for entry in msg.justification:
            if not isinstance(entry, tuple) or len(entry) != 3:
                return False
            echo_sender, membership, signature = entry
            if echo_sender in seen:
                return False
            if not check_member(echo_sender, membership):
                return False
            if not signature_verify(echo_sender, signing_bytes, signature):
                return False
            seen.add(echo_sender)
        return len(seen) >= committee_quorum

    def valid_ok(sender: int, msg: OkMsg) -> bool:
        """Validate an ok message: committee membership + W signed echoes."""
        if not valid_ok_member(sender, msg.membership):
            return False
        if not justify:
            # Ablation mode: membership alone admits the ok (unsound!).
            return True
        if not pki.verify_cache_enabled:
            return justification_valid(msg)
        # Broadcast delivers the *same* message object to every receiver,
        # so the justification tuple is keyed by identity -- no O(W)
        # structural hash per lookup.  The entry pins the tuple (keeping
        # its id live for as long as the memo holds it); instance and
        # value scope the verdict, and the identity pin already ties the
        # entry to this run's objects, so params stays out of the key
        # (its Python-level __hash__ would run on every lookup).
        memo = pki.shared_validation_memo
        justification = msg.justification
        try:
            key = ("approver-ok-just", instance, msg.value, id(justification))
            cached = memo.get(key)
        except TypeError:  # unhashable Byzantine content: validate directly
            return justification_valid(msg)
        if cached is not None and cached[3] is justification:
            verdict, vrf_calls, sig_calls, _ = cached
            # A re-execution would hit the per-call verify caches on every
            # call, so crediting them all as hits reproduces its counters.
            pki.replay_cached(vrf_calls, sig_calls)
            return verdict
        vrf_before = pki.vrf_verifications
        sig_before = pki.sig_verifications
        verdict = justification_valid(msg)
        if len(memo) >= _MEMO_MAX_ENTRIES:
            memo.clear()
        memo[key] = (
            verdict,
            pki.vrf_verifications - vrf_before,
            pki.sig_verifications - sig_before,
            justification,
        )
        return verdict

    stream: list | None = None

    def step(mailbox: Mailbox):
        nonlocal cursor, stream
        s = stream
        if s is None:
            # The instance's buffer list is identity-stable once created
            # (append-only); cache it and skip the per-evaluation lookup.
            s = mailbox.stream(instance)
            if type(s) is list:
                stream = s
        while cursor < len(s):
            sender, msg = s[cursor]
            cursor += 1
            if isinstance(msg, InitMsg):
                if not valid_init_member(sender, msg.membership):
                    continue
                init_senders.setdefault(msg.value, set()).add(sender)
                maybe_echo(msg.value)
            elif isinstance(msg, EchoMsg):
                records = echo_records.setdefault(msg.value, {})
                if sender in records:
                    continue
                if not echo_member_checker(msg.value)(sender, msg.membership):
                    continue
                if not pki.signature_verify(
                    sender, echo_signing_bytes(instance, msg.value), msg.signature
                ):
                    continue
                records[sender] = (msg.membership, msg.signature)
                maybe_ok(msg.value)
            elif isinstance(msg, OkMsg):
                if sender in ok_senders:
                    continue
                if not valid_ok(sender, msg):
                    continue
                ok_senders.add(sender)
                ok_values.append(msg.value)
                if len(ok_senders) >= committee_quorum:
                    return frozenset(ok_values)
        return None

    with ctx.span("approve", instance):
        # min_count: the earliest side effect (echoing a value) needs B+1
        # init messages for that value, so the instance must hold at least
        # B+1 deliveries before the condition can do anything.
        result = yield Wait(
            step,
            description=f"approve{instance}",
            instances={instance},
            min_count=byzantine_bound + 1,
        )
    observed_init: set[int] = set()
    for senders in init_senders.values():
        observed_init |= senders
    ctx.annotate(
        "committee", instance=instance, role=_INIT_ROLE, size=len(observed_init)
    )
    for candidate, records in echo_records.items():
        ctx.annotate(
            "committee",
            instance=instance,
            role=_echo_role(candidate),
            size=len(records),
        )
    ctx.annotate(
        "committee", instance=instance, role=_OK_ROLE, size=len(ok_senders)
    )
    ctx.annotate(
        "approve",
        instance=instance,
        grade=len(result),
        values=sorted(repr(value) for value in result),
        input=repr(value),
        in_init=in_init,
        in_ok=in_ok,
    )
    return result
