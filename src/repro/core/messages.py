"""Protocol messages for Algorithms 1-4, with paper-accurate word sizes.

Word accounting follows Section 2: one word per signature, VRF output, or
constant-size value.  A VRF output (value + proof) is counted as the paper
counts it -- "a VRF output (including a value and a proof)" is a constant
number of words; we charge 2 (value, proof).  The approver's ``ok``
justification carries W (membership proof, signature) pairs and is charged
accordingly, which is where the λ² in the paper's O(n λ²) comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable

from repro.crypto.hashing import encode
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput
from repro.core.committees import committee_val, membership_checker
from repro.core.params import ProtocolParams
from repro.sim.messages import Message

__all__ = [
    "CoinValue",
    "EchoMsg",
    "FirstMsg",
    "InitMsg",
    "OkMsg",
    "SecondMsg",
    "coin_value_alpha",
    "coin_value_checker",
    "echo_signing_bytes",
    "validate_coin_value",
]


@lru_cache(maxsize=1 << 16)
def _coin_value_alpha_cached(instance: Hashable) -> bytes:
    return encode("coin-value", instance)


def coin_value_alpha(instance: Hashable) -> bytes:
    """VRF input for a process's random coin value in ``instance``.

    This is the ``VRF_i(r)`` of Algorithms 1 and 2, domain-separated from
    committee sampling so the two uses can never alias.  Pure and on the
    validation hot path, so memoized (with a fallback for unhashable
    instance names).
    """
    try:
        return _coin_value_alpha_cached(instance)
    except TypeError:
        return encode("coin-value", instance)


@dataclass(frozen=True)
class CoinValue:
    """A coin value together with everything needed to validate it.

    ``origin`` is the process whose VRF produced the value -- for FIRST
    messages the sender itself, for SECOND messages whoever held the
    minimum.  ``origin_membership`` is the origin's committee proof in the
    committee-based protocol (``None`` for the full-participation coin);
    without it a Byzantine second-committee member could inject the value
    of a colluder that was never sampled to the first committee.
    """

    value: int
    origin: int
    vrf: VRFOutput
    origin_membership: VRFOutput | None = None


def validate_coin_value(
    pki: PKI,
    coin_value: CoinValue,
    instance: Hashable,
    params: ProtocolParams,
    first_committee_role: Hashable | None,
) -> bool:
    """Check a coin value: genuine VRF output, and (if committee-based)
    produced by a member of the FIRST committee.
    """
    if not isinstance(coin_value.vrf, VRFOutput):
        return False
    if coin_value.value != coin_value.vrf.value:
        return False
    if not pki.vrf_verify(coin_value.origin, coin_value_alpha(instance), coin_value.vrf):
        return False
    if first_committee_role is not None:
        if coin_value.origin_membership is None:
            return False
        return committee_val(
            pki,
            instance,
            first_committee_role,
            coin_value.origin,
            coin_value.origin_membership,
            params,
        )
    return True


def coin_value_checker(
    pki: PKI,
    instance: Hashable,
    params: ProtocolParams,
    first_committee_role: Hashable | None,
):
    """:func:`validate_coin_value`, partially evaluated for one instance.

    Returns ``check(coin_value) -> bool`` performing exactly the same
    checks in the same order (so the PKI's verification counters advance
    identically), with the alpha bytes and -- in the committee-based
    variant -- the FIRST-committee seed/threshold hoisted out of the
    per-message loop.

    When the PKI's verify cache is on, verdicts are additionally memoized
    in ``pki.shared_validation_memo`` against the identity of the
    :class:`CoinValue` object (broadcasts deliver one shared object to
    every receiver, and SECOND messages re-carry FIRST values): a repeat
    check -- by any receiver -- replays the recorded verdict and credits
    the PKI counters exactly as the guaranteed cache hits would have.  A
    structurally different object (Byzantine per-receiver variant) takes
    the full path.
    """
    alpha = coin_value_alpha(instance)
    check_origin_membership = (
        membership_checker(pki, instance, first_committee_role, params)
        if first_committee_role is not None
        else None
    )
    memo = pki.shared_validation_memo

    def check(coin_value: CoinValue) -> bool:
        origin = coin_value.origin
        if pki.verify_cache_enabled:
            # origin is a pid (int): the pid-range check in vrf_verify
            # rejects anything else, so the key is always hashable.
            key = ("coin-value", alpha, origin)
            prev = memo.get(key)
            if prev is not None and prev[0] is coin_value:
                pki.replay_cached(prev[2], 0)
                return prev[1]
        else:
            key = None
        if not isinstance(coin_value.vrf, VRFOutput):
            return False
        if coin_value.value != coin_value.vrf.value:
            return False
        vrf_before = pki.vrf_verifications
        if not pki.vrf_verify(origin, alpha, coin_value.vrf):
            verdict = False
        elif check_origin_membership is not None:
            if coin_value.origin_membership is None:
                verdict = False
            else:
                verdict = check_origin_membership(
                    coin_value.origin, coin_value.origin_membership
                )
        else:
            verdict = True
        if key is not None:
            memo[key] = (coin_value, verdict, pki.vrf_verifications - vrf_before)
        return verdict

    return check


@dataclass
class FirstMsg(Message):
    """Phase-1 coin message: the sender's own VRF value.

    ``membership`` is the sender's FIRST-committee proof (``None`` in the
    full-participation coin).
    """

    coin_value: CoinValue = None  # type: ignore[assignment]
    membership: VRFOutput | None = None

    @property
    def value(self) -> int:
        """Exposed for the content-aware ablation scheduler (E6)."""
        return self.coin_value.value

    def words(self) -> int:
        return 2 + (2 if self.membership is not None else 0)


@dataclass
class SecondMsg(Message):
    """Phase-2 coin message: the minimum value the sender has seen."""

    coin_value: CoinValue = None  # type: ignore[assignment]
    membership: VRFOutput | None = None

    @property
    def value(self) -> int:
        return self.coin_value.value

    def words(self) -> int:
        words = 2 + (2 if self.membership is not None else 0)
        if self.coin_value.origin_membership is not None:
            words += 2
        return words


@dataclass
class InitMsg(Message):
    """Approver phase 1: an init-committee member's input value."""

    value: object = None
    membership: VRFOutput = None  # type: ignore[assignment]

    def words(self) -> int:
        return 1 + 2


@lru_cache(maxsize=1 << 16)
def _echo_signing_bytes_cached(instance: Hashable, value: object) -> bytes:
    return encode("approver-echo", instance, value)


def echo_signing_bytes(instance: Hashable, value: object) -> bytes:
    """The bytes an echo-committee member signs; ok-justifications verify them.

    Memoized: every ok-justification check re-derives these bytes, and the
    (instance, value) domain per run is tiny.  Unhashable values fall back
    to direct encoding.
    """
    try:
        return _echo_signing_bytes_cached(instance, value)
    except TypeError:
        return encode("approver-echo", instance, value)


@dataclass
class EchoMsg(Message):
    """Approver phase 2: boost a value seen in B+1 init messages.

    Carries the sender's proof of membership in the *value-specific* echo
    committee plus a signature that ok messages can cite as justification.
    """

    value: object = None
    membership: VRFOutput = None  # type: ignore[assignment]
    signature: object = None

    def words(self) -> int:
        return 1 + 2 + 1


@dataclass
class OkMsg(Message):
    """Approver phase 3: a value backed by W signed echoes.

    ``justification`` is a tuple of ``(echo_sender, echo_membership,
    signature)`` triples -- the W signed echo messages the paper says an
    ok message includes as proof of validity.
    """

    value: object = None
    membership: VRFOutput = None  # type: ignore[assignment]
    justification: tuple = ()

    def words(self) -> int:
        # value + own membership proof + (membership, signature) per echo.
        return 1 + 2 + 3 * len(self.justification)
