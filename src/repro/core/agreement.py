"""Algorithm 4: asynchronous sub-quadratic Byzantine Agreement WHP.

MMR-style rounds built from two approver instances and one WHP-coin flip::

    vals  <- approve(est)                 # filter estimates
    prop  <- v if vals == {v} else ⊥
    c     <- whp_coin(r)                  # after proposals are fixed!
    props <- approve(prop)
    if props == {v}, v != ⊥ :  est <- v; decide(v)
    elif props == {⊥}        :  est <- c
    else (props == {v, ⊥})   :  est <- v

Decisions are recorded through ``ctx.decide`` and are irrevocable; the
protocol itself loops forever (processes keep helping laggards), so runs
are stopped by the harness once every correct process has decided
(``stop_when_all_decided``).  Expected O(1) rounds, Õ(n) words whp.
"""

from __future__ import annotations

from repro.core.approver import approve
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.sim.process import ProcessContext, Protocol

__all__ = ["BOT", "agreement_round", "byzantine_agreement"]

# The paper's ⊥.  None is canonically encodable, so it flows through the
# approver like any other value.
BOT = None


def agreement_round(
    ctx: ProcessContext,
    tag: str,
    round_id: int,
    est: int,
    params: ProtocolParams,
) -> Protocol:
    """One round of Algorithm 4; returns ``(new_est, decided_value_or_None)``.

    Shared by :func:`byzantine_agreement` and the probability-1-termination
    hybrid in :mod:`repro.core.hybrid`.  ``decided_value`` is non-``None``
    exactly when this round's second approver returned a non-⊥ singleton.

    Each round runs inside a ``ba-round`` span (round start/end on the
    event bus) and ends by appending one ``round`` protocol record per
    process -- the raw material of the per-round rollups in
    :meth:`~repro.sim.metrics.MetricsRecorder.rounds`.
    """
    with ctx.span("ba-round", (tag, round_id)):
        vals = yield from approve(ctx, (tag, round_id, "est"), est, params)
        if len(vals) == 1:
            proposal = next(iter(vals))
        else:
            proposal = BOT

        # The coin is flipped only after every correct process has fixed its
        # proposal for this round, so the adversary cannot bias proposals with
        # knowledge of the flip (Lemma 6.8(2) holds because nothing above
        # waits on other processes' coin progress).
        coin = yield from whp_coin(ctx, (tag, round_id), params)

        props = yield from approve(ctx, (tag, round_id, "prop"), proposal, params)
        non_bot = {v for v in props if v is not BOT}
        if props == frozenset({BOT}) or not non_bot:
            new_est, decided = coin, None
        else:
            v = next(iter(non_bot))
            new_est, decided = (v, v) if len(props) == 1 else (v, None)
    ctx.annotate("round", tag=tag, round=round_id, est=new_est, decided=decided)
    return new_est, decided


def byzantine_agreement(
    ctx: ProcessContext,
    value: int,
    params: ProtocolParams | None = None,
    max_rounds: int | None = None,
    tag: str = "ba",
) -> Protocol:
    """Propose binary ``value``; decide through ``ctx.decide`` whp.

    ``max_rounds`` bounds the loop for experiments that must terminate
    even on (whp-rare) failures; ``None`` means loop forever, relying on
    the harness's stop condition.  ``tag`` namespaces the instance ids so
    distinct agreement instances never alias (the trusted setup is done
    once and reused across instances, as the paper notes; the ledger
    example reuses one PKI over a sequence of slots).
    """
    if value not in (0, 1):
        raise ValueError("Byzantine Agreement here is binary; propose 0 or 1")
    params = params or ctx.params
    # The Validity ground truth: what this (correct-at-the-time) process
    # actually proposed, compared against decisions by the conformance
    # monitors (values repr-encoded like every protocol record).
    ctx.annotate("propose", tag=tag, value=repr(value))
    est = value
    round_id = 0
    while max_rounds is None or round_id < max_rounds:
        est, decided = yield from agreement_round(ctx, tag, round_id, est, params)
        if decided is not None:
            if not ctx.decided:
                ctx.notes["decision_round"] = round_id
            ctx.decide(decided)
        round_id += 1
    return ctx.decision
