"""Hybrid agreement: probability-1 termination with Õ(n) *expected* words.

The paper's conclusion asks "whether some of the problem's properties can
be satisfied with probability 1, while keeping the sub-quadratic
communication cost".  This module explores the natural answer for
termination: run Algorithm 4's committee rounds for a bounded number of
rounds, and if undecided -- which happens only in whp-failure events
(a committee undershooting W, a coin run of bad luck) -- fall back to
MMR instantiated with the Algorithm 1 shared coin, which terminates with
probability 1 at O(n²) words (the paper's own Section 4 combination).

What this buys and what it does not:

* **Termination w.p. 1** -- the fallback is probability-1 terminating,
  and every correct process reaches it after exactly
  ``committee_rounds`` undecided rounds (the committee phase cannot block
  forever: each round either completes whp or the run is already in the
  failure event the fallback exists for; a ``round_timeout`` on waits is
  out of scope for an asynchronous model, so blocking-forever committee
  failures -- S3 shortfalls -- still stall the hybrid.  We therefore also
  size W against the *fallback quorum*: see ``min_live_params``).
* **Expected words stay Õ(n)** -- the O(n²) fallback is paid with the
  whp-failure probability, vanishing in the paper's asymptotics.
* **Safety stays whp, not w.p. 1** -- a process that decided v in the
  committee phase never revokes; in a whp-failure event the fallback
  could decide differently.  The open question for *agreement* w.p. 1
  remains open here too, and the tests assert exactly this contract.
"""

from __future__ import annotations

from repro.baselines.mmr import make_shared_coin, mmr_agreement
from repro.core.agreement import agreement_round
from repro.core.params import ProtocolParams
from repro.sim.process import ProcessContext, Protocol

__all__ = ["hybrid_agreement"]


def hybrid_agreement(
    ctx: ProcessContext,
    value: int,
    params: ProtocolParams | None = None,
    committee_rounds: int = 8,
    max_fallback_rounds: int | None = None,
) -> Protocol:
    """Propose binary ``value``; decide whp in the committee phase, else
    via the MMR + Algorithm 1 fallback.

    ``committee_rounds`` bounds the Õ(n) phase; with the coin's constant
    success rate the fallback probability decays geometrically in it.
    """
    if value not in (0, 1):
        raise ValueError("hybrid agreement is binary; propose 0 or 1")
    params = params or ctx.params
    ctx.annotate("propose", tag="hybrid", value=repr(value))
    est = value
    for round_id in range(committee_rounds):
        est, decided = yield from agreement_round(
            ctx, "hybrid", round_id, est, params
        )
        if decided is not None:
            if not ctx.decided:
                ctx.notes["decision_round"] = round_id
                ctx.notes["decided_by"] = "committee"
            ctx.decide(decided)
            est = decided
        # Decided processes keep participating (in both phases): laggards
        # depend on their committee luck and their fallback votes alike.
    if not ctx.decided:
        ctx.notes["fallback"] = True
        # Any decision from here on is the fallback's (recorded up front
        # because the fallback loops forever and only the harness stops it).
        ctx.notes.setdefault("decided_by", "fallback")
    return (
        yield from mmr_agreement(
            ctx, est, coin=make_shared_coin(params), params=params,
            max_rounds=max_fallback_rounds,
        )
    )
