"""Algorithm 1: the full-participation VRF-based shared coin.

Two all-to-all phases.  Each process broadcasts its VRF value for the
round; after hearing n-f FIRST values it broadcasts the minimum it has
seen; after hearing n-f SECOND values it outputs the least significant bit
of its minimum.  Against the delayed-adaptive adversary the global minimum
becomes *common* with constant probability, in which case everyone outputs
the same bit -- Theorem 4.13 lower-bounds the success rate by
(18ε² + 24ε - 1) / (6 (1 + 6ε)).

Word complexity O(n²); this coin also plugs into the MMR baseline to give
an O(n²) BA with resilience (1/3 - ε)n (the paper's Section 4 closing
remark, experiment E7).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.messages import (
    CoinValue,
    FirstMsg,
    SecondMsg,
    coin_value_alpha,
    coin_value_checker,
)
from repro.core.params import ProtocolParams
from repro.sim.mailbox import Mailbox
from repro.sim.process import ProcessContext, Protocol, Wait

__all__ = ["shared_coin"]


def shared_coin(
    ctx: ProcessContext, round_id: Hashable, params: ProtocolParams | None = None
) -> Protocol:
    """Run one shared-coin instance; returns the coin bit (0 or 1).

    ``round_id`` plays the role of the paper's ``r``; any hashable works,
    so callers can scope instances (e.g. ``("ba", 3)``).  All correct
    processes must invoke the same ``round_id``, causally independently of
    each other's progress.
    """
    params = params or ctx.params
    instance = ("shared_coin", round_id)
    quorum = params.quorum
    pki = ctx.pki
    valid_value = coin_value_checker(pki, instance, params, None)

    my_output = ctx.vrf(coin_value_alpha(instance))
    my_value = CoinValue(value=my_output.value, origin=ctx.pid, vrf=my_output)
    ctx.broadcast(FirstMsg(instance, coin_value=my_value))

    # Reactive state for the two "upon receiving" handlers.  Both handlers
    # stay active for the whole instance (a late FIRST may still lower the
    # local minimum, exactly as in the pseudocode).
    state = {"min": my_value, "sent_second": False}
    first_senders: set[int] = set()
    second_senders: set[int] = set()
    cursor = 0

    stream: list | None = None

    def step(mailbox: Mailbox):
        nonlocal cursor, stream
        s = stream
        if s is None:
            # Identity-stable once created (append-only): cache the list.
            s = mailbox.stream(instance)
            if type(s) is list:
                stream = s
        while cursor < len(s):
            sender, msg = s[cursor]
            cursor += 1
            if isinstance(msg, FirstMsg):
                if sender in first_senders:
                    continue
                # In Algorithm 1 the FIRST value must be the sender's own.
                if msg.coin_value.origin != sender:
                    continue
                if not valid_value(msg.coin_value):
                    continue
                first_senders.add(sender)
                if msg.coin_value.value < state["min"].value:
                    state["min"] = msg.coin_value
            elif isinstance(msg, SecondMsg):
                if sender in second_senders:
                    continue
                if not valid_value(msg.coin_value):
                    continue
                second_senders.add(sender)
                if msg.coin_value.value < state["min"].value:
                    state["min"] = msg.coin_value
        if not state["sent_second"] and len(first_senders) >= quorum:
            state["sent_second"] = True
            ctx.broadcast(SecondMsg(instance, coin_value=state["min"]))
        if state["sent_second"] and len(second_senders) >= quorum:
            return state["min"].value & 1
        return None

    with ctx.span("shared_coin", instance):
        # min_count: the earliest side effect (broadcasting SECOND) needs
        # `quorum` FIRST messages, so the instance must hold at least
        # `quorum` deliveries before the condition can do anything.
        result = yield Wait(
            step,
            description=f"shared_coin{instance}",
            instances={instance},
            min_count=quorum,
        )
    ctx.annotate(
        "coin",
        variant="alg1",
        instance=instance,
        outcome=result,
        first_seen=len(first_senders),
        second_seen=len(second_senders),
    )
    return result
