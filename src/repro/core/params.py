"""Protocol parameters: n, f, ε, λ, d and the derived thresholds W and B.

The paper's parameter regime (Sections 2 and 5.1)::

    f = (1/3 - ε) n,   max{3/(8 ln n), 0.109} + 1/(8 ln n) < ε < 1/3
    λ = 8 ln n
    max{1/λ, 0.0362} < d < ε/3 - 1/(3λ)
    W = ⌈(2/3 + 3d) λ⌉          (quorum inside a committee)
    B = ⌊(1/3 - d) λ⌋           (whp bound on Byzantine committee members)

These constants make the Chernoff failure terms vanish as n → ∞ but are
infeasible at laptop scale (``3/(8 ln n) + 1/(8 ln n) < 1/3`` alone needs
``n > e^{12/8} ≈ 4.5`` but the committee-size concentration needs λ in the
hundreds for comfortable margins).  We therefore provide two constructors:

* :meth:`ProtocolParams.from_paper` -- the exact paper regime; reports
  which constraints (if any) are violated at the given ``n``.
* :meth:`ProtocolParams.simulation_scale` -- explicit λ and a ``d`` chosen
  to leave a ``k``-sigma liveness/safety margin at the given scale, so
  Monte-Carlo runs exercise the same code paths with measurable (rather
  than negligible) whp-failure rates.  EXPERIMENTS.md reports those rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ProtocolParams", "paper_epsilon_window", "paper_d_window"]


def paper_epsilon_window(n: int) -> tuple[float, float]:
    """The open interval the paper requires ε to lie in, for this ``n``."""
    lower = max(3 / (8 * math.log(n)), 0.109) + 1 / (8 * math.log(n))
    return lower, 1 / 3


def paper_d_window(epsilon: float, lam: float) -> tuple[float, float]:
    """The open interval the paper requires d to lie in."""
    lower = max(1 / lam, 0.0362)
    upper = epsilon / 3 - 1 / (3 * lam)
    return lower, upper


@dataclass(frozen=True)
class ProtocolParams:
    """Immutable parameter bundle shared by every protocol in the library.

    ``lam`` and ``d`` are only needed by the committee-based protocols
    (Algorithms 2-4); the full-participation shared coin (Algorithm 1) and
    the baselines use just ``n``, ``f`` and the ``quorum``.
    """

    n: int
    f: int
    lam: float | None = None
    d: float | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not 0 <= self.f < self.n:
            raise ValueError("need 0 <= f < n")
        if (self.lam is None) != (self.d is None):
            raise ValueError("lam and d must be provided together")
        if self.lam is not None:
            if self.lam <= 0:
                raise ValueError("lam must be positive")
            if not 0 < self.d < 1 / 3:
                raise ValueError("need 0 < d < 1/3")

    def __hash__(self) -> int:
        # One parameter bundle is hashed on every memo/lru lookup of the
        # validation hot path; compute the field hash once per instance.
        # Same value as the generated hash, so equal bundles hash equal.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.n, self.f, self.lam, self.d))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    # -- resilience ------------------------------------------------------------

    @property
    def epsilon(self) -> float:
        """The ε of f = (1/3 - ε) n."""
        return 1 / 3 - self.f / self.n

    @property
    def quorum(self) -> int:
        """n - f: the wait threshold of full-participation protocols."""
        return self.n - self.f

    # -- committee thresholds ----------------------------------------------------

    def _require_committees(self) -> None:
        if self.lam is None:
            raise ValueError(
                "this protocol needs committee parameters; construct the "
                "ProtocolParams with lam and d"
            )

    @property
    def committee_quorum(self) -> int:
        """W = ⌈(2/3 + 3d) λ⌉ -- messages to wait for inside a committee."""
        self._require_committees()
        return math.ceil((2 / 3 + 3 * self.d) * self.lam)

    @property
    def committee_byzantine_bound(self) -> int:
        """B = ⌊(1/3 - d) λ⌋ -- whp bound on Byzantine committee members."""
        self._require_committees()
        return math.floor((1 / 3 - self.d) * self.lam)

    @property
    def sample_probability(self) -> float:
        """Probability λ/n with which each process joins each committee."""
        self._require_committees()
        return min(1.0, self.lam / self.n)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_paper(cls, n: int) -> "ProtocolParams":
        """The paper's exact regime: λ = 8 ln n, ε and d mid-window.

        If a window is empty at this ``n`` (the asymptotic constants do
        not yet bite), the midpoint construction still returns a usable
        object; call :meth:`paper_violations` to see what is off.
        """
        lam = 8 * math.log(n)
        eps_low, eps_high = paper_epsilon_window(n)
        epsilon = (eps_low + eps_high) / 2 if eps_low < eps_high else eps_high / 2
        f = max(0, math.floor((1 / 3 - epsilon) * n))
        d_low, d_high = paper_d_window(1 / 3 - f / n, lam)
        d = (d_low + d_high) / 2 if d_low < d_high else min(0.05, d_high if d_high > 0 else 0.05)
        d = min(max(d, 1e-6), 1 / 3 - 1e-6)
        return cls(n=n, f=f, lam=lam, d=d)

    @classmethod
    def simulation_scale(
        cls,
        n: int,
        f: int,
        lam: float | None = None,
        d: float | None = None,
        safety_sigmas: float = 3.0,
    ) -> "ProtocolParams":
        """Parameters that keep committee runs live at laptop scale.

        If ``d`` is not given, the largest ``d`` is chosen that leaves
        ``safety_sigmas`` binomial standard deviations between W and the
        expected number of correct committee members (liveness) and
        between B and the expected number of Byzantine ones (safety).
        If ``lam`` is not given either, the smallest λ ≥ 8 ln n (stepping
        up geometrically, capped at n) that admits such a ``d`` is used --
        at laptop scale the paper's λ = 8 ln n concentrates too weakly, so
        the inflation factor is itself a measured quantity the experiments
        report.  With explicit ``lam`` and no feasible ``d``, raises.
        """
        if lam is None:
            candidate = min(8 * math.log(n), float(n))
            while True:
                try:
                    return cls.simulation_scale(
                        n, f, lam=candidate, d=d, safety_sigmas=safety_sigmas
                    )
                except ValueError:
                    if candidate >= n:
                        raise
                    candidate = min(candidate * 1.3, float(n))
        lam = min(float(lam), float(n))
        if d is None:
            p = lam / n
            mu_correct = (n - f) * p
            sigma_correct = math.sqrt(max((n - f) * p * (1 - p), 0.0))
            mu_byz = f * p
            sigma_byz = math.sqrt(max(f * p * (1 - p), 0.0))
            # Liveness: W = ceil((2/3 + 3d)λ) <= mu_correct - k sigma.
            d_live = (mu_correct - safety_sigmas * sigma_correct - 1 - (2 / 3) * lam) / (
                3 * lam
            )
            # Safety: B = floor((1/3 - d)λ) >= mu_byz + k sigma.
            d_safe = (lam / 3 - mu_byz - safety_sigmas * sigma_byz - 1) / lam
            d = min(d_live, d_safe)
            if d <= 0:
                raise ValueError(
                    f"no feasible d for n={n}, f={f}, lam={lam:.1f} at "
                    f"{safety_sigmas} sigmas (d_live={d_live:.4f}, "
                    f"d_safe={d_safe:.4f}); increase lam or decrease f"
                )
            d = min(d, 1 / 3 - 1e-9)
        return cls(n=n, f=f, lam=lam, d=d)

    # -- diagnostics ------------------------------------------------------------

    def paper_violations(self) -> list[str]:
        """Human-readable list of paper constraints this bundle violates.

        Empty means the parameters sit exactly in the paper's asymptotic
        regime; at small ``n`` they typically do not, which is expected
        and reported alongside every experiment.
        """
        violations: list[str] = []
        eps_low, eps_high = paper_epsilon_window(self.n)
        if not eps_low < self.epsilon < eps_high:
            violations.append(
                f"epsilon={self.epsilon:.4f} outside ({eps_low:.4f}, {eps_high:.4f})"
            )
        if self.lam is not None:
            target_lam = 8 * math.log(self.n)
            if abs(self.lam - target_lam) > 1e-9:
                violations.append(f"lam={self.lam:.2f} != 8 ln n = {target_lam:.2f}")
            d_low, d_high = paper_d_window(self.epsilon, self.lam)
            if not d_low < self.d < d_high:
                violations.append(
                    f"d={self.d:.4f} outside ({d_low:.4f}, {d_high:.4f})"
                )
        return violations

    def describe(self) -> str:
        """One-line summary used by examples and benchmark output."""
        parts = [f"n={self.n}", f"f={self.f}", f"eps={self.epsilon:.4f}"]
        if self.lam is not None:
            parts += [
                f"lam={self.lam:.1f}",
                f"d={self.d:.4f}",
                f"W={self.committee_quorum}",
                f"B={self.committee_byzantine_bound}",
            ]
        return " ".join(parts)
