"""Validated committee sampling (paper Section 5.1).

Every process holds a private function ``sample_i(s, λ)`` -- realised here
as a VRF evaluation on the domain-separated seed -- returning a boolean
and a proof; anyone can check the claim with the public ``committee-val``.
A process is sampled with probability λ/n, independently per seed, and
cannot lie about the outcome (VRF uniqueness) nor predict another
process's outcome (VRF pseudorandomness).

Seeds combine the protocol instance and the committee's role, e.g.
``(("ba", 2, "prop"), ("echo", 1))`` -- distinct protocol steps draw
independent committees, exactly as Figure 1 of the paper illustrates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Hashable, Iterable

from repro.crypto.hashing import encode
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRF_OUTPUT_BITS, VRFOutput
from repro.core.params import ProtocolParams
from repro.sim.process import ProcessContext

__all__ = [
    "ArrayCensus",
    "committee_census",
    "committee_seed",
    "committee_val",
    "membership_checker",
    "sample",
    "sample_committee",
    "sampling_threshold",
]

try:  # optional array backend for the census (pure-Python fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

# Flush bound for PKI-attached validation memos; mirrors the PKI's own
# verify-cache bound (far above any single run's key count).
_MEMO_MAX_ENTRIES = 1 << 20


@lru_cache(maxsize=1 << 16)
def _committee_seed_cached(instance: Hashable, role: Hashable) -> bytes:
    return encode("committee", instance, role)


def committee_seed(instance: Hashable, role: Hashable) -> bytes:
    """Canonical VRF input for the committee named ``(instance, role)``.

    Pure in its arguments, and evaluated once per message per receiver on
    the validation hot path, so the canonical encoding is memoized.
    Unhashable names (never produced by the provided protocols) fall back
    to direct encoding.
    """
    try:
        return _committee_seed_cached(instance, role)
    except TypeError:
        return encode("committee", instance, role)


@lru_cache(maxsize=1 << 12)
def _sampling_threshold_cached(params: ProtocolParams) -> int:
    return int(params.sample_probability * (1 << VRF_OUTPUT_BITS))


def sampling_threshold(params: ProtocolParams) -> int:
    """VRF outputs strictly below this integer mean "sampled".

    The VRF output is uniform in [0, 2**VRF_OUTPUT_BITS), so comparing to
    ``p * 2**VRF_OUTPUT_BITS`` samples each process with probability
    ``p = λ/n`` -- the primitive's contract.  ``ProtocolParams`` is frozen
    (hashable), so the conversion is memoized per parameter set.
    """
    try:
        return _sampling_threshold_cached(params)
    except TypeError:
        return int(params.sample_probability * (1 << VRF_OUTPUT_BITS))


def sample(
    ctx: ProcessContext, instance: Hashable, role: Hashable, params: ProtocolParams
) -> tuple[bool, VRFOutput]:
    """``sample_i(s, λ)``: am *I* in this committee?  Returns (bool, proof).

    Local computation only -- no communication, and unpredictable to
    everyone else until the proof is revealed (process replaceability).

    Every draw appends a ``sampled`` protocol record (role + outcome), so
    the self-reported committee sizes -- the quantity the (1±d)λ
    concentration bounds govern -- can be rolled up per run without the
    trusted :func:`sample_committee` view.
    """
    output = ctx.vrf(committee_seed(instance, role))
    member = output.value < sampling_threshold(params)
    ctx.annotate("sampled", instance=instance, role=role, member=member)
    return member, output


def committee_val(
    pki: PKI,
    instance: Hashable,
    role: Hashable,
    process_id: int,
    proof: VRFOutput,
    params: ProtocolParams,
) -> bool:
    """``committee-val(s, λ, i, σ)``: verify ``process_id``'s membership claim."""
    if not isinstance(proof, VRFOutput):
        return False
    if not pki.vrf_verify(process_id, committee_seed(instance, role), proof):
        return False
    return proof.value < sampling_threshold(params)


def membership_checker(
    pki: PKI, instance: Hashable, role: Hashable, params: ProtocolParams
):
    """One committee's :func:`committee_val`, partially evaluated.

    Returns ``check(process_id, proof) -> bool`` with the seed and
    threshold hoisted out of the per-message loop.  Performs *exactly*
    the checks of :func:`committee_val`, in the same order, against the
    same PKI counters -- validation hot paths (one check per message per
    receiver) use this so the per-call lru-cache traffic of the free
    function disappears from profiles.  ``pki.vrf_verify`` is resolved
    per call, not captured, so profiled runs that shadow it with timing
    wrappers keep seeing every verification.

    When the PKI's verify cache is on, the checker additionally memoizes
    each verdict in ``pki.shared_validation_memo`` against the *identity*
    of the proof object: a broadcast delivers the same proof object to
    every receiver, so after any one receiver validates it the other n-1
    replay the verdict and credit the PKI counters exactly as the
    guaranteed cache hit would have (verification + cache hit) -- same
    counters, no VRF-cache key hashing.  A different proof object for the
    same process (Byzantine re-proof) takes the full path.  The memo is
    PKI-wide (cross-receiver), keyed on the committee seed, and cleared
    with the verify caches.
    """
    seed = committee_seed(instance, role)
    threshold = sampling_threshold(params)
    memo = pki.shared_validation_memo

    def check(process_id: int, proof: VRFOutput) -> bool:
        if pki.verify_cache_enabled:
            key = ("committee-member", seed, process_id)
            prev = memo.get(key)
            if prev is not None and prev[0] is proof:
                pki.vrf_verifications += 1
                pki.vrf_cache_hits += 1
                return prev[1]
        else:
            key = None
        if not isinstance(proof, VRFOutput):
            return False
        if not pki.vrf_verify(process_id, seed, proof):
            verdict = False
        else:
            verdict = proof.value < threshold
        if key is not None:
            if len(memo) >= _MEMO_MAX_ENTRIES:
                memo.clear()
            memo[key] = (proof, verdict)
        return verdict

    return check


def sample_committee(
    pki: PKI, instance: Hashable, role: Hashable, params: ProtocolParams
) -> set[int]:
    """The full membership of one committee (trusted-setup view).

    Used by the sampling experiments (E2, F1) and by tests; protocol code
    never calls this -- processes only ever learn memberships through
    proofs attached to messages.
    """
    seed = committee_seed(instance, role)
    threshold = sampling_threshold(params)
    members = set()
    for pid in range(pki.n):
        output = pki.vrf_scheme.prove(pki.vrf_private(pid), seed)
        if output.value < threshold:
            members.add(pid)
    return members


def committee_census(
    pki: PKI,
    instance: Hashable,
    role: Hashable,
    params: ProtocolParams,
    corrupted: Iterable[int] = (),
) -> dict[str, int]:
    """Ground-truth committee counts: the quantities S1-S4 bound.

    Same trusted-setup view as :func:`sample_committee` (VRF *proofs*,
    never verifications, so calling this does not perturb a run's
    verification-cache counters), split against ``corrupted``:
    ``size`` for S1/S2, ``correct`` for S3 (>= W), ``byzantine`` for
    S4 (<= B).  The conformance monitors and the sampling experiments
    share this as the reference the self-reported records are judged by.
    """
    members = sample_committee(pki, instance, role, params)
    bad = set(corrupted)
    return {
        "size": len(members),
        "correct": len(members - bad),
        "byzantine": len(members & bad),
    }


# The numpy fast path compares the top 64 bits of each 256-bit VRF value
# (uint64 vectors); only values whose top bits *equal* the threshold's top
# bits need the exact big-int comparison, so the result is bit-exact.
_TOP_SHIFT = VRF_OUTPUT_BITS - 64
_UINT64_MAX = (1 << 64) - 1


class ArrayCensus:
    """Array-backed trusted-setup committee censuses over one PKI.

    :func:`sample_committee`/:func:`committee_census` re-prove all ``n``
    VRF values on every query; monitors and scaling experiments census
    the *same* committees repeatedly (and many committees per run), so
    this view computes each committee's per-pid value vector once and
    answers membership/census queries with a vectorized threshold compare
    -- numpy when available, bit-exact against the scalar path (see
    ``_TOP_SHIFT``), with a pure-Python fallback otherwise.

    Same trust model as :func:`sample_committee`: VRF *proofs*, never
    verifications, so queries cannot perturb a run's verification-cache
    counters.  Protocol code must not use it -- processes only learn
    memberships through proofs on messages.
    """

    def __init__(self, pki: PKI) -> None:
        self.pki = pki
        self._values: dict[tuple, list[int]] = {}
        self._top: dict[tuple, Any] = {}
        self._masks: dict[tuple, Any] = {}

    @property
    def uses_numpy(self) -> bool:
        return _np is not None

    def _value_vector(self, instance: Hashable, role: Hashable) -> list[int]:
        key = (instance, role)
        values = self._values.get(key)
        if values is None:
            pki = self.pki
            seed = committee_seed(instance, role)
            prove = pki.vrf_scheme.prove
            values = [
                prove(pki.vrf_private(pid), seed).value for pid in range(pki.n)
            ]
            self._values[key] = values
            if _np is not None:
                self._top[key] = _np.array(
                    [value >> _TOP_SHIFT for value in values], dtype=_np.uint64
                )
        return values

    def member_mask(self, instance: Hashable, role: Hashable, params: ProtocolParams):
        """Per-pid membership booleans (numpy bool array or list)."""
        key = (instance, role, params)
        mask = self._masks.get(key)
        if mask is None:
            values = self._value_vector(instance, role)
            threshold = sampling_threshold(params)
            if _np is not None:
                top = self._top[(instance, role)]
                threshold_top = threshold >> _TOP_SHIFT
                if threshold_top > _UINT64_MAX:
                    mask = _np.ones(self.pki.n, dtype=bool)
                elif threshold <= 0:
                    mask = _np.zeros(self.pki.n, dtype=bool)
                else:
                    mask = top < _np.uint64(threshold_top)
                    # Boundary pids (top bits tie): exact big-int compare.
                    for index in _np.flatnonzero(top == _np.uint64(threshold_top)):
                        mask[index] = values[index] < threshold
            else:
                mask = [value < threshold for value in values]
            self._masks[key] = mask
        return mask

    def is_member(
        self, instance: Hashable, role: Hashable, params: ProtocolParams, pid: int
    ) -> bool:
        return bool(self.member_mask(instance, role, params)[pid])

    def members(
        self, instance: Hashable, role: Hashable, params: ProtocolParams
    ) -> set[int]:
        """Drop-in for :func:`sample_committee` (identical output)."""
        mask = self.member_mask(instance, role, params)
        if _np is not None and isinstance(mask, _np.ndarray):
            return {int(pid) for pid in _np.flatnonzero(mask)}
        return {pid for pid, member in enumerate(mask) if member}

    def census(
        self,
        instance: Hashable,
        role: Hashable,
        params: ProtocolParams,
        corrupted: Iterable[int] = (),
    ) -> dict[str, int]:
        """Drop-in for :func:`committee_census` (identical output)."""
        mask = self.member_mask(instance, role, params)
        bad = set(corrupted)
        n = self.pki.n
        if _np is not None and isinstance(mask, _np.ndarray):
            size = int(mask.sum())
            byzantine = sum(1 for pid in bad if 0 <= pid < n and mask[pid])
        else:
            size = sum(mask)
            byzantine = sum(1 for pid in bad if 0 <= pid < n and mask[pid])
        return {
            "size": size,
            "correct": size - byzantine,
            "byzantine": int(byzantine),
        }
