"""Validated committee sampling (paper Section 5.1).

Every process holds a private function ``sample_i(s, λ)`` -- realised here
as a VRF evaluation on the domain-separated seed -- returning a boolean
and a proof; anyone can check the claim with the public ``committee-val``.
A process is sampled with probability λ/n, independently per seed, and
cannot lie about the outcome (VRF uniqueness) nor predict another
process's outcome (VRF pseudorandomness).

Seeds combine the protocol instance and the committee's role, e.g.
``(("ba", 2, "prop"), ("echo", 1))`` -- distinct protocol steps draw
independent committees, exactly as Figure 1 of the paper illustrates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Hashable, Iterable

from repro.crypto.hashing import encode
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRF_OUTPUT_BITS, VRFOutput
from repro.core.params import ProtocolParams
from repro.sim.process import ProcessContext

__all__ = [
    "committee_census",
    "committee_seed",
    "committee_val",
    "sample",
    "sample_committee",
    "sampling_threshold",
]


@lru_cache(maxsize=1 << 16)
def _committee_seed_cached(instance: Hashable, role: Hashable) -> bytes:
    return encode("committee", instance, role)


def committee_seed(instance: Hashable, role: Hashable) -> bytes:
    """Canonical VRF input for the committee named ``(instance, role)``.

    Pure in its arguments, and evaluated once per message per receiver on
    the validation hot path, so the canonical encoding is memoized.
    Unhashable names (never produced by the provided protocols) fall back
    to direct encoding.
    """
    try:
        return _committee_seed_cached(instance, role)
    except TypeError:
        return encode("committee", instance, role)


@lru_cache(maxsize=1 << 12)
def _sampling_threshold_cached(params: ProtocolParams) -> int:
    return int(params.sample_probability * (1 << VRF_OUTPUT_BITS))


def sampling_threshold(params: ProtocolParams) -> int:
    """VRF outputs strictly below this integer mean "sampled".

    The VRF output is uniform in [0, 2**VRF_OUTPUT_BITS), so comparing to
    ``p * 2**VRF_OUTPUT_BITS`` samples each process with probability
    ``p = λ/n`` -- the primitive's contract.  ``ProtocolParams`` is frozen
    (hashable), so the conversion is memoized per parameter set.
    """
    try:
        return _sampling_threshold_cached(params)
    except TypeError:
        return int(params.sample_probability * (1 << VRF_OUTPUT_BITS))


def sample(
    ctx: ProcessContext, instance: Hashable, role: Hashable, params: ProtocolParams
) -> tuple[bool, VRFOutput]:
    """``sample_i(s, λ)``: am *I* in this committee?  Returns (bool, proof).

    Local computation only -- no communication, and unpredictable to
    everyone else until the proof is revealed (process replaceability).

    Every draw appends a ``sampled`` protocol record (role + outcome), so
    the self-reported committee sizes -- the quantity the (1±d)λ
    concentration bounds govern -- can be rolled up per run without the
    trusted :func:`sample_committee` view.
    """
    output = ctx.vrf(committee_seed(instance, role))
    member = output.value < sampling_threshold(params)
    ctx.annotate("sampled", instance=instance, role=role, member=member)
    return member, output


def committee_val(
    pki: PKI,
    instance: Hashable,
    role: Hashable,
    process_id: int,
    proof: VRFOutput,
    params: ProtocolParams,
) -> bool:
    """``committee-val(s, λ, i, σ)``: verify ``process_id``'s membership claim."""
    if not isinstance(proof, VRFOutput):
        return False
    if not pki.vrf_verify(process_id, committee_seed(instance, role), proof):
        return False
    return proof.value < sampling_threshold(params)


def sample_committee(
    pki: PKI, instance: Hashable, role: Hashable, params: ProtocolParams
) -> set[int]:
    """The full membership of one committee (trusted-setup view).

    Used by the sampling experiments (E2, F1) and by tests; protocol code
    never calls this -- processes only ever learn memberships through
    proofs attached to messages.
    """
    seed = committee_seed(instance, role)
    threshold = sampling_threshold(params)
    members = set()
    for pid in range(pki.n):
        output = pki.vrf_scheme.prove(pki.vrf_private(pid), seed)
        if output.value < threshold:
            members.add(pid)
    return members


def committee_census(
    pki: PKI,
    instance: Hashable,
    role: Hashable,
    params: ProtocolParams,
    corrupted: Iterable[int] = (),
) -> dict[str, int]:
    """Ground-truth committee counts: the quantities S1-S4 bound.

    Same trusted-setup view as :func:`sample_committee` (VRF *proofs*,
    never verifications, so calling this does not perturb a run's
    verification-cache counters), split against ``corrupted``:
    ``size`` for S1/S2, ``correct`` for S3 (>= W), ``byzantine`` for
    S4 (<= B).  The conformance monitors and the sampling experiments
    share this as the reference the self-reported records are judged by.
    """
    members = sample_committee(pki, instance, role, params)
    bad = set(corrupted)
    return {
        "size": len(members),
        "correct": len(members - bad),
        "byzantine": len(members & bad),
    }
