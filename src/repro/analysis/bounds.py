"""The paper's closed-form bounds, verbatim.

* Lemma 4.2:   c ≥ 9ε/(1+6ε) · n          (common values, Algorithm 1)
* Theorem 4.13: ρ ≥ (18ε² + 24ε − 1)/(6(1+6ε))   (Algorithm 1 success rate)
* Lemma B.1:   c ≥ d(11−3d)/(1+9d) · λ    (common values, Algorithm 2)
* Lemma B.7:   ρ = (18d² + 27d − 1)/(3(5+6d)(1−d)(1+9d))  (Algorithm 2)
* Claim 1 (Appendix A): Chernoff tails for S1-S4.

The experiment harness compares empirical Monte-Carlo estimates against
these functions; the tests pin spot values from the paper (e.g. ε = 1/3
gives a perfectly fair coin, Remark 4.10).
"""

from __future__ import annotations

import math

from repro.core.params import ProtocolParams

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "committee_property_bounds",
    "common_values_committee_bound",
    "common_values_fraction_bound",
    "shared_coin_success_bound",
    "whp_coin_success_bound",
]


def common_values_fraction_bound(epsilon: float) -> float:
    """Lemma 4.2: at least this fraction of n values are *common*."""
    if not 0 <= epsilon <= 1 / 3:
        raise ValueError("epsilon must lie in [0, 1/3]")
    return 9 * epsilon / (1 + 6 * epsilon)


def shared_coin_success_bound(epsilon: float) -> float:
    """Theorem 4.13: Algorithm 1's success rate is at least this.

    Positive for ε > (√648 − 24)/36 ≈ 0.0404 (the paper's stronger
    ε > 0.109 window comes from the committee machinery, not this bound);
    exactly 1/2 at ε = 1/3 (Remark 4.10: f = 0 gives a perfect fair coin).
    """
    if not 0 <= epsilon <= 1 / 3:
        raise ValueError("epsilon must lie in [0, 1/3]")
    return (18 * epsilon**2 + 24 * epsilon - 1) / (6 * (1 + 6 * epsilon))


def common_values_committee_bound(d: float) -> float:
    """Lemma B.1: at least this fraction of λ committee values are common."""
    if not 0 <= d < 1 / 3:
        raise ValueError("d must lie in [0, 1/3)")
    return d * (11 - 3 * d) / (1 + 9 * d)


def whp_coin_success_bound(d: float) -> float:
    """Lemma B.7: Algorithm 2's success rate (whp over the sampling).

    Positive for d > (√801 − 27)/36 ≈ 0.0362 -- exactly the paper's lower
    window bound on d, which is where that constant comes from.
    """
    if not 0 <= d < 1 / 3:
        raise ValueError("d must lie in [0, 1/3)")
    return (18 * d**2 + 27 * d - 1) / (3 * (5 + 6 * d) * (1 - d) * (1 + 9 * d))


# -- Chernoff tails (Appendix A, equations (3) and (4)) -------------------------


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """P[X ≥ (1+δ)E[X]] ≤ exp(−δ²E[X]/(2+δ)) for δ ≥ 0 (eq. 3)."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if mean <= 0:
        return 1.0
    return math.exp(-(delta**2) * mean / (2 + delta))


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """P[X ≤ (1−δ)E[X]] ≤ exp(−δ²E[X]/2) for 0 ≤ δ ≤ 1 (eq. 4)."""
    if not 0 <= delta <= 1:
        raise ValueError("delta must lie in [0, 1]")
    if mean <= 0:
        return 1.0
    return math.exp(-(delta**2) * mean / 2)


def committee_property_bounds(params: ProtocolParams) -> dict[str, float]:
    """Chernoff upper bounds on the failure probability of S1-S4.

    Mirrors the four lemmas of Appendix A for one committee:

    * S1 -- |C| ≤ (1+d)λ fails w.p. ≤ exp(−d²λ/(2+d));
    * S2 -- |C| ≥ (1−d)λ fails w.p. ≤ exp(−d²λ/2);
    * S3 -- ≥ W correct members, via δ = 1 − (2/3+d′)/(2/3+ε),
      d′ = 3d + 1/λ;
    * S4 -- ≤ B Byzantine members, via δ = (ε−d)/(1/3−ε).

    Values can exceed the trivial bound 1 when the parameters sit outside
    the paper's windows (small ``n``); experiments report both the bound
    and the measured violation rate.
    """
    lam, d, epsilon = params.lam, params.d, params.epsilon
    if lam is None:
        raise ValueError("committee bounds need lam and d")
    bounds: dict[str, float] = {}
    bounds["S1"] = chernoff_upper_tail(lam, d)
    bounds["S2"] = chernoff_lower_tail(lam, d)

    d_prime = 3 * d + 1 / lam
    mean_correct = (2 / 3 + epsilon) * lam
    delta3 = 1 - (2 / 3 + d_prime) / (2 / 3 + epsilon)
    if 0 <= delta3 <= 1:
        bounds["S3"] = chernoff_lower_tail(mean_correct, delta3)
    else:
        bounds["S3"] = 1.0

    mean_byz = (1 / 3 - epsilon) * lam
    if epsilon >= d and epsilon < 1 / 3:
        delta4 = (epsilon - d) / (1 / 3 - epsilon)
        bounds["S4"] = chernoff_upper_tail(mean_byz, delta4)
    elif epsilon >= 1 / 3 - 1e-12:
        bounds["S4"] = 0.0  # f = 0: no Byzantine processes at all
    else:
        bounds["S4"] = 1.0
    return bounds
