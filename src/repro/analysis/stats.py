"""Monte-Carlo statistics for the experiment harness.

Coin success rates, whp-property violation rates and agreement rates are
all Bernoulli parameters estimated over seeds; Wilson score intervals give
honest uncertainty at the small-to-moderate sample sizes benches use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = ["BernoulliEstimate", "estimate_probability", "wilson_interval"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a Bernoulli parameter.

    Well-behaved at 0 and ``trials`` successes, unlike the normal
    approximation.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p_hat = successes / trials
    denom = 1 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    # Clamp to [0, 1] and force the interval to contain the point estimate
    # (float rounding can otherwise leave p_hat a hair outside at 0/n, n/n).
    return (
        min(max(0.0, center - margin), p_hat),
        max(min(1.0, center + margin), p_hat),
    )


@dataclass(frozen=True)
class BernoulliEstimate:
    """A point estimate with its Wilson interval."""

    successes: int
    trials: int
    z: float = 1.96

    @property
    def mean(self) -> float:
        return self.successes / self.trials

    @property
    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials, self.z)

    @property
    def low(self) -> float:
        return self.interval[0]

    @property
    def high(self) -> float:
        return self.interval[1]

    def __str__(self) -> str:
        low, high = self.interval
        return f"{self.mean:.3f} [{low:.3f}, {high:.3f}] (n={self.trials})"


def estimate_probability(
    trial: Callable[[int], bool], seeds: Iterable[int]
) -> BernoulliEstimate:
    """Run ``trial(seed)`` over ``seeds`` and estimate P[True]."""
    successes = 0
    trials = 0
    for seed in seeds:
        trials += 1
        if trial(seed):
            successes += 1
    if trials == 0:
        raise ValueError("need at least one seed")
    return BernoulliEstimate(successes=successes, trials=trials)
