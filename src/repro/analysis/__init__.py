"""Analytical companion to the protocols: the paper's closed-form bounds,
Chernoff tail calculators for the committee properties S1-S4, theoretical
complexity curves for the Table 1 comparison, and the Monte-Carlo
statistics helpers the benchmark harness uses.
"""

from repro.analysis.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    committee_property_bounds,
    common_values_fraction_bound,
    common_values_committee_bound,
    shared_coin_success_bound,
    whp_coin_success_bound,
)
from repro.analysis.complexity import (
    expected_rounds_bound,
    fit_loglog_slope,
    predicted_crossover,
    word_complexity_model,
)
from repro.analysis.stats import (
    BernoulliEstimate,
    estimate_probability,
    wilson_interval,
)

__all__ = [
    "BernoulliEstimate",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "committee_property_bounds",
    "common_values_committee_bound",
    "common_values_fraction_bound",
    "estimate_probability",
    "expected_rounds_bound",
    "fit_loglog_slope",
    "predicted_crossover",
    "shared_coin_success_bound",
    "whp_coin_success_bound",
    "wilson_interval",
]
