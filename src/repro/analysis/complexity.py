"""Theoretical complexity curves behind the Table 1 comparison.

These model the *expected words sent by correct processes* per protocol as
a function of n, in the same units the simulator's
:class:`~repro.sim.metrics.MetricsRecorder` measures, so benches can plot
measured points against predicted shapes and fit log-log slopes.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "expected_rounds_bound",
    "fit_loglog_slope",
    "predicted_crossover",
    "word_complexity_model",
]


def expected_rounds_bound(success_rate: float) -> float:
    """Upper bound 1/ρ on expected BA rounds given coin success rate ρ.

    Lemma 6.14's argument: each round ends in global estimate agreement
    with probability > ρ, after which one more round decides.
    """
    if not 0 < success_rate <= 1:
        raise ValueError("success rate must lie in (0, 1]")
    return 1 / success_rate


def word_complexity_model(protocol: str) -> Callable[[int, float], float]:
    """Leading-order word count per BA instance for each Table 1 row.

    Returns ``model(n, lam) -> words``.  Constants are order-of-magnitude
    (per-round message counts times the round structure), good enough to
    check shape and crossover in the scaling experiment E4:

    * quadratic rows (Rabin, Cachin/MMR): ~c · n² per round;
    * our protocol: coin 2nλ + two approvers ~ n λ(4 + 3λ) per round
      (the λ² term is the W signatures inside ok messages).
    """
    models: dict[str, Callable[[int, float], float]] = {
        "benor": lambda n, lam: 2 * n * n,
        "rabin": lambda n, lam: 3 * n * n,
        "bracha": lambda n, lam: 9 * n * n * n,  # 3 RBC polls, each O(n^3) msgs
        "cachin": lambda n, lam: 3 * n * n,
        "mmr": lambda n, lam: 3 * n * n,
        "mmr_shared_coin": lambda n, lam: 7 * n * n,
        "whp_ba": lambda n, lam: n * lam * (4 + 3 * lam),
    }
    try:
        return models[protocol]
    except KeyError:
        raise ValueError(
            f"unknown protocol {protocol!r}; one of {sorted(models)}"
        ) from None


def predicted_crossover(
    protocol_a: str,
    protocol_b: str,
    lam_fn: Callable[[int], float] | None = None,
    n_max: int = 10**8,
) -> int | None:
    """Smallest n at which ``protocol_a``'s modelled word count drops below
    ``protocol_b``'s, scanning geometrically up to ``n_max``.

    ``lam_fn`` maps n to the committee parameter (default: the paper's
    8 ln n).  Returns ``None`` if no crossover occurs in range.  E4 quotes
    this to place its measured points on the asymptotic story.
    """
    lam_fn = lam_fn or (lambda n: 8 * math.log(n))
    model_a = word_complexity_model(protocol_a)
    model_b = word_complexity_model(protocol_b)
    n = 8
    while n <= n_max:
        lam = lam_fn(n)
        if model_a(n, lam) < model_b(n, lam):
            # Binary-search the exact boundary in the last octave.
            low, high = n // 2, n
            while low + 1 < high:
                mid = (low + high) // 2
                if model_a(mid, lam_fn(mid)) < model_b(mid, lam_fn(mid)):
                    high = mid
                else:
                    low = mid
            return high
        n *= 2
    return None


def fit_loglog_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log y against log x.

    The E4 scaling bench uses this to verify the measured exponent:
    ~2 for the quadratic baselines, ~1 (plus log factors) for ours.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    if not all(math.isfinite(x) for x in xs) or not all(
        math.isfinite(y) for y in ys
    ):
        raise ValueError("log-log fit needs finite data (NaN/inf present)")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    numerator = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError(
            "log-log fit needs at least two distinct x values "
            "(constant series has no slope)"
        )
    return numerator / denominator
