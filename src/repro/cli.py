"""Command-line entry point: ``python -m repro <command>``.

Regenerates the paper's artefacts without pytest -- handy for quick looks
and for refreshing ``benchmarks/results`` piecemeal::

    python -m repro list                 # what can be regenerated
    python -m repro t1 --n 40 --seeds 3  # Table 1
    python -m repro e6 --seeds 40        # the ablation
    python -m repro all --quick          # everything, smoke-scale

plus the flight-recorder family::

    python -m repro record --n 100 --out flight.jsonl   # run + record BA
    python -m repro report flight.jsonl                 # render the report
    python -m repro export flight.jsonl                 # Perfetto trace JSON

the divergence-forensics pair (see DESIGN.md section 12)::

    python -m repro diff a.jsonl b.jsonl     # first divergent event + slice
    python -m repro explain flight.jsonl     # replay, minimize, explain

the conformance pair (see DESIGN.md section 8)::

    python -m repro check --n 24 --seeds 6   # monitored sweep; writes
                                             # BENCH_conformance.json,
                                             # exits 1 on safety violations
    python -m repro trends                   # cross-run drift tables
    python -m repro trends --last 5          # wider window + sparklines

the schedule-coverage atlas (see DESIGN.md section 11)::

    python -m repro coverage                 # atlas growth + rarest hits
    python -m repro coverage flight.jsonl    # one recording's coverage
    python -m repro coverage --gate          # exit 1 on coverage stagnation

the schedule fuzzer (see DESIGN.md section 13)::

    python -m repro fuzz flight.jsonl --budget 200   # mutate the recorded
                                             # schedule, grow the coverage
                                             # corpus, bundle + minimize any
                                             # violations; exits 1 on safety
                                             # violations outside the
                                             # recording's own baseline

the degradation observatory (see DESIGN.md section 14)::

    python -m repro degrade --scenario lossy_uniform \
        --rates 0,0.02,0.05,0.1 --seeds 8   # decide-rate curves + knee;
                                            # failing cells export
                                            # recordings for `explain`
    python -m repro degrade --smoke          # CI shape, feeds the trend store

and the telemetry pane (see DESIGN.md section 9)::

    python -m repro dashboard flight.jsonl --out dashboard.html
    python -m repro trends --gate --tolerance 25   # exit 1 on drift
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    ablation,
    coin_success,
    committee_bounds,
    common_values,
    fig1,
    hybrid_fallback,
    justification_ablation,
    mmr_ourcoin,
    rounds,
    safety,
    scaling,
    table1,
    whp_coin_sweep,
)

__all__ = ["main"]


def _run_t1(args) -> str:
    rows = table1.run(n=args.n or 40, seeds=range(args.seeds or 3), workers=args.workers)
    return table1.format_table1(rows)


def _run_f1(args) -> str:
    params, stats = fig1.run(n=args.n or 200, seeds=range(args.seeds or 20))
    return fig1.format_fig1(params, stats)


def _run_e1(args) -> str:
    points = coin_success.run(
        n=args.n or 24, seeds=range(args.seeds or 40), workers=args.workers
    )
    return coin_success.format_coin_success(points)


def _run_e1b(args) -> str:
    points = common_values.run(
        n=args.n or 24, seeds=range(args.seeds or 20), workers=args.workers
    )
    return common_values.format_common_values(points)


def _run_e2(args) -> str:
    points = committee_bounds.run(seeds=range(args.seeds or 60))
    return committee_bounds.format_committee_bounds(points)


def _run_e3(args) -> str:
    points = whp_coin_sweep.run(
        n=args.n or 120, seeds=range(args.seeds or 20), workers=args.workers
    )
    return whp_coin_sweep.format_whp_coin(points)


def _run_e4(args) -> str:
    curves = scaling.run(seeds=range(args.seeds or 2), workers=args.workers)
    return scaling.format_scaling(curves)


def _run_e5(args) -> str:
    points = rounds.run(seeds=range(args.seeds or 5), workers=args.workers)
    return rounds.format_rounds(points)


def _run_e6(args) -> str:
    rows = ablation.run(n=args.n or 16, seeds=range(args.seeds or 40))
    return ablation.format_ablation(rows)


def _run_e7(args) -> str:
    rows = mmr_ourcoin.run(
        n=args.n or 25, seeds=range(args.seeds or 10), workers=args.workers
    )
    return mmr_ourcoin.format_mmr_ourcoin(rows)


def _run_e8(args) -> str:
    cells = safety.run(n=args.n or 40, seeds=range(args.seeds or 3), workers=args.workers)
    return safety.format_safety(cells)


def _run_x2(args) -> str:
    points = justification_ablation.run(n=args.n or 60, seeds=range(args.seeds or 8))
    return justification_ablation.format_justification(points)


def _run_x1(args) -> str:
    points = hybrid_fallback.run(n=args.n or 60, seeds=range(args.seeds or 8))
    return hybrid_fallback.format_hybrid(points)


COMMANDS: dict[str, tuple[str, Callable]] = {
    "t1": ("Table 1: all protocols compared", _run_t1),
    "f1": ("Figure 1: approver committee structure", _run_f1),
    "e1": ("shared-coin success vs epsilon (Thm 4.13)", _run_e1),
    "e1b": ("common values, measured (Lem 4.2)", _run_e1b),
    "e2": ("committee properties S1-S4 (Claim 1)", _run_e2),
    "e3": ("WHP-coin success vs d (Lem B.7)", _run_e3),
    "e4": ("word-complexity scaling (Sec 6.2)", _run_e4),
    "e5": ("O(1) expected rounds (Lem 6.14)", _run_e5),
    "e6": ("delayed-adaptivity ablation (Def 2.1)", _run_e6),
    "e7": ("MMR with the Algorithm 1 coin (Sec 4)", _run_e7),
    "e8": ("safety/liveness grid (Def 6.6)", _run_e8),
    "x1": ("extension: probability-1-termination hybrid", _run_x1),
    "x2": ("extension: ok-justification ablation (the lambda^2 term)", _run_x2),
}

# Flight-recorder commands; separate from COMMANDS because they take a
# file path, not sweep parameters, and are excluded from `all`.


def _run_record(args) -> str:
    from repro.experiments import report

    from repro.sim.telemetry import telemetry_path_for

    out = args.out or f"flight_{args.protocol}_n{args.n or 40}_s{args.seed}.jsonl"
    try:
        path, result = report.record_run(
            out,
            name=args.protocol,
            n=args.n or 40,
            seed=args.seed,
            profile=not args.no_profile,
            telemetry=not args.no_telemetry,
        )
    except ValueError as exc:
        # Most commonly an unknown --protocol; the message lists the
        # protocols and the self-describing scenario zoo.
        raise SystemExit(f"repro record: {exc}")
    text = (
        f"recorded {result.deliveries} deliveries "
        f"(duration {result.duration}, {result.words} words, "
        f"decided={result.all_correct_decided}) -> {path}"
    )
    if not args.no_telemetry:
        text += f"\ntelemetry sidecar -> {telemetry_path_for(path)}"
    return text


def _run_report(args) -> str:
    from repro.experiments import report

    if not args.path:
        raise SystemExit("usage: python -m repro report <recording.jsonl>")
    try:
        return report.render_report_file(args.path)
    except FileNotFoundError:
        raise SystemExit(f"repro report: no such recording: {args.path}")
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro report: {exc}")


def _run_export(args) -> str:
    from repro.sim.flightrecorder import load_recording
    from repro.sim.traceexport import save_chrome_trace

    if not args.path:
        raise SystemExit("usage: python -m repro export <recording.jsonl>")
    out = args.out or str(args.path).removesuffix(".jsonl") + ".trace.json"
    try:
        recording = load_recording(args.path)
    except FileNotFoundError:
        raise SystemExit(f"repro export: no such recording: {args.path}")
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro export: {exc}")
    path = save_chrome_trace(out, recording)
    return (
        f"exported {len(recording.events)} kernel events -> {path}\n"
        "open in https://ui.perfetto.dev or chrome://tracing"
    )


def _load_recording_or_exit(path, command: str):
    from repro.sim.flightrecorder import load_recording

    if not path:
        raise SystemExit(
            f"usage: python -m repro {command} <recording.jsonl>"
            + (" <recording.jsonl>" if command == "diff" else "")
        )
    try:
        return load_recording(path)
    except FileNotFoundError:
        raise SystemExit(f"repro {command}: no such recording: {path}")
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro {command}: {exc}")


def _run_diff(args) -> tuple[str, int]:
    from repro.sim.diffing import (
        diff_recordings,
        format_divergence,
        save_divergence,
    )
    from repro.sim.traceexport import save_divergence_trace

    if not args.path or not args.path2:
        raise SystemExit(
            "usage: python -m repro diff <a.jsonl> <b.jsonl>"
        )
    a = _load_recording_or_exit(args.path, "diff")
    b = _load_recording_or_exit(args.path2, "diff")
    report = diff_recordings(a, b, max_slice=args.slice or 20)
    text = format_divergence(report, a_path=args.path, b_path=args.path2)
    if report.identical:
        return text, 0
    out = args.out or str(args.path).removesuffix(".jsonl") + ".divergence.json"
    saved = save_divergence(
        out, {"kind": "diff", "a": str(args.path), "b": str(args.path2),
              **report.to_dict()}
    )
    lines = [text, f"divergence report -> {saved}"]
    if report.slice:
        trace = save_divergence_trace(
            str(saved).removesuffix(".json") + ".trace.json",
            a,
            report.slice,
        )
        lines.append(
            f"divergence slice trace -> {trace} "
            "(open in https://ui.perfetto.dev)"
        )
    return "\n".join(lines), 1


def _run_explain(args) -> tuple[str, int]:
    from repro.experiments.forensics import explain_recording, format_explain
    from repro.sim.diffing import save_divergence

    recording = _load_recording_or_exit(args.path, "explain")
    protocol = None if args.protocol == "whp_ba" else args.protocol
    try:
        payload = explain_recording(
            args.path,
            protocol=recording.header.get("protocol") or protocol,
            max_slice=args.slice or 20,
        )
    except ValueError as exc:
        raise SystemExit(f"repro explain: {exc}")
    text = format_explain(payload)
    if payload.get("failure") is None:
        return text, 0
    out = args.out or str(args.path).removesuffix(".jsonl") + ".divergence.json"
    saved = save_divergence(out, payload)
    return text + f"\ndivergence report -> {saved}", 1


def _run_fuzz(args) -> tuple[str, int]:
    from repro.experiments.fuzzing import format_fuzz, fuzz_recording

    recording = _load_recording_or_exit(args.path, "fuzz")
    protocol = None if args.protocol == "whp_ba" else args.protocol
    try:
        payload = fuzz_recording(
            args.path,
            protocol=recording.header.get("protocol") or protocol,
            budget=args.budget or 200,
            seed=args.seed,
            atlas_root=args.atlas or ".",
            out=args.out,
        )
    except ValueError as exc:
        raise SystemExit(f"repro fuzz: {exc}")
    return format_fuzz(payload), 0 if payload.get("ok") else 1


def _run_check(args) -> tuple[str, int]:
    from repro.experiments import conformance
    from repro.experiments.coverage_atlas import CoverageAtlas

    protocols = tuple(args.protocols.split(",")) if args.protocols else None
    try:
        atlas = CoverageAtlas(".")
        atlas.load()  # fail loudly before the sweep, not after it
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro check: {exc}")
    payload = conformance.run_check(
        protocols=protocols or conformance.DEFAULT_PROTOCOLS,
        n=args.n or 24,
        seeds=range(args.seeds or 6),
        atlas=atlas,
    )
    path = conformance.write_conformance(payload)
    text = conformance.format_check(payload) + f"\n[saved to {path}]"
    return text, 0 if payload["ok"] else 1


def _run_coverage(args) -> tuple[str, int]:
    from repro.experiments import conformance
    from repro.experiments.coverage_atlas import (
        CoverageAtlas,
        format_atlas,
        format_coverage_run,
    )

    atlas = CoverageAtlas(".")
    if args.gate:
        from repro.experiments.trends import TrendStore

        try:
            newest = TrendStore(".").latest("conformance")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro coverage: {exc}")
        if newest is None:
            raise SystemExit(
                "repro coverage: no conformance record in the trend store; "
                "run `python -m repro check` first"
            )
        verdict = conformance.coverage_gate(newest["payload"])
        text = conformance.format_coverage_gate(verdict)
        return text, 0 if verdict["ok"] else 1
    if args.path:
        from repro.sim.coverage import coverage_from_events
        from repro.sim.flightrecorder import load_recording

        try:
            recording = load_recording(args.path)
        except FileNotFoundError:
            raise SystemExit(f"repro coverage: no such recording: {args.path}")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro coverage: {exc}")
        snapshot = coverage_from_events(recording.events)
        try:
            return format_coverage_run(
                snapshot, atlas=atlas, source=str(args.path)
            ), 0
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro coverage: {exc}")
    try:
        return format_atlas(atlas, rarest=args.rarest or 10), 0
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro coverage: {exc}")


def _run_degrade(args) -> tuple[str, int]:
    from repro.experiments import degradation
    from repro.experiments.trends import record_bench

    if args.smoke:
        # The CI configuration: tiny, deterministic, and the one shape
        # that feeds the trend store's `degradation` series (full sweeps
        # vary by config, so gating them against each other would flag
        # every parameter change as drift).
        payload = degradation.smoke_degradation()
        snapshot, _ = record_bench("degradation", payload)
        text = degradation.format_degradation(payload)
        return text + f"\n[degradation trends -> {snapshot}]", 0
    scenario = args.scenario or "lossy_uniform"
    try:
        rates = (
            [float(token) for token in args.rates.split(",") if token.strip()]
            if args.rates
            else list(degradation.DEFAULT_RATES)
        )
    except ValueError:
        raise SystemExit(
            f"repro degrade: --rates must be comma-separated numbers, "
            f"got {args.rates!r}"
        )
    from pathlib import Path

    from repro.experiments.scenarios import parse_scenario_name

    try:
        base, _ = parse_scenario_name(scenario)
        out = args.out or f"degradation_{base}.json"
        payload = degradation.sweep_degradation(
            scenario=scenario,
            n=args.n or 8,
            rates=rates,
            seeds=args.seeds or 8,
            export_dir=str(Path(out).with_suffix("")) + "_cells",
        )
    except ValueError as exc:
        raise SystemExit(f"repro degrade: {exc}")
    path = degradation.save_degradation(out, payload)
    text = degradation.format_degradation(payload)
    return text + f"\n[curve artifact -> {path}]", 0


def _run_trends(args) -> tuple[str, int]:
    from repro.experiments import trends

    store = trends.TrendStore(".")
    tolerance = (args.tolerance if args.tolerance is not None else 25.0) / 100.0
    last = args.last or 2
    try:
        if args.gate:
            verdict = trends.gate_trends(store, rel_tol=tolerance, last=last)
            return trends.format_gate(verdict), 0 if verdict["ok"] else 1
        return trends.render_trends(store, rel_tol=tolerance, last=last), 0
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro trends: {exc}")


def _run_dashboard(args) -> str:
    from repro.experiments.dashboard import render_dashboard

    out = args.out or "dashboard.html"
    tolerance = (args.tolerance if args.tolerance is not None else 25.0) / 100.0
    path, diagnostics = render_dashboard(
        out, recording_path=args.path, root=".", rel_tol=tolerance
    )
    lines = [f"dashboard -> {path} (self-contained HTML, open in any browser)"]
    lines += [f"  note: {message}" for message in diagnostics]
    return "\n".join(lines)

# Quick-mode overrides: (n, seeds) small enough for a coffee-break run.
_QUICK = {
    "t1": (24, 2), "f1": (100, 8), "e1": (16, 10), "e1b": (12, 5), "e2": (None, 20),
    "e3": (60, 6), "e4": (None, 1), "e5": (None, 2), "e6": (12, 15),
    "e7": (16, 4), "e8": (25, 2), "x1": (40, 2), "x2": (40, 2),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artefacts from 'Not a COINcidence' (PODC 2020).",
    )
    parser.add_argument(
        "command",
        choices=[
            *COMMANDS, "record", "report", "export", "diff", "explain",
            "fuzz", "check", "trends", "coverage", "dashboard", "degrade",
            "all", "list",
        ],
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="recording file (report/export/diff/explain commands)",
    )
    parser.add_argument(
        "path2", nargs="?", default=None,
        help="second recording (diff command)",
    )
    parser.add_argument("--n", type=int, default=None, help="system size override")
    parser.add_argument("--seeds", type=int, default=None, help="seed count override")
    parser.add_argument("--seed", type=int, default=0, help="single-run seed (record)")
    parser.add_argument(
        "--out", default=None, help="recording output path (record command)"
    )
    parser.add_argument(
        "--protocol", default="whp_ba", help="protocol to record (record command)"
    )
    parser.add_argument(
        "--protocols", default=None,
        help="comma-separated protocol list (check command; default "
        "whp_ba,mmr+alg1)",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="record without wall-clock phase timers",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="record without the telemetry probe / sidecar",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="trends: exit 1 on out-of-tolerance numeric drift",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="trends/dashboard: drift tolerance in percent (default 25)",
    )
    parser.add_argument(
        "--last", type=int, default=None,
        help="trends: window size for sparklines and drift (default 2)",
    )
    parser.add_argument(
        "--rarest", type=int, default=None,
        help="coverage: how many rarest-hit signatures to list (default 10)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="fuzz: mutated-candidate budget (default 200)",
    )
    parser.add_argument(
        "--atlas", default=None,
        help="fuzz: directory holding the coverage atlas (default .)",
    )
    parser.add_argument(
        "--slice", type=int, default=None,
        help="diff/explain: max causal-slice length (default 20)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="degrade: zoo scenario to sweep (default lossy_uniform; "
        "accepts a @rate suffix to pin the rate)",
    )
    parser.add_argument(
        "--rates", default=None,
        help="degrade: comma-separated hostility rates (default 0,0.02,0.05,0.1)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="degrade: tiny fixed sweep feeding the trend store (CI shape)",
    )
    parser.add_argument("--quick", action="store_true", help="smoke-scale parameters")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel sweep workers (default: serial, or REPRO_WORKERS; "
        "0 = one per CPU)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (description, _) in COMMANDS.items():
            print(f"  {name:4s} {description}")
        print("  record  run one protocol with the flight recorder attached")
        print("  report  render a recorded run (round timeline, words, coin, ...)")
        print("  export  convert a recording to Chrome/Perfetto trace JSON")
        print("  diff    localize the first divergent event between two recordings")
        print("  explain replay a recording, minimize and explain its failure")
        print("  fuzz    coverage-guided schedule fuzzing over a recording")
        print("  check   monitored conformance sweep (paper-property checks)")
        print("  trends  cross-run drift tables (--gate exits 1 on drift)")
        print("  coverage  schedule-coverage atlas views (--gate: stagnation)")
        print("  dashboard  single-pane HTML report (telemetry+trends+conformance)")
        print("  degrade  lossy-rate sweep over a zoo scenario (curves + knee)")
        return 0

    if args.command in ("record", "report", "export", "dashboard"):
        handler = {
            "record": _run_record, "report": _run_report, "export": _run_export,
            "dashboard": _run_dashboard,
        }[args.command]
        print(handler(args))
        return 0

    if args.command in ("diff", "explain", "fuzz", "degrade"):
        handler = {
            "diff": _run_diff, "explain": _run_explain, "fuzz": _run_fuzz,
            "degrade": _run_degrade,
        }[args.command]
        text, code = handler(args)
        print(text)
        return code

    if args.command == "check":
        if args.quick:
            args.n = args.n or 16
            args.seeds = args.seeds or 2
        text, code = _run_check(args)
        print(text)
        return code

    if args.command == "trends":
        text, code = _run_trends(args)
        print(text)
        return code

    if args.command == "coverage":
        text, code = _run_coverage(args)
        print(text)
        return code

    names = list(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        description, runner = COMMANDS[name]
        if args.quick and name in _QUICK:
            quick_n, quick_seeds = _QUICK[name]
            if args.n is None:
                args.n = quick_n
            if args.seeds is None:
                args.seeds = quick_seeds
        print(f"== {name}: {description} ==")
        start = time.time()
        print(runner(args))
        print(f"[{time.time() - start:.1f}s]\n")
        if args.command == "all":
            args.n = args.seeds = None  # per-experiment defaults
    return 0


if __name__ == "__main__":
    sys.exit(main())
