#!/usr/bin/env python3
"""Why the delayed-adaptive adversary matters (paper Section 2 + E6).

Runs the VRF shared coin (Algorithm 1) under three message schedulers:
two legal under Definition 2.1 (content-oblivious) and one that violates
it by reading VRF values in flight and withholding the minimum.  The
legal adversaries cannot touch the coin's agreement; the illegal one
cuts it to roughly a half -- which is exactly why the paper needs the
delayed-adaptivity assumption.

Run:  python examples/adversarial_schedules.py
"""

from __future__ import annotations

from repro.experiments import ablation


def main() -> None:
    rows = ablation.run(n=16, f=3, seeds=range(40))
    print("Shared coin (Algorithm 1) agreement rate by scheduler:\n")
    print(ablation.format_ablation(rows))
    by_name = {row.scheduler: row for row in rows}
    gap = by_name["random"].agreement.mean - by_name["content-aware"].agreement.mean
    print(
        f"\nbreaking delayed adaptivity costs {gap:.0%} agreement here; "
        "the withheld minimum never becomes 'common' (Lemma 4.4's premise)."
    )


if __name__ == "__main__":
    main()
