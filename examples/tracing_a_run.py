#!/usr/bin/env python3
"""Auditing a run with the event tracer.

Attaches a :class:`~repro.sim.trace.TraceRecorder` to a WHP-coin run
under adaptive *committee-hunting* corruption — the adversary corrupts
every committee member the moment its message appears — and then uses the
trace to verify the paper's process-replaceability argument event by
event: each hunted member had already broadcast before it was corrupted,
so the corruption changed nothing.

Run:  python examples/tracing_a_run.py
"""

from __future__ import annotations

import random

from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.sim import (
    Adversary,
    CommitteeTargetingCorruption,
    RandomScheduler,
    Simulation,
    attach_trace,
)


def main() -> None:
    n, f = 60, 4
    params = ProtocolParams.simulation_scale(n=n, f=f, lam=45)
    pki = PKI.create(n, rng=random.Random(11))
    sim = Simulation(
        n=n, f=f, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(11)),
            corruption=CommitteeTargetingCorruption(),
        ),
        seed=11, params=params,
    )
    trace = attach_trace(sim)
    sim.set_protocol_all(lambda ctx: whp_coin(ctx, 0))
    sim.run()

    outputs = {sim.returns[pid] for pid in sim.correct_pids if pid in sim.returns}
    print(f"coin outputs of correct processes: {outputs}")
    print(f"events traced: {len(trace)}  "
          f"(sends {len(trace.of_kind('send'))}, "
          f"deliveries {len(trace.of_kind('deliver'))})")

    print("\nfirst 12 events:")
    print(trace.render(limit=12))

    corrupted = trace.of_kind("corrupt")
    print(f"\nadaptive corruptions: {[e.pid for e in corrupted]}")
    for event in corrupted:
        first_send = trace.sends_by(event.pid)[0]
        print(
            f"  p{event.pid}: first broadcast at step {first_send.step}, "
            f"corrupted at step {event.step} -> "
            f"{'TOO LATE (replaceability)' if first_send.step <= event.step else 'early?!'}"
        )
    print(
        "\nEvery corruption landed after its victim's message was already "
        "in flight: committee-hunting is futile, as Section 6.1 argues."
    )


if __name__ == "__main__":
    main()
