#!/usr/bin/env python3
"""Auditing a run through the kernel event bus.

Subscribes a :class:`~repro.sim.FlightRecorder` to a WHP-coin run under
adaptive *committee-hunting* corruption — the adversary corrupts every
committee member the moment its message appears — and then uses the
typed event log to verify the paper's process-replaceability argument
event by event: each hunted member had already broadcast before it was
corrupted, so the corruption changed nothing.

The recorder sees every kernel event (sends, deliveries, corruptions,
decisions, wait blocking, protocol phases); the classic
``attach_trace``/``TraceRecorder`` API still works — it is now a bus
subscriber too, no longer a kernel monkeypatch — but new code should
subscribe to ``sim.events`` directly, as done here.  A recording can
also be persisted and rendered: see ``python -m repro record`` /
``python -m repro report``.

Run:  python examples/tracing_a_run.py
"""

from __future__ import annotations

import random

from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.sim import (
    Adversary,
    CommitteeTargetingCorruption,
    CorruptEvent,
    DeliverEvent,
    FlightRecorder,
    PhaseEvent,
    RandomScheduler,
    SendEvent,
    Simulation,
)


def main() -> None:
    n, f = 60, 4
    params = ProtocolParams.simulation_scale(n=n, f=f, lam=45)
    pki = PKI.create(n, rng=random.Random(11))
    sim = Simulation(
        n=n, f=f, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(11)),
            corruption=CommitteeTargetingCorruption(),
        ),
        seed=11, params=params,
    )
    recorder = FlightRecorder().attach(sim)
    sim.set_protocol_all(lambda ctx: whp_coin(ctx, 0))
    sim.run()

    events = recorder.events
    sends = [e for e in events if isinstance(e, SendEvent)]
    delivers = [e for e in events if isinstance(e, DeliverEvent)]
    outputs = {sim.returns[pid] for pid in sim.correct_pids if pid in sim.returns}
    print(f"coin outputs of correct processes: {outputs}")
    print(f"events recorded: {len(events)}  "
          f"(sends {len(sends)}, deliveries {len(delivers)})")

    spans = [e for e in events if isinstance(e, PhaseEvent)]
    opened = sum(e.action == "enter" for e in spans)
    closed = sum(e.action == "exit" for e in spans)
    print(f"whp_coin spans: {opened} opened, {closed} closed "
          f"(processes corrupted mid-span never close theirs)")

    print("\nfirst 8 deliveries:")
    for event in delivers[:8]:
        print(f"  [{event.step:5d}] {event.sender} -> {event.dest} "
              f"{event.message_kind} ({event.summary.words} words, "
              f"depth {event.depth})")

    corruptions = [e for e in events if isinstance(e, CorruptEvent)]
    print(f"\nadaptive corruptions: {[e.pid for e in corruptions]}")
    for event in corruptions:
        first_send = next(s for s in sends if s.sender == event.pid)
        verdict = (
            "TOO LATE (replaceability)"
            if first_send.step <= event.step
            else "early?!"
        )
        print(
            f"  p{event.pid}: first broadcast at step {first_send.step}, "
            f"corrupted at step {event.step} -> {verdict}"
        )
    print(
        "\nEvery corruption landed after its victim's message was already "
        "in flight: committee-hunting is futile, as Section 6.1 argues."
    )


if __name__ == "__main__":
    main()
