#!/usr/bin/env python3
"""A miniature of the paper's Table 1, measured (experiment T1).

Every protocol row -- Ben-Or, Bracha, Rabin, Cachin-style, MMR, MMR with
the paper's Algorithm 1 coin, and the paper's committee-based BA -- runs
on the same simulator with split inputs and silent Byzantine faults at
its own resilience operating point.  Compare the 'mean rounds' column:
the local-coin protocols pay many rounds, the common-coin ones a small
constant.  The word columns show the quadratic-versus-Õ(n) structure
(the committee protocol's advantage is asymptotic; see
benchmarks/bench_e4_scaling.py for the crossover).

Run:  python examples/protocol_comparison.py            (~1 minute)
"""

from __future__ import annotations

import time

from repro.experiments import table1


def main() -> None:
    start = time.time()
    rows = table1.run(n=30, seeds=range(3))
    print("Table 1, regenerated at n = 30 (3 seeds per row):\n")
    print(table1.format_table1(rows))
    print(f"\n[{time.time() - start:.0f}s]  Columns 2-4 restate the paper's "
          "analytic claims; the rest are measured.")


if __name__ == "__main__":
    main()
