#!/usr/bin/env python3
"""Multi-valued agreement: choosing a leader block among many proposals.

The paper solves binary agreement; this example uses the library's
multi-valued extension (the classical weak-validity reduction onto
Algorithm 4) to agree on an arbitrary value -- here, which of several
proposed blocks becomes the next one.  When proposals are split, the
protocol may decide the fallback "<no-agreement>"; when a quorum already
shares a value, that value wins.

Run:  python examples/multivalued_consensus.py
"""

from __future__ import annotations

from repro import ProtocolParams, multivalued_agreement, run_protocol
from repro.core.multivalued import NO_DECISION
from repro.sim import stop_when_all_decided


def decide(proposals: list[str], n: int = 60, f: int = 4, seed: int = 0) -> str:
    params = ProtocolParams.simulation_scale(n=n, f=f, safety_sigmas=4.0)
    result = run_protocol(
        n, f,
        lambda ctx: multivalued_agreement(ctx, proposals[ctx.pid % len(proposals)]),
        corrupt=set(range(f)),
        params=params,
        stop_condition=stop_when_all_decided,
        seed=seed,
    )
    assert result.live and result.agreement and result.all_correct_decided
    return result.decided_values.pop()


def main() -> None:
    print("scenario 1: every validator proposes the same block")
    outcome = decide(["block-7f3a"], seed=1)
    print(f"  decided: {outcome}\n")

    print("scenario 2: two competing blocks, 50/50 split")
    outcome = decide(["block-A", "block-B"], seed=2)
    label = "a proposed block" if outcome != NO_DECISION else "the ⊥ fallback"
    print(f"  decided: {outcome}  ({label}; weak validity allows either)\n")

    print("scenario 3: four-way fragmentation")
    outcome = decide(["b1", "b2", "b3", "b4"], seed=3)
    print(f"  decided: {outcome}")
    print(
        "\nweak validity in action: a non-⊥ decision is always some "
        "correct validator's proposal, and unanimity always wins."
    )


if __name__ == "__main__":
    main()
