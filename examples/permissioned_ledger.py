#!/usr/bin/env python3
"""Domain scenario: a permissioned ledger ordering service.

The paper's motivation is large-scale BFT systems; this example builds
the smallest such system on top of the library: a committee of n=60
validators decides, slot by slot, whether each proposed transaction batch
is committed (1) or aborted (0).  Validators vote from their local view
(here: whether they saw the batch in their mempool, simulated as a biased
per-validator observation), and Byzantine Agreement WHP makes the commit
decision unanimous despite f Byzantine validators and fully asynchronous
delivery.

The trusted setup (PKI) is generated ONCE and reused across every slot --
exactly the property the paper highlights ("setup has to occur once and
may be used for any number of BA instances").

Run:  python examples/permissioned_ledger.py
"""

from __future__ import annotations

import random

from repro import PKI, ProtocolParams, byzantine_agreement, run_protocol
from repro.crypto.hashing import derive_seed
from repro.sim import stop_when_all_decided


def main() -> None:
    n, f = 60, 4
    params = ProtocolParams.simulation_scale(n=n, f=f, lam=45)
    setup_rng = random.Random(derive_seed("ledger", "setup"))
    pki = PKI.create(n, rng=setup_rng)  # one setup for the whole ledger
    print(f"validators: {params.describe()}\n")

    ledger: list[tuple[str, int]] = []
    batches = [("batch-A", 0.9), ("batch-B", 0.15), ("batch-C", 0.8), ("batch-D", 0.5)]

    total_words = 0
    for slot, (batch, availability) in enumerate(batches):
        # Each validator votes 1 iff the batch reached its mempool.
        observation_rng = random.Random(derive_seed("ledger", "mempool", slot))
        saw_batch = [observation_rng.random() < availability for _ in range(n)]

        result = run_protocol(
            n,
            f,
            lambda ctx: byzantine_agreement(
                ctx, int(saw_batch[ctx.pid]), tag=f"slot-{slot}"
            ),
            corrupt=set(range(f)),
            pki=pki,  # REUSED setup
            params=params,
            stop_condition=stop_when_all_decided,
            seed=derive_seed("ledger", "slot", slot),
        )
        assert result.live and result.agreement and result.all_correct_decided
        decision = result.decided_values.pop()
        total_words += result.words
        ledger.append((batch, decision))
        votes = sum(saw_batch)
        print(
            f"slot {slot}: {batch:8s} votes {votes}/{n} -> "
            f"{'COMMIT' if decision else 'ABORT '}  "
            f"({result.words:,} words, depth {result.duration})"
        )

    committed = [batch for batch, decision in ledger if decision]
    print(f"\nledger: {committed}")
    print(f"total word complexity across {len(batches)} slots: {total_words:,}")


if __name__ == "__main__":
    main()
