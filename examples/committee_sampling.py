#!/usr/bin/env python3
"""Validated committee sampling, step by step (paper Section 5.1 + Figure 1).

Shows the primitive in isolation: every process locally evaluates its VRF
on the committee seed, learns whether it is sampled, and can later prove
it; the public committee-val rejects every forgery class.  Then samples
the approver's four committees (Figure 1) and checks the S1-S4 properties
of Claim 1 against their Chernoff bounds.

Run:  python examples/committee_sampling.py
"""

from __future__ import annotations

import random

from repro.analysis.bounds import committee_property_bounds
from repro.core.committees import (
    committee_seed,
    committee_val,
    sample_committee,
)
from repro.core.params import ProtocolParams
from repro.crypto.pki import PKI
from repro.experiments import fig1


def demonstrate_primitive() -> None:
    n = 40
    params = ProtocolParams(n=n, f=3, lam=12.0, d=0.05)
    pki = PKI.create(n, rng=random.Random(7))
    instance, role = ("demo-instance",), "init"

    members = sample_committee(pki, instance, role, params)
    print(f"committee for {role!r}: {sorted(members)}  (|C| = {len(members)}, "
          f"E[|C|] = {params.lam:.0f})")

    insider = next(iter(members))
    outsider = next(pid for pid in range(n) if pid not in members)
    seed_bytes = committee_seed(instance, role)
    proof = pki.vrf_scheme.prove(pki.vrf_private(insider), seed_bytes)
    print(f"member {insider} proves membership:        "
          f"{committee_val(pki, instance, role, insider, proof, params)}")
    outsider_proof = pki.vrf_scheme.prove(pki.vrf_private(outsider), seed_bytes)
    print(f"non-member {outsider} claims membership:    "
          f"{committee_val(pki, instance, role, outsider, outsider_proof, params)}")
    print(f"member's proof replayed by {outsider}:      "
          f"{committee_val(pki, instance, role, outsider, proof, params)}")
    print(f"member's proof replayed for role 'ok':   "
          f"{committee_val(pki, instance, 'ok', insider, proof, params)}")


def figure_1_statistics() -> None:
    print("\n--- Figure 1: the approver's four committees, measured ---\n")
    params = ProtocolParams(n=400, f=20, lam=60.0, d=0.06)
    run_params, stats = fig1.run(n=400, seeds=range(25), params=params)
    print(fig1.format_fig1(run_params, stats))
    print("\nChernoff bounds on per-committee violation probabilities:")
    for name, bound in committee_property_bounds(params).items():
        print(f"  {name}: <= {min(bound, 1.0):.3f}")


if __name__ == "__main__":
    demonstrate_primitive()
    figure_1_statistics()
