#!/usr/bin/env python3
"""Quickstart: one Byzantine Agreement WHP run, end to end.

Sets up the trusted PKI, picks committee parameters feasible at laptop
scale, corrupts f processes (silent Byzantine), runs Algorithm 4 with
adversarially split inputs under random (adversary-controlled) message
scheduling, and reports the paper's headline quantities: the decision,
word complexity, causal running time, and deciding rounds.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ProtocolParams, byzantine_agreement, run_protocol
from repro.sim import stop_when_all_decided


def main() -> None:
    n, f = 60, 4
    params = ProtocolParams.simulation_scale(n=n, f=f, lam=45)
    print(f"system: {params.describe()}")
    violations = params.paper_violations()
    print(f"paper-regime deviations at this scale: {len(violations)}")
    for violation in violations:
        print(f"  - {violation}")

    result = run_protocol(
        n,
        f,
        lambda ctx: byzantine_agreement(ctx, ctx.pid % 2),  # split inputs
        corrupt=set(range(f)),
        params=params,
        stop_condition=stop_when_all_decided,
        seed=2020,
    )

    assert result.live, "run did not complete (whp-committee shortfall)"
    print(f"\ndecided value(s):   {result.decided_values}")
    print(f"agreement held:     {result.agreement}")
    print(f"all correct decided: {result.all_correct_decided}")
    print(f"word complexity:    {result.words:,} words (correct senders only)")
    print(f"messages sent:      {result.metrics.messages_sent_correct:,}")
    print(f"causal duration:    {result.duration} message hops")
    rounds = sorted(
        {notes["decision_round"] + 1 for notes in result.notes.values() if "decision_round" in notes}
    )
    print(f"deciding round(s):  {rounds}  (O(1) expected)")


if __name__ == "__main__":
    main()
