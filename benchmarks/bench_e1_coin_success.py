"""Experiment E1: shared-coin success rate vs ε (Theorem 4.13).

What must reproduce: measured agreement rate sits above the closed-form
bound 2·(18ε²+24ε−1)/(6(1+6ε)) at every ε, rises with ε, and hits 1.0 at
f = 0 (Remark 4.10's perfect coin -- with f = 0 every process waits for
everyone and holds the global minimum deterministically).
"""

from __future__ import annotations

from conftest import once

from repro.experiments import coin_success

N = 24
F_VALUES = (0, 1, 2, 3, 4, 5, 6, 7)
SEEDS = range(60)


def test_e1_success_vs_epsilon(benchmark, save_report):
    points = once(benchmark, lambda: coin_success.run(n=N, f_values=F_VALUES, seeds=SEEDS))
    for point in points:
        assert point.estimate.mean >= max(0.0, 2 * point.paper_bound) - 1e-9
    assert points[0].estimate.mean == 1.0  # f = 0: perfect coin
    rates = [point.estimate.mean for point in points]
    # Shape: rate does not collapse as f grows within the tolerated range.
    assert min(rates) >= 0.5
    save_report(
        "E1_coin_success",
        f"E1: Algorithm 1 agreement rate vs epsilon (n={N}, {len(list(SEEDS))} seeds/point)\n\n"
        + coin_success.format_coin_success(points),
    )


def test_e1_single_point_timing(benchmark):
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: coin_success.run_point(N, 4, [next(counter)]),
        rounds=1, iterations=3,
    )
