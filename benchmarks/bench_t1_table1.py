"""Experiment T1: regenerate the paper's Table 1 (see DESIGN.md).

Every protocol row runs at its resilience operating point with split
inputs and silent Byzantine faults; the saved table puts the paper's
analytic columns next to the measured ones.  What must reproduce:
termination and agreement everywhere, exponential-ish round counts for
the local-coin rows versus small constants for the common-coin rows, and
quadratic-versus-Õ(n) word structure (asymptotics in bench_e4_scaling).
"""

from __future__ import annotations

from conftest import once

from repro.experiments import table1

N = 40
SEEDS = range(3)


def test_t1_regenerate_table1(benchmark, save_report, save_json):
    rows = once(benchmark, lambda: table1.run(n=N, seeds=SEEDS))
    for row in rows:
        # The committee-based row terminates whp, not surely: tolerate one
        # committee-shortfall seed (the table reports the exact fraction).
        assert row.terminated >= row.trials - 1, row.protocol
        assert row.agreed == row.terminated, row.protocol
    save_report("T1_table1", f"T1: Table 1 at n={N}, seeds={len(list(SEEDS))}\n\n"
                + table1.format_table1(rows))
    save_json("T1_table1", rows)


def test_t1_single_row_timing(benchmark):
    """Timing canary: one MMR run at the table's scale."""
    counter = iter(range(10**9))
    row = benchmark.pedantic(
        lambda: table1.run_row("mmr", N, [next(counter)]), rounds=1, iterations=2
    )
    assert row.terminated == row.trials
