"""Experiment E6: the delayed-adaptivity ablation (Definition 2.1).

What must reproduce: both *legal* schedulers (content-oblivious random
and targeted-delay) leave the coin's agreement near 1 at this scale; the
*illegal* content-aware minimum-withholding scheduler collapses it toward
1/2 -- the restriction on the adversary is what the coin's success rate
stands on.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import ablation

N, F = 16, 3
SEEDS = range(60)


def test_e6_delayed_adaptivity_ablation(benchmark, save_report):
    rows = once(benchmark, lambda: ablation.run(n=N, f=F, seeds=SEEDS))
    by_name = {row.scheduler: row for row in rows}
    assert by_name["random"].agreement.mean >= 0.95
    assert by_name["targeted"].agreement.mean >= 0.95
    assert by_name["content-aware"].agreement.mean <= 0.8
    gap = by_name["random"].agreement.mean - by_name["content-aware"].agreement.mean
    assert gap >= 0.2
    save_report(
        "E6_ablation",
        f"E6: Algorithm 1 agreement by scheduler (n={N}, f={F}, "
        f"{len(list(SEEDS))} seeds/row)\n\n" + ablation.format_ablation(rows),
    )
