"""Experiment X1 (extension, DESIGN §5 / paper future work): the
probability-1-termination hybrid's fallback trade-off.

What must reproduce: with zero committee rounds every decision comes from
the MMR fallback; by a handful of committee rounds the fallback rate is
(near) zero and decisions come from the Õ(n) phase -- i.e. the quadratic
insurance is paid only with the committee phase's failure probability.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import hybrid_fallback

N, F = 60, 4
SEEDS = range(8)


def test_x1_fallback_tradeoff(benchmark, save_report):
    points = once(
        benchmark,
        lambda: hybrid_fallback.run(
            n=N, f=F, committee_round_values=(0, 1, 2, 4), seeds=SEEDS
        ),
    )
    by_rounds = {point.committee_rounds: point for point in points}
    for point in points:
        assert point.agreement_ok == point.terminated
    # Pure fallback at 0 committee rounds.
    assert by_rounds[0].fallback_runs == by_rounds[0].terminated
    assert by_rounds[0].committee_deciders == 0
    # With 4 committee rounds, essentially everyone decides sub-quadratically.
    assert by_rounds[4].fallback_deciders <= by_rounds[4].committee_deciders / 10
    save_report(
        "X1_hybrid",
        f"X1: hybrid fallback rate vs committee rounds (n={N}, f={F}, "
        f"{len(list(SEEDS))} seeds/point)\n\n"
        + hybrid_fallback.format_hybrid(points),
    )
