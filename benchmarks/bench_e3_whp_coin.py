"""Experiment E3: WHP-coin success rate vs d (Lemma B.7).

What must reproduce: agreement rate above the closed-form whp bound
2·(18d²+27d−1)/(3(5+6d)(1−d)(1+9d)) at every d in the sweep, plus the
liveness ('whp') accounting: runs where a sampled committee undershoots W
deadlock, and their frequency falls as d shrinks W.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import whp_coin_sweep

N, F = 120, 4
D_VALUES = (0.005, 0.01, 0.02, 0.04)
SEEDS = range(30)


def test_e3_success_vs_d(benchmark, save_report):
    points = once(
        benchmark,
        lambda: whp_coin_sweep.run(n=N, f=F, d_values=D_VALUES, seeds=SEEDS),
    )
    for point in points:
        if point.live:
            bound = max(0.0, 2 * point.paper_bound)
            assert point.agreement.mean >= bound - 1e-9, point.params.d
    # Liveness is monotone the right way: smaller d => smaller W => more
    # live runs.
    live_rates = [point.live / point.trials for point in points]
    assert live_rates[0] >= live_rates[-1] - 0.1
    assert live_rates[0] >= 0.9
    save_report(
        "E3_whp_coin",
        f"E3: Algorithm 2 agreement and liveness vs d (n={N}, f={F}, "
        f"{len(list(SEEDS))} seeds/point)\n\n"
        + whp_coin_sweep.format_whp_coin(points),
    )


def test_e3_single_run_timing(benchmark):
    from repro.core.params import ProtocolParams

    params = ProtocolParams.simulation_scale(n=N, f=F)
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: whp_coin_sweep.run_point(params, [next(counter)]),
        rounds=1, iterations=2,
    )
