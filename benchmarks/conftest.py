"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*`` file both *times* a representative workload (ordinary
pytest-benchmark usage) and *regenerates* its paper artefact, printing
the table and saving it under ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from the files.

Both save fixtures also feed the cross-run trend store
(:mod:`repro.experiments.trends`): each benchmark leaves a
``BENCH_<name>.json`` snapshot at the repository root and appends to the
``BENCH_trends.jsonl`` journal, so ``python -m repro trends`` can show
the trajectory (and drift) of every benchmark over time, not just its
latest table.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def save_report():
    """Persist one experiment's rendered table; returns the file path."""
    from repro.experiments.trends import record_bench

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        record_bench(name, {"report": text}, root=REPO_ROOT)
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist one experiment's raw rows as JSON (machine-readable twin of
    ``save_report``); later runs can be drift-checked against it with
    :func:`repro.experiments.store.compare_results` or
    ``python -m repro trends``."""
    from repro.experiments.store import save_results
    from repro.experiments.trends import record_bench

    def _save(name: str, payload):
        path = save_results(name, payload, RESULTS_DIR)
        record_bench(name, payload, root=REPO_ROOT)
        return path

    return _save


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment regenerations are long-running and deterministic; timing a
    single execution keeps ``pytest benchmarks/ --benchmark-only`` honest
    without re-running multi-minute sweeps.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
