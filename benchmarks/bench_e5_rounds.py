"""Experiment E5: O(1) expected rounds, independent of n (Lemma 6.14).

What must reproduce: the mean deciding round of Algorithm 4 under
worst-case split inputs stays a small constant (≈ 2) across the n sweep
rather than growing -- the signature of the constant-success-rate coin.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import rounds

N_VALUES = (40, 80, 140)
SEEDS = range(6)


def test_e5_rounds_flat_in_n(benchmark, save_report):
    points = once(benchmark, lambda: rounds.run(n_values=N_VALUES, seeds=SEEDS))
    for point in points:
        assert point.completed >= point.trials - 1  # allow one whp shortfall
        assert point.mean_rounds <= 4.0, point.n
        assert point.max_rounds <= 8, point.n
    means = [point.mean_rounds for point in points]
    # Flatness: no doubling across a 3.5x n range.
    assert max(means) <= 2 * min(means) + 1
    save_report(
        "E5_rounds",
        f"E5: deciding round of Algorithm 4 vs n ({len(list(SEEDS))} seeds/point)\n\n"
        + rounds.format_rounds(points),
    )
