"""Experiment E4: word-complexity scaling (Section 6.2's Õ(n) vs O(n²)).

Configuration notes (see `scaling.run`'s docstring): the sweep fixes
f = 2 and 3σ committee margins so the feasibility-inflated λ plateaus
inside the measured range -- growing f with n would hold the measurement
in the pre-asymptotic regime where λ itself grows and the ok-messages' λ²
term swamps the n-scaling (that regime is itself reported in
EXPERIMENTS.md).  Resilience-stressed configurations are T1/E8's job.

What must reproduce: per-round word slope ≈ 2 for the quadratic
baselines, materially smaller (n·λ² with λ plateauing, ≈ 1.5 here) for
the committee-based BA; message counts cross over in our favour within
the sweep.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import scaling

N_VALUES = (50, 100, 200, 400)
SEEDS = range(2)


def test_e4_scaling_curves(benchmark, save_report, save_json):
    curves = once(
        benchmark,
        lambda: scaling.run(
            n_values=N_VALUES, seeds=SEEDS,
            protocols=("cachin", "mmr+alg1", "whp_ba"),
            f=2, whp_sigmas=3.0,
        ),
    )
    by_name = {curve.protocol: curve for curve in curves}
    assert by_name["cachin"].slope_words_per_round > 1.8
    assert by_name["mmr+alg1"].slope_words_per_round > 1.8
    assert by_name["whp_ba"].slope_words_per_round < 1.7
    assert (
        by_name["whp_ba"].slope_words_per_round
        < by_name["mmr+alg1"].slope_words_per_round - 0.2
    )
    # Message-count crossover by the top of the sweep.
    assert by_name["whp_ba"].mean_messages[-1] < by_name["mmr+alg1"].mean_messages[-1]
    from repro.analysis.complexity import predicted_crossover

    word_crossover = predicted_crossover("whp_ba", "mmr")
    save_report(
        "E4_scaling",
        f"E4: words/messages vs n, split inputs, f=2 fixed, "
        f"{len(list(SEEDS))} seeds/point\n\n"
        + scaling.format_scaling(curves)
        + f"\n\nmodel-predicted word crossover vs MMR (lam = 8 ln n): "
        f"n ~ {word_crossover:,}",
    )
    save_json("E4_scaling", curves)
