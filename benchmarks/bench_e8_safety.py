"""Experiment E8: safety/liveness sweep (Definition 6.6).

What must reproduce: zero Agreement and zero Validity violations in every
legal protocol × Byzantine-strategy × scheduler cell; termination rates
at or near 1 (committee protocols may show whp shortfalls, reported, not
hidden).
"""

from __future__ import annotations

from conftest import once

from repro.experiments import safety

N = 40
SEEDS = range(4)


def test_e8_safety_grid(benchmark, save_report):
    cells = once(
        benchmark,
        lambda: safety.run(
            protocols=("whp_ba", "mmr", "cachin"),
            n=N, seeds=SEEDS,
        ),
    )
    for cell in cells:
        assert cell.agreement_violations == 0, (cell.protocol, cell.strategy)
        assert cell.validity_violations == 0, (cell.protocol, cell.strategy)
        assert cell.terminated >= cell.trials - 1, (cell.protocol, cell.strategy)
    save_report(
        "E8_safety",
        f"E8: safety grid at n={N} ({len(list(SEEDS))} seeds/cell; each "
        "(protocol, strategy) appears twice: split then unanimous inputs)\n\n"
        + safety.format_safety(cells),
    )
