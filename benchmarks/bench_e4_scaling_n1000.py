"""E4 scaling smoke at n=1000: the batched kernel's headline point
(see DESIGN.md section 10).

One fixed-seed ``whp_ba`` run at n=1000 under the fast (simulated) VRF,
FIFO schedule, split inputs (pid % 2), batched delivery -- ~1.6M
deliveries.  The batched kernel plus the identity-keyed validation memos
bring this from ~24s (classic kernel, PR-5 seed) to single-digit
seconds, which is the acceptance bar this benchmark pins down:

* every *deterministic* counter of the run (deliveries, words, messages,
  rounds, decisions, verification/cache/wait counters) is recorded as a
  trend-store series, so ``python -m repro trends --gate`` fails CI if
  the batched kernel ever changes an observable -- the counters double
  as a byte-identity fingerprint, since the batched and classic paths
  must agree on all of them (tests/integration compares them directly);
* wall-clock goes into fields containing ``seconds`` -- named so the
  gate's volatile-path exclusion (``GATE_EXCLUDED_SUBSTRINGS``) skips
  them -- and is *asserted* single-digit only in the full (non-smoke)
  run, where the machine is the one the claim is made on.

The timed section runs with the cyclic GC disabled (standard bench
hygiene: the run allocates ~1.9M envelopes that a mid-run collection
would otherwise scan; nothing in the kernel relies on collection).

Run standalone for CI (records the trend series, no timing assertion)::

    PYTHONPATH=src python benchmarks/bench_e4_scaling_n1000.py --smoke
"""

from __future__ import annotations

import gc
import sys
import time

from repro.experiments.protocols import make_runner
from repro.experiments.scaling import make_adversary
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided

N = 1000
SEED = 7
SCHEDULER = "fifo"
MAX_DELIVERIES = 8_000_000
SINGLE_DIGIT_BUDGET = 10.0  # seconds; the ISSUE's acceptance bar


def run_point() -> tuple[dict, RunResult]:
    """The n=1000 fast-VRF point; returns (trend payload, result)."""
    factory, params, f = make_runner("whp_ba", N, seed=SEED)
    adversary = make_adversary(SCHEDULER, f, SEED)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_protocol(
            N, f, factory, adversary=adversary, params=params,
            stop_condition=stop_when_all_decided, seed=SEED,
            max_deliveries=MAX_DELIVERIES, delivery_mode="batched",
        )
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()

    assert result.live, "n=1000 run hit the delivery budget"
    assert result.all_correct_decided, "n=1000 run did not decide"
    decision_rounds = [
        notes["decision_round"] + 1
        for notes in result.notes.values()
        if "decision_round" in notes
    ]
    metrics = result.metrics
    payload = {
        # Configuration (gated: a silent config change is a regression).
        "n": N,
        "f": f,
        "seed": SEED,
        "delivery_mode_batched": 1,
        # Deterministic counters: identical on every machine, and
        # identical to the classic kernel's -- the gate freezes them.
        "deliveries": result.deliveries,
        "words": result.words,
        "messages_sent_correct": metrics.messages_sent_correct,
        "decided": len(result.decisions),
        "rounds": max(decision_rounds) if decision_rounds else 1,
        "verifications": metrics.verifications,
        "verification_cache_hits": metrics.verification_cache_hits,
        "wait_evaluations": metrics.wait_evaluations,
        "wait_skips": metrics.wait_skips,
        # Volatile (excluded from gating by the `seconds` substring).
        "wallclock_seconds": round(elapsed, 3),
        "deliveries_per_second": round(result.deliveries / elapsed, 1)
        if elapsed else 0.0,  # path contains `second` -> excluded too
    }
    return payload, result


def format_point(payload: dict) -> str:
    return (
        f"E4 n={payload['n']} fast-VRF (seed {payload['seed']}, "
        f"{SCHEDULER}, batched kernel):\n"
        f"  {payload['deliveries']} deliveries, {payload['rounds']} round(s), "
        f"{payload['decided']}/{payload['n'] - payload['f']} correct decided\n"
        f"  {payload['wallclock_seconds']:.2f}s wall-clock "
        f"({payload['deliveries_per_second']:.0f} deliveries/s)"
    )


def test_e4_n1000_single_digit_seconds(benchmark, save_report, save_json):
    from conftest import once

    payload, _ = once(benchmark, run_point)
    save_report("E4_scaling_n1000", format_point(payload))
    save_json("E4_scaling_n1000", payload)
    assert payload["wallclock_seconds"] < SINGLE_DIGIT_BUDGET, (
        f"n=1000 point took {payload['wallclock_seconds']:.2f}s, "
        f"budget {SINGLE_DIGIT_BUDGET:.0f}s\n" + format_point(payload)
    )


def main(argv: list[str]) -> int:
    import argparse

    from repro.experiments.trends import record_bench

    from conftest import REPO_ROOT

    parser = argparse.ArgumentParser(
        description="Record the E4 n=1000 fast-VRF scaling point."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="record the (identical) point without the wall-clock assertion",
    )
    smoke = parser.parse_args(argv).smoke
    payload, _ = run_point()
    record_bench("E4_scaling_n1000", payload, root=REPO_ROOT)
    print(format_point(payload))
    if not smoke and payload["wallclock_seconds"] >= SINGLE_DIGIT_BUDGET:
        print(
            f"FAIL: exceeded the {SINGLE_DIGIT_BUDGET:.0f}s single-digit budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    sys.exit(main(sys.argv[1:]))
