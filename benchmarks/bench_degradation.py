"""Degradation sweep determinism + timing (see DESIGN.md section 14).

What must reproduce: the degradation observatory's acceptance property --
the same ``(scenario, n, rates, seeds)`` sweep always yields the *same
curve JSON*.  Lossy fates are functions of (run seed, envelope seq) and
the payload carries no timestamps, so any nondeterminism here means a
kernel or scenario regression, not noise.  The bench runs the sweep
twice and asserts byte-equal serializations, then sanity-checks the
curve's shape: a monotone hostility axis, a healthy rate-0 point, and a
knee whenever the decide-rate actually crossed the threshold.

Run standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_degradation.py --smoke

The smoke run records the same ``degradation`` trend-series payload as
``python -m repro degrade --smoke`` (the journal dedupes the twin), so
either entry point keeps ``repro trends --gate`` fed.
"""

from __future__ import annotations

import json
import sys
import time

from repro.experiments.degradation import (
    format_degradation,
    smoke_degradation,
    sweep_degradation,
)

FULL = dict(scenario="lossy_uniform", n=8, rates=(0.0, 0.05, 0.1), seeds=4)


def _sweep(smoke: bool) -> dict:
    return smoke_degradation() if smoke else sweep_degradation(**FULL)


def run_degradation(smoke: bool = False) -> tuple[str, dict]:
    started = time.perf_counter()
    payload = _sweep(smoke)
    first_s = time.perf_counter() - started

    started = time.perf_counter()
    twin = _sweep(smoke)
    second_s = time.perf_counter() - started
    first_json = json.dumps(payload, sort_keys=True)
    assert first_json == json.dumps(twin, sort_keys=True), (
        "degradation sweep is nondeterministic: same (scenario, n, rates, "
        "seeds) produced different curve JSON"
    )

    points = payload["points"]
    rates = [point["rate"] for point in points]
    assert rates == sorted(rates) and len(points) >= 2
    assert points[0]["rate"] == 0.0 and points[0]["link_faults"] == {
        "drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0,
    }, "rate-0 point must be fault-free"
    crossed = any(
        point["decide_rate"] < payload["threshold"] for point in points
    )
    assert (payload["knee"] is not None) == crossed

    lines = [
        format_degradation(payload),
        "",
        f"determinism: two sweeps, identical {len(first_json)}-byte JSON "
        f"({first_s:.2f} s + {second_s:.2f} s)",
    ]
    summary = dict(payload)
    summary["wallclock"] = {  # excluded from gating: machine-dependent
        "first_sweep_s": first_s,
        "second_sweep_s": second_s,
    }
    return "\n".join(lines), summary


def test_degradation(benchmark, save_report):
    from conftest import once

    report, _ = once(benchmark, lambda: run_degradation(smoke=False))
    save_report("bench_degradation", report)


def main(argv: list[str]) -> int:
    import argparse
    from pathlib import Path

    from repro.experiments.trends import record_bench

    parser = argparse.ArgumentParser(
        description="Assert degradation-sweep determinism and time it."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep (2 rates x 2 seeds); feeds the trend store",
    )
    smoke = parser.parse_args(argv).smoke
    report, summary = run_degradation(smoke=smoke)
    print(report)
    if smoke:
        # Record the raw sweep payload (not the timed summary): it must
        # fingerprint identically to `python -m repro degrade --smoke`.
        payload = {
            key: value for key, value in summary.items() if key != "wallclock"
        }
        repo_root = Path(__file__).resolve().parent.parent
        path, _ = record_bench("degradation", payload, root=repo_root)
        print(f"trend record -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
