"""Experiment E2: committee properties S1-S4 vs Chernoff bounds (Claim 1).

Two regimes are swept:

* the paper's λ = 8 ln n -- the measured violation rates show honestly
  how slowly the asymptotics bite (the Chernoff exponents are ~d²λ with
  d ≈ 0.05);
* the simulation-scale parameters the rest of the harness uses, where
  3-sigma margins keep the liveness/safety properties (S3/S4) near zero.

What must reproduce: measured rates under the analytic bounds, decreasing
with n, and S3/S4 ≈ 0 at simulation scale.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import committee_bounds

SEEDS = range(100)


def test_e2_paper_lambda(benchmark, save_report):
    points = once(
        benchmark,
        lambda: committee_bounds.run(
            n_values=(100, 400, 1600, 6400), f_fraction=0.1,
            seeds=SEEDS, paper_lambda=True,
        ),
    )
    for point in points:
        for name in ("S1", "S2", "S3", "S4"):
            measured = point.violations[name] / point.trials
            # Chernoff is an upper bound (allow Monte-Carlo noise ~4 sigma).
            bound = min(1.0, point.chernoff[name])
            sigma = (bound * (1 - bound) / point.trials) ** 0.5
            assert measured <= bound + 4 * sigma + 0.05, (point.params.n, name)
    save_report(
        "E2_committee_bounds_paper",
        f"E2a: S1-S4 violation rates, paper lambda = 8 ln n ({len(list(SEEDS))} seeds)\n\n"
        + committee_bounds.format_committee_bounds(points),
    )


def test_e2_simulation_scale(benchmark, save_report):
    points = once(
        benchmark,
        lambda: committee_bounds.run(
            n_values=(100, 400, 1600), f_fraction=0.05,
            seeds=SEEDS, paper_lambda=False,
        ),
    )
    for point in points:
        assert point.violations["S3"] / point.trials <= 0.05, point.params.n
        assert point.violations["S4"] / point.trials <= 0.05, point.params.n
    save_report(
        "E2_committee_bounds_simscale",
        f"E2b: S1-S4 violation rates, simulation-scale parameters ({len(list(SEEDS))} seeds)\n\n"
        + committee_bounds.format_committee_bounds(points),
    )
