"""Experiment X2 (extension): the λ² term earning its keep.

What must reproduce: removing the W-signed-echo justification from ok
messages cuts approver words by roughly λ/3 (the λ² term), and under a
Byzantine ok-injection attack collapses Validity in essentially every
run, while the justified protocol shrugs the same attack off completely.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import justification_ablation

N, F = 60, 4
SEEDS = range(10)


def test_x2_justification_tradeoff(benchmark, save_report):
    points = once(
        benchmark, lambda: justification_ablation.run(n=N, f=F, seeds=SEEDS)
    )
    by_key = {(point.justify, point.attack): point for point in points}
    # Justified: zero violations, attack or not.
    assert by_key[(True, False)].validity_violations == 0
    assert by_key[(True, True)].validity_violations == 0
    # Ablated: clean without attack, broken with it.
    assert by_key[(False, False)].validity_violations == 0
    assert by_key[(False, True)].validity_violations >= by_key[(False, True)].live * 0.8
    # The words saved are the lambda^2 term: a multiple, not a percent.
    assert by_key[(True, False)].mean_words > 5 * by_key[(False, False)].mean_words
    save_report(
        "X2_justification",
        f"X2: ok-justification ablation (n={N}, f={F}, {len(list(SEEDS))} "
        "seeds/cell)\n\n"
        + justification_ablation.format_justification(points),
    )
