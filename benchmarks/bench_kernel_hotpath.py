"""Kernel hot-path microbenchmark: cached vs uncached simulation kernel
(the purity argument lives in section 6, see DESIGN.md).

Times the same seed sweep (WHP coin at n=120 and full BA at n=100) twice:
once on the optimised kernel (verification cache + instance-keyed
wakeups), once with both disabled (``verify_cache=False`` +
``eager_wakeups=True`` -- the pre-optimisation kernel).  Asserts

* every observable RunResult field is identical between the two paths
  (the optimisations are pure); and
* the optimised kernel is at least 2x faster wall-clock on the combined
  sweep, with the verification-cache hit rate reported.

Also reports the parallel-sweep path (``parallel_map`` with one worker
per CPU); on a single-CPU box that adds nothing, so speedup is asserted
on the serial cached path only.

Run standalone for CI smoke (tiny sweep, no pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --smoke
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.experiments.parallel import derive_sweep_seeds, parallel_map
from repro.experiments.protocols import make_runner
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided

COIN_N, COIN_F = 120, 4
BA_N = 100
ROOT_SEED = 2020


def _observable(result: RunResult) -> tuple:
    """Every kernel-determined RunResult field (metrics excluded: the
    cache/wakeup counters legitimately differ between the two paths)."""
    return (
        result.n,
        result.f,
        result.seed,
        result.corrupted,
        result.returns,
        result.decisions,
        result.decision_depths,
        result.notes,
        result.words,
        result.metrics.messages_sent_correct,
        result.metrics.messages_sent_total,
        result.metrics.messages_delivered,
        result.deliveries,
        result.deadlocked,
        result.exhausted,
        result.stopped_by_condition,
    )


def _coin_trial(seed: int, fast: bool) -> RunResult:
    params = ProtocolParams.simulation_scale(n=COIN_N, f=COIN_F)
    return run_protocol(
        COIN_N, COIN_F, lambda ctx: whp_coin(ctx, 0),
        corrupt=set(range(COIN_F)), params=params, seed=seed,
        verify_cache=fast, eager_wakeups=not fast,
    )


def _ba_trial(seed: int, fast: bool) -> RunResult:
    factory, params, f = make_runner("whp_ba", BA_N, seed=seed)
    return run_protocol(
        BA_N, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        verify_cache=fast, eager_wakeups=not fast,
    )


def _timed_sweep(coin_seeds, ba_seeds, fast: bool):
    start = time.perf_counter()
    results = [_coin_trial(seed, fast) for seed in coin_seeds]
    results += [_ba_trial(seed, fast) for seed in ba_seeds]
    return time.perf_counter() - start, results


def _hit_rate(results) -> float:
    hits = sum(r.metrics.verification_cache_hits for r in results)
    calls = sum(r.metrics.verifications for r in results)
    return hits / calls if calls else 0.0


def run_comparison(coin_trials: int, ba_trials: int, require_speedup: float | None):
    coin_seeds = derive_sweep_seeds(ROOT_SEED, coin_trials, "hotpath-coin")
    ba_seeds = derive_sweep_seeds(ROOT_SEED, ba_trials, "hotpath-ba")

    fast_elapsed, fast_results = _timed_sweep(coin_seeds, ba_seeds, fast=True)
    slow_elapsed, slow_results = _timed_sweep(coin_seeds, ba_seeds, fast=False)

    for fast_result, slow_result in zip(fast_results, slow_results):
        assert _observable(fast_result) == _observable(slow_result), (
            f"cached kernel changed an observable result "
            f"(n={fast_result.n}, seed={fast_result.seed})"
        )
    for slow_result in slow_results:
        assert slow_result.metrics.verification_cache_hits == 0
        assert slow_result.metrics.wait_skips == 0

    # The parallel executor path must aggregate the identical sweep.
    pool_results = parallel_map(
        _coin_trial, [(seed, True) for seed in coin_seeds],
        workers=os.cpu_count(),
    )
    for pooled, serial in zip(pool_results, fast_results):
        assert _observable(pooled) == _observable(serial)

    speedup = slow_elapsed / fast_elapsed if fast_elapsed else float("inf")
    skips = sum(r.metrics.wait_skips for r in fast_results)
    evaluations = sum(r.metrics.wait_evaluations for r in fast_results)
    report = (
        f"kernel hot-path: {coin_trials} whp_coin(n={COIN_N}) + "
        f"{ba_trials} whp_ba(n={BA_N}) runs\n"
        f"  cached+keyed : {fast_elapsed:8.2f}s  "
        f"(verify hit rate {_hit_rate(fast_results):.3f}, "
        f"wait evals {evaluations}, skips {skips})\n"
        f"  uncached+eager: {slow_elapsed:7.2f}s\n"
        f"  speedup      : {speedup:8.2f}x  (workers={os.cpu_count()})"
    )
    if require_speedup is not None:
        assert speedup >= require_speedup, (
            f"expected >= {require_speedup}x speedup, measured {speedup:.2f}x\n"
            + report
        )
    return report, speedup


def test_kernel_hotpath_speedup(benchmark, save_report):
    from conftest import once

    report, _ = once(benchmark, lambda: run_comparison(4, 2, require_speedup=2.0))
    save_report("bench_kernel_hotpath", report)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Compare the optimised kernel against the uncached+eager reference."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep: equivalence checked, no timing assertion",
    )
    if parser.parse_args(argv).smoke:
        # CI-sized: one small run of each shape, equivalence checked, no
        # timing assertion (shared runners make wall-clock unreliable).
        report, _ = run_comparison(1, 1, require_speedup=None)
    else:
        report, _ = run_comparison(4, 2, require_speedup=2.0)
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
