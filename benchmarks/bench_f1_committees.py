"""Experiment F1: the approver's committee structure (paper Figure 1).

Figure 1 draws the four committees one approver instance samples; here
they are sampled for real over many keysets and measured against the
Claim 1 properties.  What must reproduce: mean sizes ≈ λ, zero-ish S3/S4
violations at simulation-scale d, and per-value echo committees that are
genuinely distinct sets.
"""

from __future__ import annotations

from conftest import once

from repro.analysis.bounds import committee_property_bounds
from repro.core.params import ProtocolParams
from repro.experiments import fig1

PARAMS = ProtocolParams.simulation_scale(n=400, f=20)
SEEDS = range(40)


def test_f1_regenerate_figure1(benchmark, save_report):
    params, stats = once(benchmark, lambda: fig1.run(seeds=SEEDS, params=PARAMS))
    assert len(stats) == 4
    for stat in stats:
        # 3-sigma margins: allow at most one tail draw per committee role.
        assert stat.s3_violations <= 1, stat.role
        assert stat.s4_violations <= 1, stat.role
    bounds = committee_property_bounds(params)
    bounds_text = "\n".join(
        f"  {name}: Chernoff bound {min(value, 1.0):.4f}" for name, value in bounds.items()
    )
    save_report(
        "F1_committees",
        f"F1: approver committees over {len(list(SEEDS))} keysets\n\n"
        + fig1.format_fig1(params, stats)
        + "\n\nAppendix A tail bounds per committee:\n" + bounds_text,
    )


def test_f1_sampling_throughput(benchmark):
    """Timing canary: sampling all four committees for one keyset."""
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: fig1.run(seeds=[next(counter)], params=PARAMS),
        rounds=1, iterations=3,
    )
