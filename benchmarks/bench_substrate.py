"""Micro-benchmarks for the cryptographic and simulation substrate.

Not a paper artefact -- these exist so regressions in the hot paths (VRF
evaluation dominates committee protocols; the kernel's delivery loop
dominates everything) are visible in benchmark history.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.rsa import generate_keypair, rsa_sign, rsa_verify
from repro.crypto.shamir import reconstruct_secret, split_secret
from repro.crypto.threshold import ThresholdCoinDealer
from repro.crypto.vrf import RSAFDHVRF, SimulatedVRF
from repro.sim.runner import run_protocol


@pytest.fixture(scope="module")
def rsa_key():
    return generate_keypair(bits=512, rng=random.Random(1))


def test_simulated_vrf_prove(benchmark):
    scheme = SimulatedVRF()
    sk, _ = scheme.keygen(random.Random(2))
    benchmark(lambda: scheme.prove(sk, b"round-7"))


def test_simulated_vrf_verify(benchmark):
    scheme = SimulatedVRF()
    sk, pk = scheme.keygen(random.Random(3))
    output = scheme.prove(sk, b"round-7")
    benchmark(lambda: scheme.verify(pk, b"round-7", output))


def test_rsa_fdh_vrf_prove(benchmark):
    scheme = RSAFDHVRF(modulus_bits=512)
    sk, _ = scheme.keygen(random.Random(4))
    benchmark(lambda: scheme.prove(sk, b"round-7"))


def test_rsa_sign(benchmark, rsa_key):
    benchmark(lambda: rsa_sign(rsa_key, b"message"))


def test_rsa_verify(benchmark, rsa_key):
    signature = rsa_sign(rsa_key, b"message")
    benchmark(lambda: rsa_verify(rsa_key.public_key(), b"message", signature))


def test_shamir_split_reconstruct(benchmark):
    rng = random.Random(5)

    def roundtrip():
        shares = split_secret(123456789, threshold=11, num_shares=31, rng=rng)
        return reconstruct_secret(shares[:11])

    assert benchmark(roundtrip) == 123456789


def test_threshold_coin_combine(benchmark):
    dealer = ThresholdCoinDealer(n=31, threshold=11, rng=random.Random(6))
    shares = {pid: dealer.coin_share(pid, 0) for pid in range(11)}
    benchmark(lambda: dealer.combine(shares, 0))


def test_kernel_shared_coin_n32(benchmark):
    """One full Algorithm 1 instance at n=32: ~4k envelope deliveries."""
    params = ProtocolParams(n=32, f=5)
    counter = iter(range(10**9))

    def run_once():
        return run_protocol(
            32, 5, lambda ctx: shared_coin(ctx, 0),
            corrupt={0, 1, 2, 3, 4}, params=params, seed=next(counter),
        )

    result = benchmark(run_once)
    assert result.live
