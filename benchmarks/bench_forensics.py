"""Divergence forensics round-trip: diff localizes, explain minimizes.

What must reproduce (see DESIGN.md section 12): the forensics layer's
two acceptance properties, exercised end to end on real recordings and
timed so regressions in the differ or the delta-debugger show up in the
trend store:

* **diff localization**: recording a whp_ba run twice yields an
  identical-verdict diff; corrupting exactly one deliver event in the
  copy makes ``diff_recordings`` name that event's envelope seq as the
  first divergence, with a causal slice no longer than the 20-event
  acceptance bound.
* **explain minimization**: a recorded ``byz_split`` agreement violation
  replays seq-exactly, reproduces its violation, and shrinks to the
  2-delivery minimal schedule (one Byzantine nudge to an even-pid
  decider, one to an odd-pid decider).

Both properties are asserted, not just timed: this bench doubles as the
forensics conformance check at benchmark scale (n=40 diff, versus the
n=8 runs in tests/integration/test_forensics.py).

Run standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_forensics.py --smoke
"""

from __future__ import annotations

import dataclasses
import sys
import time

from repro.experiments.forensics import explain_recording
from repro.experiments.protocols import make_runner
from repro.sim.diffing import DEFAULT_MAX_SLICE, diff_events
from repro.sim.events import DeliverEvent
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.runner import run_protocol, stop_when_all_decided

ROOT_SEED = 2020
FULL_N = 40
SMOKE_N = 16


def _record_whp(n: int, seed: int) -> FlightRecorder:
    factory, params, f = make_runner("whp_ba", n, seed=seed)
    recorder = FlightRecorder()
    run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        subscribers=[recorder.on_event],
    )
    return recorder


def run_forensics(n: int) -> tuple[str, dict]:
    lines = [f"forensics round-trip (whp_ba n={n}, byz_split n=4)", ""]

    # -- diff: identical logs, then a single corrupted deliver ---------
    started = time.perf_counter()
    events = list(_record_whp(n, ROOT_SEED).events)
    record_s = time.perf_counter() - started

    started = time.perf_counter()
    clean = diff_events(events, list(events))
    assert clean.identical, clean.describe()

    mutated = list(events)
    target = next(i for i, e in enumerate(mutated) if type(e) is DeliverEvent)
    expected_seq = mutated[target].seq
    mutated[target] = dataclasses.replace(
        mutated[target], words=mutated[target].words + 7
    )
    report = diff_events(events, mutated)
    diff_s = time.perf_counter() - started
    assert not report.identical
    assert report.seq == expected_seq, report.describe()
    assert report.changed and "words" in report.changed[0]
    assert 1 <= len(report.slice) <= DEFAULT_MAX_SLICE
    lines.append(
        f"diff: {len(events)} events, localized seq {report.seq} "
        f"(slice {len(report.slice)} events) in {diff_s * 1e3:.1f} ms"
    )

    # -- explain: minimize a recorded agreement violation --------------
    from repro.experiments.report import record_run
    import tempfile
    from pathlib import Path

    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "byz.jsonl"
        record_run(path, "byz_split", n=4, seed=11,
                   telemetry=False, profile=False)
        payload = explain_recording(path)
    explain_s = time.perf_counter() - started
    assert payload["replay_identical"] is True
    assert payload["failure"]["type"] == "violation"
    minimized = payload["minimized"]
    assert minimized["deliveries"] == 2, minimized["describe"]
    assert {dest % 2 for _, dest in minimized["order"]} == {0, 1}
    lines.append(
        f"explain: byz_split violation -> {minimized['describe']} "
        f"in {explain_s * 1e3:.1f} ms"
    )
    lines.append(f"(recording the whp_ba run itself took {record_s:.2f} s)")

    summary = {
        "events": len(events),
        "divergent_seq": report.seq,
        "slice_events": len(report.slice),
        "minimal_deliveries": minimized["deliveries"],
        "minimize_tests": minimized["tests"],
        "wallclock": {  # excluded from gating: machine-dependent
            "diff_s": diff_s, "explain_s": explain_s,
        },
    }
    return "\n".join(lines), summary


def test_forensics(benchmark, save_report):
    from conftest import once

    report, _ = once(benchmark, lambda: run_forensics(FULL_N))
    save_report("bench_forensics", report)


def main(argv: list[str]) -> int:
    import argparse
    from pathlib import Path

    from repro.experiments.trends import record_bench

    parser = argparse.ArgumentParser(
        description="Assert and time the diff/explain forensics round-trip."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized run (whp_ba n={SMOKE_N} instead of n={FULL_N})",
    )
    smoke = parser.parse_args(argv).smoke
    report, summary = run_forensics(SMOKE_N if smoke else FULL_N)
    print(report)
    if smoke:
        repo_root = Path(__file__).resolve().parent.parent
        path, _ = record_bench("forensics", summary, root=repo_root)
        print(f"trend record -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
