"""Experiment E1b: Lemma 4.2's common-values count, measured from traces.

What must reproduce: the measured count of *common* values (received by
f+1 correct processes before their phase-2 send) sits at or above the
closed-form bound 9ε/(1+6ε)·n for every ε, and the probability that the
global minimum is common (Lemma 4.4's event) tracks the agreement rate.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import common_values

N = 24
F_VALUES = (0, 2, 4, 6)
SEEDS = range(25)


def test_e1b_common_values_vs_lemma_4_2(benchmark, save_report):
    points = once(
        benchmark, lambda: common_values.run(n=N, f_values=F_VALUES, seeds=SEEDS)
    )
    for point in points:
        assert point.min_c >= point.paper_bound_c - 1e-9, point.f
        # Agreement can only happen at least as often as 'min common'
        # forces it (the converse direction of Lemma 4.6).
        assert point.agreement_rate >= point.min_common_rate - 1e-9
    save_report(
        "E1b_common_values",
        f"E1b: common values per run (n={N}, {len(list(SEEDS))} seeds/point)\n\n"
        + common_values.format_common_values(points),
    )
