"""Experiment E7: MMR instantiated with the Algorithm 1 coin (Section 4).

What must reproduce: the paper's closing remark of Section 4 -- plugging
the VRF shared coin into MMR gives O(n²) words and O(1) expected rounds
(matching the CKS threshold-coin instantiation), whereas the local-coin
MMR pays many more rounds under split inputs.
"""

from __future__ import annotations

from conftest import once

from repro.experiments import mmr_ourcoin

N = 25
SEEDS = range(12)


def test_e7_mmr_with_algorithm1_coin(benchmark, save_report):
    rows = once(benchmark, lambda: mmr_ourcoin.run(n=N, seeds=SEEDS))
    by_name = {row.variant: row for row in rows}
    assert by_name["mmr+alg1"].completed == by_name["mmr+alg1"].trials
    # Common-coin instantiations decide in a small constant round count.
    assert by_name["mmr+alg1"].mean_rounds <= 4
    assert by_name["cachin"].mean_rounds <= 4
    # The local coin pays more rounds on average under split inputs.
    assert by_name["mmr"].mean_rounds >= by_name["mmr+alg1"].mean_rounds
    save_report(
        "E7_mmr_ourcoin",
        f"E7: MMR coin instantiations at n={N} ({len(list(SEEDS))} seeds)\n\n"
        + mmr_ourcoin.format_mmr_ourcoin(rows),
    )
