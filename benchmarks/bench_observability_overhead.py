"""Observability overhead: the un-observed kernel must stay essentially free
(the flight-recorder layer, see DESIGN.md section 7).

The flight-recorder layer guards every kernel emission site with one
truthiness check of the bus's subscriber list; events are only
constructed when someone listens.  This bench quantifies that bargain on
a full BA run:

* **Observer-effect freedom**: a run with a FlightRecorder subscribed
  produces a byte-identical ``RunResult`` to the bare run, and so does a
  run with the full conformance MonitorSuite attached (both asserted) --
  monitors may observe, never perturb (DESIGN.md section 8).
* **No-subscriber overhead**: the guard cost is bounded by
  (emission-site executions) x (measured cost of one guard check),
  expressed as a fraction of the bare run's wall-clock.  Asserted < 3%.
  The bound is computed, not diffed against a bus-less build, so it is
  immune to machine noise -- a guard check is ~20ns and a BA delivery is
  ~100us of crypto and scheduling, so the margin is enormous.
* **Monitor dispatch cost**: the recorded event log replayed through a
  fresh MonitorSuite, timed, as a fraction of the bare run's wall-clock.
  Asserted < 3% on the full run by the same computed-bound methodology:
  replay measures exactly the per-event online work (append + dispatch +
  safety bookkeeping) that a monitored run adds.  The smoke holds the
  suite to an absolute per-event budget instead (scaled by a measured
  machine-speed factor): at smoke scale the cheap small-n denominator
  made the ratio assert flake on slow machines.
* **Telemetry dispatch cost**: the same replay methodology applied to a
  :class:`~repro.sim.telemetry.TelemetryProbe` (DESIGN.md section 9) --
  a telemetry-attached run is asserted byte-identical to the bare run,
  its per-event folding cost is asserted < 3%, and two probes fed the
  same run must produce identical snapshots (sampling is deterministic).
* **Coverage dispatch cost**: the same three assertions again for a
  :class:`~repro.sim.coverage.CoverageProbe` (DESIGN.md section 11):
  byte-identical results with the probe attached, replayed fold cost
  inside the < 3% envelope (absolute ns/event budget in the smoke), and
  a replayed probe's snapshot identical to the attached probe's.
* **Recording cost** (reported, not asserted): wall-clock of the same
  run with a recorder attached, i.e. what `repro record` actually pays.

Scale matters for the telemetry ratio: the probe's fold cost is a fixed
few hundred ns/event while the kernel's per-event cost *grows* with n
(quorum scans are O(n)), so the ratio shrinks as runs get bigger --
~10us/event at n=24 versus ~18us/event at n=150.  The full benchmark
therefore asserts the <3% telemetry ratio on a full n=150 run, where
the margin is robust to machine state; the CI smoke (full n=24 run,
seconds not minutes) asserts the same byte-identity, determinism and
guard properties plus *absolute* per-event monitor/telemetry/coverage
dispatch budgets, which catch the same regressions without the
unrepresentative small-n denominator.

The smoke run also appends its deterministic counters (events,
deliveries, words) to the cross-run trend store so ``repro trends
--gate`` has an observability series to enforce; wall-clock readings
ride along under an excluded-from-gating key.

Run standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --smoke
"""

from __future__ import annotations

import sys
import time
import timeit

from repro.experiments.protocols import make_runner
from repro.experiments.store import to_jsonable
from repro.sim.coverage import CoverageProbe
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.monitors import MonitorSuite
from repro.sim.runner import run_protocol, stop_when_all_decided
from repro.sim.telemetry import TelemetryProbe

ROOT_SEED = 2020
FULL_N = 150
SMOKE_N = 24
# The smoke's telemetry assertion: an absolute per-event fold budget.
# The probe measures ~400-500ns/event on a warm CPython; 1500ns is
# generous enough to absorb machine-state swings while still failing on
# any real probe regression (the representative <3% ratio is asserted
# by the full n=FULL_N benchmark, where the kernel's per-event cost
# makes the margin robust).
TELEMETRY_NS_PER_EVENT_BUDGET = 1500.0
# Same policy for the coverage probe: its fold does race-bucket and
# signature-count dict work per delivery (~500-800ns/event warm), so
# the budget sits a bit higher while still catching real regressions.
COVERAGE_NS_PER_EVENT_BUDGET = 2500.0
# And for monitor dispatch: the <3% ratio is only robust at n=FULL_N
# (the kernel's per-event cost grows with n; at smoke scale the cheap
# denominator made the ratio assert flake on slow or noisy machines).
# The smoke instead holds the suite to an absolute per-event dispatch
# budget, scaled by how slow this machine measures against a reference
# interpreter (the guard micro-benchmark doubles as the calibration
# probe: ~25ns/guard on the machines the budgets were set on).
MONITOR_NS_PER_EVENT_BUDGET = 4000.0
REFERENCE_GUARD_NS = 25.0


def _ba_run(n: int, seed: int, subscribers=None, monitors=None,
            telemetry=None, coverage=None):
    factory, params, f = make_runner("whp_ba", n, seed=seed)
    start = time.perf_counter()
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        subscribers=subscribers, monitors=monitors, telemetry=telemetry,
        coverage=coverage,
    )
    return time.perf_counter() - start, result


def _replay_seconds(events, make_sink, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock of replaying ``events`` through a
    fresh sink's ``on_event``.  The minimum is the honest dispatch cost:
    the replay is pure CPU, so noise only ever adds time."""
    best = None
    for _ in range(repeats):
        sink = make_sink()
        on_event = sink.on_event
        start = time.perf_counter()
        for event in events:
            on_event(event)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best or 0.0


def _guard_cost() -> float:
    """Measured seconds per no-subscriber guard (empty-list truthiness)."""
    iterations = 1_000_000
    total = timeit.timeit(
        "if subscribers:\n pass",
        setup="subscribers = []",
        number=iterations,
    )
    return total / iterations


def run_comparison(
    n: int, max_overhead: float = 0.03, assert_telemetry_ratio: bool = True
):
    bare_elapsed, bare = _ba_run(n, ROOT_SEED)

    recorder = FlightRecorder()
    recorded_elapsed, observed = _ba_run(n, ROOT_SEED, [recorder.on_event])

    # Observer-effect freedom: recording a run must not change it.
    assert to_jsonable(bare) == to_jsonable(observed), (
        "attaching a recorder changed the run's observable result"
    )

    # ... and neither must checking it: the full conformance suite sees
    # every event online and does its crypto only post-snapshot.
    suite = MonitorSuite()
    monitored_elapsed, monitored = _ba_run(n, ROOT_SEED, monitors=suite)
    assert to_jsonable(bare) == to_jsonable(monitored), (
        "attaching conformance monitors changed the run's observable result"
    )
    assert suite.ok, (
        "safety monitor fired on a seed scenario:\n"
        + "\n".join(v.describe() for v in suite.safety_violations)
    )

    # ... and neither must sampling it: a telemetry probe folds every
    # event into fixed-budget series and sketches, touching nothing the
    # protocol can observe.
    probe = TelemetryProbe()
    telemetered_elapsed, telemetered = _ba_run(n, ROOT_SEED, telemetry=probe)
    assert to_jsonable(bare) == to_jsonable(telemetered), (
        "attaching a telemetry probe changed the run's observable result"
    )

    # ... and neither must coverage-profiling it: the coverage probe
    # folds the same stream into schedule signatures, same contract.
    coverage_probe = CoverageProbe()
    covered_elapsed, covered = _ba_run(n, ROOT_SEED, coverage=coverage_probe)
    assert to_jsonable(bare) == to_jsonable(covered), (
        "attaching a coverage probe changed the run's observable result"
    )

    # A second bare run: the min is the denominator for every ratio
    # below (noise only ever adds wall-clock, so the min of two runs
    # taken ~a minute apart is the honest kernel cost even when the
    # machine state drifts mid-benchmark), and byte-identical results
    # across the pair asserts kernel determinism for free.
    bare_repeat_elapsed, bare_repeat = _ba_run(n, ROOT_SEED)
    assert to_jsonable(bare) == to_jsonable(bare_repeat), (
        "two bare runs of the same seed diverged (kernel nondeterminism)"
    )
    bare_elapsed = min(bare_elapsed, bare_repeat_elapsed)

    # Monitor dispatch cost: the exact per-event online work a monitored
    # run adds, measured by replaying the recorded log through a fresh
    # suite (finalize-time analysis is post-run and excluded by design).
    def fresh_suite():
        replay = MonitorSuite()
        replay.begin_run()
        return replay

    monitor_cost = _replay_seconds(recorder.events, fresh_suite)
    monitor_bound = monitor_cost / bare_elapsed if bare_elapsed else 0.0

    # Telemetry dispatch cost: same replay methodology, and the full
    # price of the probe (buffer appends plus every chunk fold).  A
    # replayed probe must also reproduce the attached probe's snapshot
    # exactly -- sampling is deterministic decimation, not clocks/RNG.
    telemetry_cost = _replay_seconds(recorder.events, TelemetryProbe)
    telemetry_bound = telemetry_cost / bare_elapsed if bare_elapsed else 0.0
    replay_probe = TelemetryProbe()
    replay_on_event = replay_probe.on_event
    for event in recorder.events:
        replay_on_event(event)
    assert replay_probe.snapshot() == probe.snapshot(), (
        "telemetry snapshot is not a deterministic function of the event log"
    )

    # Coverage dispatch cost: same methodology and determinism check.
    coverage_cost = _replay_seconds(recorder.events, CoverageProbe)
    coverage_bound = coverage_cost / bare_elapsed if bare_elapsed else 0.0
    coverage_snapshot = coverage_probe.snapshot()
    replay_coverage = CoverageProbe()
    replay_on_event = replay_coverage.on_event
    for event in recorder.events:
        replay_on_event(event)
    assert replay_coverage.snapshot() == coverage_snapshot, (
        "coverage snapshot is not a deterministic function of the event log"
    )

    # Emission-site executions in this exact run, counted from the
    # recording: one guard per emitted event, plus the per-send and
    # per-delivery guards that fire even when their event is not the one
    # emitted.  The event count is the exact guard count because every
    # guard site emits iff subscribed.
    guard_executions = len(recorder.events)
    per_guard = _guard_cost()
    bound = guard_executions * per_guard / bare_elapsed if bare_elapsed else 0.0

    telemetry_ns = (
        telemetry_cost / guard_executions * 1e9 if guard_executions else 0.0
    )
    coverage_ns = (
        coverage_cost / guard_executions * 1e9 if guard_executions else 0.0
    )
    monitor_ns = (
        monitor_cost / guard_executions * 1e9 if guard_executions else 0.0
    )
    # How slow this machine is relative to the reference the absolute
    # budgets were calibrated on; never scales budgets *down* (a fast
    # machine should still flag a genuinely regressed dispatch path).
    machine_factor = max(1.0, per_guard * 1e9 / REFERENCE_GUARD_NS)
    monitor_budget = MONITOR_NS_PER_EVENT_BUDGET * machine_factor

    recording_ratio = recorded_elapsed / bare_elapsed if bare_elapsed else 1.0
    monitored_ratio = monitored_elapsed / bare_elapsed if bare_elapsed else 1.0
    telemetered_ratio = (
        telemetered_elapsed / bare_elapsed if bare_elapsed else 1.0
    )
    covered_ratio = covered_elapsed / bare_elapsed if bare_elapsed else 1.0
    telemetry_limit_note = (
        f"limit {max_overhead:.0%}" if assert_telemetry_ratio
        else f"informational at n={n}; "
        f"budget {TELEMETRY_NS_PER_EVENT_BUDGET:.0f}ns/event"
    )
    coverage_limit_note = (
        f"limit {max_overhead:.0%}" if assert_telemetry_ratio
        else f"informational at n={n}; "
        f"budget {COVERAGE_NS_PER_EVENT_BUDGET:.0f}ns/event"
    )
    monitor_limit_note = (
        f"limit {max_overhead:.0%}" if assert_telemetry_ratio
        else f"informational at n={n}; budget {monitor_budget:.0f}ns/event "
        f"(machine factor {machine_factor:.2f})"
    )
    report = (
        f"observability overhead: whp_ba n={n} seed={ROOT_SEED} "
        f"({bare.deliveries} deliveries)\n"
        f"  bare run        : {bare_elapsed:8.3f}s (min of 2, "
        f"results identical)\n"
        f"  recorded run    : {recorded_elapsed:8.3f}s "
        f"({recording_ratio:.2f}x, {len(recorder.events)} events)\n"
        f"  monitored run   : {monitored_elapsed:8.3f}s "
        f"({monitored_ratio:.2f}x, incl. finalize; "
        f"{len(suite.violations)} violations)\n"
        f"  telemetered run : {telemetered_elapsed:8.3f}s "
        f"({telemetered_ratio:.2f}x, snapshot deterministic)\n"
        f"  covered run     : {covered_elapsed:8.3f}s "
        f"({covered_ratio:.2f}x, "
        f"{coverage_snapshot['total_signatures']} signatures)\n"
        f"  guard executions: {guard_executions} x {per_guard * 1e9:.1f}ns"
        f" = {guard_executions * per_guard * 1e3:.2f}ms\n"
        f"  no-subscriber overhead bound: {bound:.4%} (limit {max_overhead:.0%})\n"
        f"  monitor dispatch bound      : {monitor_bound:.4%} "
        f"({monitor_cost * 1e3:.2f}ms replayed, {monitor_ns:.0f}ns/event; "
        f"{monitor_limit_note})\n"
        f"  telemetry dispatch bound    : {telemetry_bound:.4%} "
        f"({telemetry_cost * 1e3:.2f}ms replayed, {telemetry_ns:.0f}ns/event; "
        f"{telemetry_limit_note})\n"
        f"  coverage dispatch bound     : {coverage_bound:.4%} "
        f"({coverage_cost * 1e3:.2f}ms replayed, {coverage_ns:.0f}ns/event; "
        f"{coverage_limit_note})"
    )
    assert bound < max_overhead, (
        f"no-subscriber bus overhead bound {bound:.4%} exceeds "
        f"{max_overhead:.0%}\n" + report
    )
    if assert_telemetry_ratio:
        assert monitor_bound < max_overhead, (
            f"monitor dispatch bound {monitor_bound:.4%} exceeds "
            f"{max_overhead:.0%}\n" + report
        )
        assert telemetry_bound < max_overhead, (
            f"telemetry dispatch bound {telemetry_bound:.4%} exceeds "
            f"{max_overhead:.0%}\n" + report
        )
        assert coverage_bound < max_overhead, (
            f"coverage dispatch bound {coverage_bound:.4%} exceeds "
            f"{max_overhead:.0%}\n" + report
        )
    else:
        # Small-n runs have an unrepresentatively cheap kernel denominator
        # (see module docstring), so hold the suite and the probes to an
        # absolute per-event budget instead of the ratio.
        assert monitor_ns < monitor_budget, (
            f"monitor dispatch cost {monitor_ns:.0f}ns/event exceeds the "
            f"{monitor_budget:.0f}ns/event budget "
            f"(machine factor {machine_factor:.2f})\n" + report
        )
        assert telemetry_ns < TELEMETRY_NS_PER_EVENT_BUDGET, (
            f"telemetry fold cost {telemetry_ns:.0f}ns/event exceeds the "
            f"{TELEMETRY_NS_PER_EVENT_BUDGET:.0f}ns/event budget\n" + report
        )
        assert coverage_ns < COVERAGE_NS_PER_EVENT_BUDGET, (
            f"coverage fold cost {coverage_ns:.0f}ns/event exceeds the "
            f"{COVERAGE_NS_PER_EVENT_BUDGET:.0f}ns/event budget\n" + report
        )
    # Deterministic counters top-level (gateable by `repro trends --gate`);
    # wall-clock readings under "wallclock" (excluded from gating).
    summary = {
        "n": n,
        "seed": ROOT_SEED,
        "deliveries": bare.deliveries,
        "events": len(recorder.events),
        "words": bare.words,
        "coverage_signatures": coverage_snapshot["total_signatures"],
        "wallclock": {
            "no_subscriber_bound": bound,
            "monitor_dispatch_bound": monitor_bound,
            "telemetry_dispatch_bound": telemetry_bound,
            "coverage_dispatch_bound": coverage_bound,
            "bare_seconds": bare_elapsed,
        },
    }
    return report, summary


def test_observability_overhead(benchmark, save_report):
    from conftest import once

    report, _ = once(benchmark, lambda: run_comparison(FULL_N))
    save_report("bench_observability_overhead", report)


def main(argv: list[str]) -> int:
    import argparse
    from pathlib import Path

    from repro.experiments.trends import record_bench

    parser = argparse.ArgumentParser(
        description="Bound the no-subscriber event-bus overhead and check "
        "observer-effect freedom."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized run (full n={SMOKE_N} run, seconds not minutes); "
        "same identity/determinism assertions, absolute per-event dispatch "
        f"budgets instead of the <3% ratios (asserted at n={FULL_N} by the "
        "full run)",
    )
    smoke = parser.parse_args(argv).smoke
    if smoke:
        report, summary = run_comparison(SMOKE_N, assert_telemetry_ratio=False)
    else:
        report, summary = run_comparison(FULL_N)
    print(report)
    if smoke:
        repo_root = Path(__file__).resolve().parent.parent
        path, _ = record_bench("observability_overhead", summary, root=repo_root)
        print(f"trend record -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
