"""Observability overhead: the un-observed kernel must stay essentially free
(the flight-recorder layer, see DESIGN.md section 7).

The flight-recorder layer guards every kernel emission site with one
truthiness check of the bus's subscriber list; events are only
constructed when someone listens.  This bench quantifies that bargain on
a full BA run:

* **Observer-effect freedom**: a run with a FlightRecorder subscribed
  produces a byte-identical ``RunResult`` to the bare run, and so does a
  run with the full conformance MonitorSuite attached (both asserted) --
  monitors may observe, never perturb (DESIGN.md section 8).
* **No-subscriber overhead**: the guard cost is bounded by
  (emission-site executions) x (measured cost of one guard check),
  expressed as a fraction of the bare run's wall-clock.  Asserted < 3%.
  The bound is computed, not diffed against a bus-less build, so it is
  immune to machine noise -- a guard check is ~20ns and a BA delivery is
  ~100us of crypto and scheduling, so the margin is enormous.
* **Monitor dispatch cost**: the recorded event log replayed through a
  fresh MonitorSuite, timed, as a fraction of the bare run's wall-clock.
  Asserted < 3% by the same computed-bound methodology: replay measures
  exactly the per-event online work (append + dispatch + safety
  bookkeeping) that a monitored run adds.
* **Recording cost** (reported, not asserted): wall-clock of the same
  run with a recorder attached, i.e. what `repro record` actually pays.

Run standalone for CI smoke (tiny run, same assertions)::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --smoke
"""

from __future__ import annotations

import sys
import time
import timeit

from repro.experiments.protocols import make_runner
from repro.experiments.store import to_jsonable
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.monitors import MonitorSuite
from repro.sim.runner import run_protocol, stop_when_all_decided

ROOT_SEED = 2020


def _ba_run(n: int, seed: int, subscribers=None, monitors=None):
    factory, params, f = make_runner("whp_ba", n, seed=seed)
    start = time.perf_counter()
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        subscribers=subscribers, monitors=monitors,
    )
    return time.perf_counter() - start, result


def _guard_cost() -> float:
    """Measured seconds per no-subscriber guard (empty-list truthiness)."""
    iterations = 1_000_000
    total = timeit.timeit(
        "if subscribers:\n pass",
        setup="subscribers = []",
        number=iterations,
    )
    return total / iterations


def run_comparison(n: int, max_overhead: float = 0.03):
    bare_elapsed, bare = _ba_run(n, ROOT_SEED)

    recorder = FlightRecorder()
    recorded_elapsed, observed = _ba_run(n, ROOT_SEED, [recorder.on_event])

    # Observer-effect freedom: recording a run must not change it.
    assert to_jsonable(bare) == to_jsonable(observed), (
        "attaching a recorder changed the run's observable result"
    )

    # ... and neither must checking it: the full conformance suite sees
    # every event online and does its crypto only post-snapshot.
    suite = MonitorSuite()
    monitored_elapsed, monitored = _ba_run(n, ROOT_SEED, monitors=suite)
    assert to_jsonable(bare) == to_jsonable(monitored), (
        "attaching conformance monitors changed the run's observable result"
    )
    assert suite.ok, (
        "safety monitor fired on a seed scenario:\n"
        + "\n".join(v.describe() for v in suite.safety_violations)
    )

    # Monitor dispatch cost: the exact per-event online work a monitored
    # run adds, measured by replaying the recorded log through a fresh
    # suite (finalize-time analysis is post-run and excluded by design).
    replay = MonitorSuite()
    replay.begin_run()
    start = time.perf_counter()
    for event in recorder.events:
        replay.on_event(event)
    monitor_cost = time.perf_counter() - start
    monitor_bound = monitor_cost / bare_elapsed if bare_elapsed else 0.0

    # Emission-site executions in this exact run, counted from the
    # recording: one guard per emitted event, plus the per-send and
    # per-delivery guards that fire even when their event is not the one
    # emitted.  The event count is the exact guard count because every
    # guard site emits iff subscribed.
    guard_executions = len(recorder.events)
    per_guard = _guard_cost()
    bound = guard_executions * per_guard / bare_elapsed if bare_elapsed else 0.0

    recording_ratio = recorded_elapsed / bare_elapsed if bare_elapsed else 1.0
    monitored_ratio = monitored_elapsed / bare_elapsed if bare_elapsed else 1.0
    report = (
        f"observability overhead: whp_ba n={n} seed={ROOT_SEED} "
        f"({bare.deliveries} deliveries)\n"
        f"  bare run        : {bare_elapsed:8.3f}s\n"
        f"  recorded run    : {recorded_elapsed:8.3f}s "
        f"({recording_ratio:.2f}x, {len(recorder.events)} events)\n"
        f"  monitored run   : {monitored_elapsed:8.3f}s "
        f"({monitored_ratio:.2f}x, incl. finalize; "
        f"{len(suite.violations)} violations)\n"
        f"  guard executions: {guard_executions} x {per_guard * 1e9:.1f}ns"
        f" = {guard_executions * per_guard * 1e3:.2f}ms\n"
        f"  no-subscriber overhead bound: {bound:.4%} (limit {max_overhead:.0%})\n"
        f"  monitor dispatch bound      : {monitor_bound:.4%} "
        f"({monitor_cost * 1e3:.2f}ms replayed, limit {max_overhead:.0%})"
    )
    assert bound < max_overhead, (
        f"no-subscriber bus overhead bound {bound:.4%} exceeds "
        f"{max_overhead:.0%}\n" + report
    )
    assert monitor_bound < max_overhead, (
        f"monitor dispatch bound {monitor_bound:.4%} exceeds "
        f"{max_overhead:.0%}\n" + report
    )
    return report, bound


def test_observability_overhead(benchmark, save_report):
    from conftest import once

    report, _ = once(benchmark, lambda: run_comparison(100))
    save_report("bench_observability_overhead", report)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Bound the no-subscriber event-bus overhead and check "
        "observer-effect freedom."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (n=24); same assertions",
    )
    n = 24 if parser.parse_args(argv).smoke else 100
    report, _ = run_comparison(n)
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
