"""Setup shim: lets ``pip install -e . --no-build-isolation`` work in
offline environments that lack the ``wheel`` package (pip falls back to the
legacy ``setup.py develop`` path via --no-use-pep517)."""

from setuptools import setup

setup()
