"""Complexity models and the log-log slope fitter."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.complexity import (
    expected_rounds_bound,
    fit_loglog_slope,
    word_complexity_model,
)


class TestExpectedRounds:
    def test_inverse_of_success_rate(self):
        assert expected_rounds_bound(0.25) == 4.0
        assert expected_rounds_bound(1.0) == 1.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            expected_rounds_bound(0.0)
        with pytest.raises(ValueError):
            expected_rounds_bound(1.5)


class TestWordModels:
    def test_known_protocols_available(self):
        for name in ("benor", "rabin", "bracha", "cachin", "mmr",
                     "mmr_shared_coin", "whp_ba"):
            model = word_complexity_model(name)
            assert model(100, 50.0) > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            word_complexity_model("paxos")

    def test_ours_beats_quadratic_asymptotically(self):
        ours = word_complexity_model("whp_ba")
        mmr = word_complexity_model("mmr")
        n = 100_000
        lam = 8 * math.log(n)
        assert ours(n, lam) < mmr(n, lam)

    def test_quadratic_wins_at_tiny_n(self):
        # The crossover exists: at small n the lambda^2 constant dominates.
        ours = word_complexity_model("whp_ba")
        mmr = word_complexity_model("mmr")
        n = 50
        lam = 8 * math.log(n)
        assert ours(n, lam) > mmr(n, lam)


class TestPredictedCrossover:
    def test_ours_eventually_beats_every_quadratic_row(self):
        from repro.analysis.complexity import predicted_crossover

        for baseline in ("rabin", "cachin", "mmr", "mmr_shared_coin"):
            crossover = predicted_crossover("whp_ba", baseline)
            assert crossover is not None
            assert 100 < crossover < 10**6

    def test_crossover_is_a_boundary(self):
        import math as m
        from repro.analysis.complexity import predicted_crossover

        crossover = predicted_crossover("whp_ba", "mmr")
        ours = word_complexity_model("whp_ba")
        mmr = word_complexity_model("mmr")
        lam = lambda n: 8 * m.log(n)
        assert ours(crossover, lam(crossover)) < mmr(crossover, lam(crossover))
        assert ours(crossover - 1, lam(crossover - 1)) >= mmr(
            crossover - 1, lam(crossover - 1)
        )

    def test_no_crossover_returns_none(self):
        from repro.analysis.complexity import predicted_crossover

        # Bracha's O(n^3) messages never undercut MMR's O(n^2).
        assert predicted_crossover("bracha", "mmr", n_max=10**7) is None

    def test_quadratic_wins_from_the_start_counts_as_crossover_at_floor(self):
        from repro.analysis.complexity import predicted_crossover

        # MMR is already cheaper than ours at the scan floor, so the
        # 'crossover' is immediate.
        assert predicted_crossover("mmr", "whp_ba") <= 8


class TestLogLogFit:
    def test_exact_power_law(self):
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [x**2 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0)

    @given(st.floats(0.5, 3.0), st.floats(0.1, 10.0))
    def test_recovers_arbitrary_exponents(self, exponent, scale):
        xs = [10.0, 30.0, 100.0, 300.0]
        ys = [scale * x**exponent for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(exponent, rel=1e-6)

    def test_model_slopes_match_table1(self):
        ns = [100.0, 300.0, 1000.0, 3000.0, 10000.0]
        mmr = word_complexity_model("mmr")
        ours = word_complexity_model("whp_ba")
        slope_mmr = fit_loglog_slope(ns, [mmr(int(n), 8 * math.log(n)) for n in ns])
        slope_ours = fit_loglog_slope(ns, [ours(int(n), 8 * math.log(n)) for n in ns])
        assert slope_mmr == pytest.approx(2.0, abs=0.01)
        assert 1.0 < slope_ours < 1.4  # n log^2 n

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0, -2.0], [1.0, 1.0])

    def test_constant_series_has_no_slope(self):
        with pytest.raises(ValueError, match="two distinct x values"):
            fit_loglog_slope([5.0, 5.0, 5.0], [1.0, 2.0, 3.0])

    def test_nan_hole_rejected_with_finite_message(self):
        with pytest.raises(ValueError, match="finite"):
            fit_loglog_slope([1.0, 2.0, 3.0], [1.0, float("nan"), 3.0])
        with pytest.raises(ValueError, match="finite"):
            fit_loglog_slope([1.0, float("inf")], [1.0, 2.0])
