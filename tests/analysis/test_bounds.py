"""The paper's closed-form bounds: spot values and shape."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    committee_property_bounds,
    common_values_committee_bound,
    common_values_fraction_bound,
    shared_coin_success_bound,
    whp_coin_success_bound,
)
from repro.core.params import ProtocolParams


class TestSharedCoinBound:
    def test_perfect_coin_at_epsilon_third(self):
        # Remark 4.10: epsilon = 1/3 (f = 0) gives success rate exactly 1/2.
        assert shared_coin_success_bound(1 / 3) == pytest.approx(0.5)

    def test_positive_above_paper_epsilon(self):
        assert shared_coin_success_bound(0.109) > 0

    def test_zero_crossing(self):
        root = (math.sqrt(648) - 24) / 36
        assert shared_coin_success_bound(root) == pytest.approx(0.0, abs=1e-12)
        assert shared_coin_success_bound(root - 0.01) < 0
        assert shared_coin_success_bound(root + 0.01) > 0

    @given(st.floats(0.0, 1 / 3))
    def test_monotone_in_epsilon(self, eps):
        step = 0.01
        if eps + step <= 1 / 3:
            assert shared_coin_success_bound(eps + step) > shared_coin_success_bound(eps)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            shared_coin_success_bound(0.5)
        with pytest.raises(ValueError):
            shared_coin_success_bound(-0.1)


class TestCommonValuesBounds:
    def test_lemma_4_2_spot_value(self):
        # epsilon = 1/3: c >= 9*(1/3)/(1+2) n = n -- every value common.
        assert common_values_fraction_bound(1 / 3) == pytest.approx(1.0)

    def test_zero_at_zero(self):
        assert common_values_fraction_bound(0.0) == 0.0

    def test_committee_bound_increasing_in_d(self):
        assert common_values_committee_bound(0.1) > common_values_committee_bound(0.05)

    def test_committee_bound_range(self):
        for d in (0.01, 0.05, 0.1, 0.3):
            assert 0 < common_values_committee_bound(d) <= 1.1  # fraction of lam


class TestWhpCoinBound:
    def test_zero_crossing_is_papers_d_constant(self):
        # 18d^2 + 27d - 1 = 0 at d = (sqrt(801)-27)/36 ~ 0.03617 -- the
        # paper's d > 0.0362 window constant.
        root = (math.sqrt(801) - 27) / 36
        assert root == pytest.approx(0.0362, abs=5e-4)
        assert whp_coin_success_bound(root + 1e-6) > 0
        assert whp_coin_success_bound(root - 1e-3) < 0

    def test_monotone_in_d(self):
        values = [whp_coin_success_bound(d) for d in (0.04, 0.08, 0.12, 0.2)]
        assert values == sorted(values)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            whp_coin_success_bound(1 / 3)


class TestChernoff:
    def test_upper_tail_known_value(self):
        assert chernoff_upper_tail(100, 0.1) == pytest.approx(math.exp(-0.1**2 * 100 / 2.1))

    def test_lower_tail_known_value(self):
        assert chernoff_lower_tail(100, 0.1) == pytest.approx(math.exp(-0.1**2 * 100 / 2))

    @given(st.floats(1, 1e6), st.floats(0, 1))
    def test_tails_are_probabilities(self, mean, delta):
        assert 0 <= chernoff_upper_tail(mean, delta) <= 1
        assert 0 <= chernoff_lower_tail(mean, delta) <= 1

    def test_tails_shrink_with_mean(self):
        assert chernoff_upper_tail(1000, 0.1) < chernoff_upper_tail(100, 0.1)
        assert chernoff_lower_tail(1000, 0.1) < chernoff_lower_tail(100, 0.1)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, -0.1)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)

    def test_degenerate_mean(self):
        assert chernoff_upper_tail(0, 0.5) == 1.0


class TestCommitteePropertyBounds:
    def test_all_four_present(self):
        params = ProtocolParams(n=10**6, f=10**5, lam=8 * math.log(10**6), d=0.05)
        bounds = committee_property_bounds(params)
        assert set(bounds) == {"S1", "S2", "S3", "S4"}

    def test_vanish_for_large_n(self):
        # The whp convergence is real but glacial: the exponents scale as
        # const * d^2 with d ~ 0.05, so even n = 10^9 leaves S1 at ~0.8.
        # Assert monotone decay plus near-zero at astronomically large n.
        small = committee_property_bounds(ProtocolParams.from_paper(10**4))
        mid = committee_property_bounds(ProtocolParams.from_paper(10**9))
        huge = committee_property_bounds(ProtocolParams.from_paper(10**200))
        for key in ("S1", "S2", "S3", "S4"):
            assert huge[key] <= mid[key] <= small[key] + 1e-9, key
            assert huge[key] < 0.1, key

    def test_s4_zero_without_byzantine(self):
        params = ProtocolParams(n=1000, f=0, lam=60.0, d=0.05)
        assert committee_property_bounds(params)["S4"] == 0.0

    def test_requires_committee_params(self):
        with pytest.raises(ValueError):
            committee_property_bounds(ProtocolParams(n=10, f=1))

    def test_bounds_shrink_with_lambda(self):
        small = ProtocolParams(n=10**6, f=10**5, lam=50.0, d=0.05)
        large = ProtocolParams(n=10**6, f=10**5, lam=500.0, d=0.05)
        b_small = committee_property_bounds(small)
        b_large = committee_property_bounds(large)
        for key in ("S1", "S2"):
            assert b_large[key] < b_small[key]
