"""Cross-check the paper's Chernoff bounds against exact binomial tails.

Claim 1's proofs use Chernoff inequalities (3) and (4); these tests verify
(with scipy's exact binomial CDF) that the bounds really do upper-bound
the true tail probabilities for the committee-size distributions the
protocols induce -- i.e. the Appendix A algebra is applied on the right
side of the inequality.
"""

from __future__ import annotations

import pytest
from scipy import stats

from repro.analysis.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    committee_property_bounds,
)
from repro.core.params import ProtocolParams


@pytest.mark.parametrize("n,p", [(100, 0.3), (1000, 0.05), (400, 0.15)])
@pytest.mark.parametrize("delta", [0.05, 0.1, 0.3, 0.7])
class TestChernoffDominatesExactTail:
    def test_upper_tail(self, n, p, delta):
        mean = n * p
        exact = 1 - stats.binom.cdf(int((1 + delta) * mean) - 1, n, p)
        assert chernoff_upper_tail(mean, delta) >= exact - 1e-12

    def test_lower_tail(self, n, p, delta):
        if delta > 1:
            pytest.skip("lower tail defined for delta <= 1")
        mean = n * p
        exact = stats.binom.cdf(int((1 - delta) * mean), n, p)
        assert chernoff_lower_tail(mean, delta) >= exact - 1e-12


class TestCommitteeBoundsDominateExact:
    def test_s1_s4_bounds_vs_exact_binomials(self):
        params = ProtocolParams(n=2000, f=200, lam=80.0, d=0.05)
        bounds = committee_property_bounds(params)
        n, f = params.n, params.f
        p = params.sample_probability
        lam, d = params.lam, params.d
        W = params.committee_quorum
        B = params.committee_byzantine_bound

        exact_s1 = 1 - stats.binom.cdf(int((1 + d) * lam), n, p)
        exact_s2 = stats.binom.cdf(int((1 - d) * lam), n, p)
        exact_s3 = stats.binom.cdf(W - 1, n - f, p)
        exact_s4 = 1 - stats.binom.cdf(B, f, p)

        assert bounds["S1"] >= exact_s1 - 1e-9
        assert bounds["S2"] >= exact_s2 - 1e-9
        assert bounds["S3"] >= exact_s3 - 1e-9
        assert bounds["S4"] >= exact_s4 - 1e-9

    def test_exact_s3_tail_decays_with_n_but_slowly(self):
        """The honest asymptotics: with λ = 8 ln n the exact S3 tail is
        n^{-Θ(d²)} -- monotonically shrinking but still ~0.2 at n = 10^6
        (which is why simulation_scale inflates λ).  Pin both facts."""
        tails = []
        for n in (10**4, 10**6, 10**9):
            params = ProtocolParams.from_paper(n)
            tails.append(
                stats.binom.cdf(
                    params.committee_quorum - 1,
                    params.n - params.f,
                    params.sample_probability,
                )
            )
        assert tails[0] > tails[1] > tails[2]
        assert tails[1] > 0.05  # glacial convergence, honestly reported

    def test_exact_tails_vanish_with_inflated_lambda(self):
        """With λ inflated to 2000 (what simulation_scale does in spirit),
        the exact S3/S4 tails are negligible even at moderate n -- the
        protocol's whp behaviour is a λ story, not an n story."""
        params = ProtocolParams(n=100_000, f=10_000, lam=2000.0, d=0.05)
        p = params.sample_probability
        s3 = stats.binom.cdf(params.committee_quorum - 1, params.n - params.f, p)
        s4 = 1 - stats.binom.cdf(params.committee_byzantine_bound, params.f, p)
        assert s3 < 1e-4
        assert s4 < 1e-6
