"""Wilson intervals and Monte-Carlo estimation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import BernoulliEstimate, estimate_probability, wilson_interval


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low == pytest.approx(1 - high, abs=1e-9)
        assert low < 0.5 < high

    def test_handles_extremes(self):
        low0, high0 = wilson_interval(0, 20)
        assert low0 == 0.0
        assert high0 > 0.0
        low1, high1 = wilson_interval(20, 20)
        assert high1 == 1.0
        assert low1 < 1.0

    def test_narrows_with_samples(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_known_value(self):
        # Classic worked example: 45/100 at z = 1.96.
        low, high = wilson_interval(45, 100)
        assert low == pytest.approx(0.3561, abs=1e-3)
        assert high == pytest.approx(0.5476, abs=1e-3)

    @given(st.integers(0, 200), st.integers(1, 200))
    def test_interval_always_valid(self, successes, trials):
        successes = min(successes, trials)
        low, high = wilson_interval(successes, trials)
        assert 0 <= low <= successes / trials <= high <= 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestBernoulliEstimate:
    def test_mean_and_str(self):
        estimate = BernoulliEstimate(successes=30, trials=40)
        assert estimate.mean == 0.75
        assert "0.750" in str(estimate)
        assert estimate.low < 0.75 < estimate.high


class TestEstimateProbability:
    def test_deterministic_trial(self):
        estimate = estimate_probability(lambda seed: seed % 2 == 0, range(100))
        assert estimate.mean == 0.5
        assert estimate.trials == 100

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            estimate_probability(lambda seed: True, [])
