"""Multi-valued agreement (weak-validity reduction, extension)."""

from __future__ import annotations

import random

import pytest

from repro.core.multivalued import NO_DECISION, CertMsg, multivalued_agreement
from repro.core.params import ProtocolParams
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    # No explicit lam: let the constructor inflate it to 4-sigma margins.
    return ProtocolParams.simulation_scale(n=N, f=F, safety_sigmas=4.0)


def run_mv(value_fn, params, seed, **kwargs):
    return run_protocol(
        N, F, lambda ctx: multivalued_agreement(ctx, value_fn(ctx)),
        params=params, stop_condition=stop_when_all_decided, seed=seed,
        **({"corrupt": CORRUPT} if "adversary" not in kwargs else {}),
        **kwargs,
    )


class TestValidity:
    def test_unanimous_string_value_decided(self, params):
        result = run_mv(lambda ctx: "block-42", params, seed=1)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {"block-42"}

    def test_unanimous_tuple_value_decided(self, params):
        result = run_mv(lambda ctx: ("tx", 7, b"payload"), params, seed=2)
        assert result.decided_values == {("tx", 7, b"payload")}


class TestWeakValidity:
    def test_split_inputs_decide_proposed_or_bot(self, params):
        proposals = {pid: f"value-{pid % 3}" for pid in range(N)}
        result = run_mv(lambda ctx: proposals[ctx.pid], params, seed=3)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        decided = result.decided_values.pop()
        assert decided == NO_DECISION or decided in set(proposals.values())

    def test_near_unanimous_still_safe(self, params):
        # One dissenting correct process: quorums may or may not be
        # unanimous depending on scheduling; outcome must be the majority
        # value or NO_DECISION, never the dissenting value's invention.
        result = run_mv(
            lambda ctx: "main" if ctx.pid != 10 else "odd-one-out",
            params, seed=4,
        )
        assert result.agreement
        decided = result.decided_values.pop()
        assert decided in ("main", NO_DECISION)


class TestByzantineResistance:
    def test_forged_certificate_rejected(self, params):
        """Byzantine processes broadcast CERT for a value nobody proposed,
        with junk signatures: correct processes must not decide it."""

        def forge(ctx):
            junk = tuple((i, b"\x00" * 32) for i in range(params.quorum))
            ctx.broadcast(
                CertMsg(("mv", "cert"), value="forged", certificate=junk)
            )

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(5)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=forge),
        )
        result = run_mv(lambda ctx: "honest", params, seed=5, adversary=adversary)
        assert result.live
        assert result.decided_values == {"honest"}


class TestAgreementAcrossSeeds:
    @pytest.mark.parametrize("seed", range(3))
    def test_two_value_split(self, params, seed):
        result = run_mv(
            lambda ctx: "left" if ctx.pid % 2 else "right", params, seed=40 + seed
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
