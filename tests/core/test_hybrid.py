"""The probability-1-termination hybrid (paper future work, DESIGN §5)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import hybrid_agreement
from repro.core.params import ProtocolParams
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def run_hybrid(value_fn, params, seed, committee_rounds=8):
    return run_protocol(
        N, F,
        lambda ctx: hybrid_agreement(
            ctx, value_fn(ctx), committee_rounds=committee_rounds
        ),
        corrupt=CORRUPT, params=params,
        stop_condition=stop_when_all_decided, seed=seed,
    )


class TestCommitteePhase:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_decides_in_committee_phase(self, params, value):
        result = run_hybrid(lambda ctx: value, params, seed=value)
        assert result.live
        assert result.decided_values == {value}
        deciders = {
            notes.get("decided_by")
            for pid, notes in result.notes.items()
            if pid in result.decisions
        }
        assert deciders == {"committee"}

    def test_split_inputs_agree(self, params):
        result = run_hybrid(lambda ctx: ctx.pid % 2, params, seed=5)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestFallbackPhase:
    def test_zero_committee_rounds_is_pure_fallback(self, params):
        result = run_hybrid(lambda ctx: ctx.pid % 2, params, seed=6, committee_rounds=0)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        deciders = {
            notes.get("decided_by")
            for pid, notes in result.notes.items()
            if pid in result.decisions
        }
        assert deciders == {"fallback"}
        assert all(
            notes.get("fallback") for notes in result.notes.values() if notes
        )

    def test_fallback_preserves_unanimity(self, params):
        result = run_hybrid(lambda ctx: 1, params, seed=7, committee_rounds=0)
        assert result.decided_values == {1}


class TestContract:
    def test_rejects_non_binary(self, params):
        with pytest.raises(ValueError):
            run_hybrid(lambda ctx: 3, params, seed=0)

    def test_committee_decisions_dominate_word_count(self, params):
        """When the committee phase decides, no fallback words are paid."""
        result = run_hybrid(lambda ctx: 1, params, seed=8)
        assert "BValMsg" not in result.metrics.words_by_kind
