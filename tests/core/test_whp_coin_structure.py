"""Structural facts about Algorithm 2, checked against the event trace
and the trusted committee view."""

from __future__ import annotations

import random

import pytest

from repro.core.committees import sample_committee
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.network import Simulation
from repro.sim.trace import attach_trace

N, F = 60, 4


@pytest.fixture(scope="module")
def setup():
    params = ProtocolParams.simulation_scale(n=N, f=F, lam=45)
    pki = PKI.create(N, rng=random.Random(321))
    sim = Simulation(
        n=N, f=F, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(321)),
            corruption=StaticCorruption(set(range(F))),
        ),
        seed=321, params=params,
    )
    trace = attach_trace(sim)
    sim.set_protocol_all(lambda ctx: whp_coin(ctx, 0))
    sim.run()
    return params, pki, sim, trace


class TestSenderDiscipline:
    def test_only_first_committee_sends_first(self, setup):
        params, pki, sim, trace = setup
        first_committee = sample_committee(pki, ("whp_coin", 0), "first", params)
        senders = {event.pid for event in trace.of_kind("send")
                   if event.message_kind == "FirstMsg"}
        correct_senders = senders - sim.corrupted
        assert correct_senders <= first_committee

    def test_only_second_committee_sends_second(self, setup):
        params, pki, sim, trace = setup
        second_committee = sample_committee(pki, ("whp_coin", 0), "second", params)
        senders = {event.pid for event in trace.of_kind("send")
                   if event.message_kind == "SecondMsg"}
        correct_senders = senders - sim.corrupted
        assert correct_senders <= second_committee

    def test_each_member_broadcasts_once_per_role(self, setup):
        """Process replaceability: one broadcast (n sends) per role."""
        _, _, sim, trace = setup
        for kind in ("FirstMsg", "SecondMsg"):
            for pid in sim.correct_pids:
                sends = trace.sends_by(pid, kind)
                assert len(sends) in (0, N), (pid, kind, len(sends))

    def test_non_members_stay_silent(self, setup):
        params, pki, sim, trace = setup
        members = sample_committee(pki, ("whp_coin", 0), "first", params) | \
            sample_committee(pki, ("whp_coin", 0), "second", params)
        for pid in sim.correct_pids:
            if pid not in members:
                assert not trace.sends_by(pid)


class TestOutcome:
    def test_all_correct_return_the_same_bit(self, setup):
        _, _, sim, _ = setup
        values = {sim.returns[pid] for pid in sim.correct_pids}
        assert len(values) == 1
        assert values <= {0, 1}

    def test_output_is_lsb_of_a_first_committee_value(self, setup):
        from repro.core.messages import coin_value_alpha

        params, pki, sim, _ = setup
        first_committee = sample_committee(pki, ("whp_coin", 0), "first", params)
        alpha = coin_value_alpha(("whp_coin", 0))
        legit_lsbs = {
            pki.vrf_scheme.prove(pki.vrf_private(pid), alpha).value & 1
            for pid in first_committee
        }
        output = next(iter(sim.returns.values()))
        assert output in legit_lsbs
