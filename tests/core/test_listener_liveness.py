"""Non-committee-members ("listeners") must still return from committee
protocols -- they only consume broadcasts, never send."""

from __future__ import annotations

import random

import pytest

from repro.core.committees import sample_committee
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.core.approver import approve
from repro.crypto.pki import PKI
from repro.sim.runner import run_protocol


@pytest.fixture(scope="module")
def thin_setup():
    """A configuration with real non-members: lam well below n."""
    params = ProtocolParams.simulation_scale(n=200, f=2)
    pki = PKI.create(200, rng=random.Random(777))
    return params, pki


class TestWhpCoinListeners:
    def test_pure_listeners_exist_and_return(self, thin_setup):
        params, pki = thin_setup
        instance = ("whp_coin", 0)
        members = sample_committee(pki, instance, "first", params) | \
            sample_committee(pki, instance, "second", params)
        listeners = set(range(200)) - members - {0, 1}
        assert listeners  # thin committees leave genuine listeners

        result = run_protocol(
            200, 2, lambda ctx: whp_coin(ctx, 0), corrupt={0, 1},
            pki=pki, params=params, seed=3,
        )
        assert result.live
        for pid in listeners:
            assert pid in result.returns
            assert result.returns[pid] in (0, 1)


class TestApproverListeners:
    def test_listeners_return_the_same_set(self, thin_setup):
        params, pki = thin_setup
        instance = ("listener-approve",)
        result = run_protocol(
            200, 2, lambda ctx: approve(ctx, instance, 1, params),
            corrupt={0, 1}, pki=pki, params=params, seed=4,
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}
        members = (
            sample_committee(pki, instance, "init", params)
            | sample_committee(pki, instance, ("echo", 1), params)
            | sample_committee(pki, instance, "ok", params)
        )
        listeners = set(range(200)) - members - {0, 1}
        assert listeners
        # Listeners sent nothing: correct messages came only from members.
        assert result.metrics.messages_sent_correct <= len(members) * 200 * 3
