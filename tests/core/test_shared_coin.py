"""Algorithm 1, the full-participation shared coin.

Covers liveness (Lemma 4.11), output validity, Byzantine value-forgery
rejection (VRF uniqueness in action), and a Monte-Carlo agreement-rate
check against Theorem 4.13's bound.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.bounds import shared_coin_success_bound
from repro.core.messages import CoinValue, FirstMsg, SecondMsg, coin_value_alpha
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput
from repro.sim.adversary import (
    Adversary,
    FIFOScheduler,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol


def coin_protocol(round_id=0):
    return lambda ctx: shared_coin(ctx, round_id)


def genuine_values(pki, round_id=0):
    """The legitimate VRF coin values of every process (trusted view)."""
    alpha = coin_value_alpha(("shared_coin", round_id))
    return [
        pki.vrf_scheme.prove(pki.vrf_private(pid), alpha).value
        for pid in range(pki.n)
    ]


class TestLiveness:
    def test_no_failures_all_return(self):
        result = run_protocol(10, 0, coin_protocol(), params=ProtocolParams(n=10, f=0), seed=1)
        assert result.live
        assert len(result.returns) == 10

    @pytest.mark.parametrize("seed", range(4))
    def test_f_silent_processes(self, seed):
        result = run_protocol(
            16, 5, coin_protocol(), corrupt={0, 1, 2, 3, 4},
            params=ProtocolParams(n=16, f=5), seed=seed,
        )
        assert result.live
        assert len(result.returns) == 11

    def test_under_fifo_scheduler(self):
        adversary = Adversary(scheduler=FIFOScheduler())
        result = run_protocol(
            12, 0, coin_protocol(), adversary=adversary,
            params=ProtocolParams(n=12, f=0), seed=2,
        )
        assert result.live

    def test_under_targeted_delay(self):
        adversary = Adversary(
            scheduler=TargetedDelayScheduler({0, 1}, random.Random(3)),
            corruption=StaticCorruption(set()),
        )
        result = run_protocol(
            12, 2, coin_protocol(), adversary=adversary,
            params=ProtocolParams(n=12, f=2), seed=3,
        )
        assert result.live


class TestOutput:
    def test_outputs_are_bits(self):
        result = run_protocol(10, 0, coin_protocol(), params=ProtocolParams(n=10, f=0), seed=4)
        assert result.returned_values <= {0, 1}

    def test_no_failures_output_is_global_min_lsb(self):
        # With f = 0 every process waits for everyone, so all hold the
        # global minimum and the output is its LSB deterministically.
        pki = PKI.create(10, rng=random.Random(77))
        result = run_protocol(
            10, 0, coin_protocol(), pki=pki, params=ProtocolParams(n=10, f=0), seed=5,
        )
        expected = min(genuine_values(pki)) & 1
        assert result.returned_values == {expected}

    def test_word_complexity_quadratic(self):
        # 2 phases x n broadcasts x n destinations x 2 words.
        n = 12
        result = run_protocol(n, 0, coin_protocol(), params=ProtocolParams(n=n, f=0), seed=6)
        assert result.words == 2 * n * n * 2

    def test_different_rounds_independent(self):
        outputs = {}
        pki = PKI.create(10, rng=random.Random(78))
        for round_id in range(8):
            result = run_protocol(
                10, 0, coin_protocol(round_id), pki=pki,
                params=ProtocolParams(n=10, f=0), seed=7,
            )
            outputs[round_id] = result.returned_values.pop()
        assert set(outputs.values()) == {0, 1}


class TestByzantineResistance:
    def _run_with_behavior(self, behavior_factory, pki, seed=8):
        n, f = pki.n, 3
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(seed)),
            corruption=StaticCorruption({0, 1, 2}),
            behavior_factory=behavior_factory,
        )
        return run_protocol(
            n, f, coin_protocol(), adversary=adversary, pki=pki,
            params=ProtocolParams(n=n, f=f), seed=seed,
        )

    def _find_seed_with_min_lsb_one(self, n=12):
        for key_seed in range(200):
            pki = PKI.create(n, rng=random.Random(1000 + key_seed))
            if min(genuine_values(pki)) & 1 == 1:
                return pki
        raise AssertionError("no keyset with min-LSB 1 found")

    def test_forged_zero_value_rejected(self):
        # A Byzantine floods FIRST/SECOND messages claiming value 0 with a
        # junk proof.  0 would win every minimum, so if any correct process
        # accepted it the output would be 0; we pick keys where the
        # genuine global minimum has LSB 1 and assert the output stays 1.
        pki = self._find_seed_with_min_lsb_one()
        instance = ("shared_coin", 0)

        def forge(ctx):
            fake = CoinValue(
                value=0, origin=ctx.pid, vrf=VRFOutput(value=0, proof=b"\x00" * 32)
            )
            ctx.broadcast(FirstMsg(instance, coin_value=fake))
            ctx.broadcast(SecondMsg(instance, coin_value=fake))

        result = self._run_with_behavior(
            lambda pid: ScriptedBehavior(on_start=forge), pki
        )
        assert result.live
        assert result.returned_values == {1}

    def test_stolen_value_with_wrong_origin_rejected(self):
        # Byzantine claims another process's (small) value as its own:
        # origin != sender on FIRST must be ignored.
        pki = self._find_seed_with_min_lsb_one()
        instance = ("shared_coin", 0)
        alpha = coin_value_alpha(instance)

        def steal(ctx):
            victim = (ctx.pid + 5) % ctx.n
            # The adversary cannot compute the victim's VRF, so it replays
            # a zero-output with the victim's name; validation must fail
            # on the VRF check regardless of origin labelling.
            fake = CoinValue(
                value=0, origin=victim, vrf=VRFOutput(value=0, proof=b"junk")
            )
            ctx.broadcast(SecondMsg(instance, coin_value=fake))

        result = self._run_with_behavior(
            lambda pid: ScriptedBehavior(on_start=steal), pki
        )
        assert result.live
        assert result.returned_values == {1}

    def test_byzantine_revealing_own_value_is_harmless(self):
        # A Byzantine that follows the protocol with its genuine value is
        # indistinguishable from a correct process.
        pki = PKI.create(12, rng=random.Random(55))
        instance = ("shared_coin", 0)

        def honest_ish(ctx):
            output = ctx.vrf(coin_value_alpha(instance))
            mine = CoinValue(value=output.value, origin=ctx.pid, vrf=output)
            ctx.broadcast(FirstMsg(instance, coin_value=mine))
            ctx.broadcast(SecondMsg(instance, coin_value=mine))

        result = self._run_with_behavior(
            lambda pid: ScriptedBehavior(on_start=honest_ish), pki
        )
        assert result.live
        assert len(result.returned_values) == 1


class TestAgreementRate:
    def test_agreement_rate_beats_paper_bound(self):
        # Monte-Carlo over seeds with f silent Byzantine processes and
        # random scheduling.  epsilon = 1/3 - 3/16 ~ 0.146; the paper
        # bound is ~0.23, and the oblivious scheduler should do far
        # better -- we assert the (much weaker) bound itself.
        n, f = 16, 3
        params = ProtocolParams(n=n, f=f)
        agreements = 0
        trials = 30
        for seed in range(trials):
            result = run_protocol(
                n, f, coin_protocol(), corrupt={0, 1, 2}, params=params, seed=seed,
            )
            assert result.live
            if len(result.returned_values) == 1:
                agreements += 1
        bound = shared_coin_success_bound(params.epsilon)
        # Success rate >= 2 * rho (rho per outcome, two outcomes).
        assert agreements / trials >= 2 * bound
