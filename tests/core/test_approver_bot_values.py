"""The approver with ⊥ in play (Algorithm 4's second invocation pattern:
correct inputs drawn from {v, ⊥})."""

from __future__ import annotations

import pytest

from repro.core.approver import approve
from repro.core.params import ProtocolParams
from repro.sim.runner import run_protocol

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def run_approve(value_fn, params, seed):
    return run_protocol(
        N, F, lambda ctx: approve(ctx, ("bot-test",), value_fn(ctx), params),
        corrupt=CORRUPT, params=params, seed=seed,
    )


class TestBotHandling:
    def test_all_bot_returns_bot_singleton(self, params):
        result = run_approve(lambda ctx: None, params, seed=1)
        assert result.live
        assert result.returned_values == {frozenset({None})}

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_v_and_bot(self, params, seed):
        """Algorithm 4's line-11 pattern: some propose v, some ⊥.
        Possible returns are {v}, {⊥} and {v, ⊥} -- and graded agreement
        forbids both singletons appearing."""
        result = run_approve(
            lambda ctx: 1 if ctx.pid % 3 else None, params, seed=10 + seed
        )
        assert result.live
        returned = list(result.returned_values)
        for rv in returned:
            assert set(rv) <= {1, None}
            assert rv  # non-empty (termination clause)
        singletons = {next(iter(rv)) for rv in returned if len(rv) == 1}
        assert len(singletons) <= 1

    def test_bot_committee_is_distinct_from_value_committees(self, params):
        import random
        from repro.core.committees import sample_committee
        from repro.crypto.pki import PKI

        pki = PKI.create(N, rng=random.Random(88))
        bot_echo = sample_committee(pki, ("bot-test",), ("echo", None), params)
        one_echo = sample_committee(pki, ("bot-test",), ("echo", 1), params)
        assert bot_echo != one_echo
