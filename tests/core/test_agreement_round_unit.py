"""agreement_round's return contract (shared by Algorithm 4, the hybrid
and the multi-valued reduction)."""

from __future__ import annotations

import pytest

from repro.core.agreement import BOT, agreement_round, byzantine_agreement
from repro.core.params import ProtocolParams
from repro.sim.process import Protocol
from repro.sim.runner import run_protocol

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def one_round(value_fn, params):
    def protocol(ctx) -> Protocol:
        est, decided = yield from agreement_round(
            ctx, "unit", 0, value_fn(ctx), params
        )
        return (est, decided)

    return protocol


class TestSingleRound:
    def test_unanimous_round_decides_immediately(self, params):
        result = run_protocol(
            N, F, one_round(lambda ctx: 1, params), corrupt=CORRUPT,
            params=params, seed=1,
        )
        assert result.live
        for est, decided in result.returned_values:
            assert est == 1
            assert decided == 1

    def test_split_round_returns_consistent_estimates(self, params):
        result = run_protocol(
            N, F, one_round(lambda ctx: ctx.pid % 2, params), corrupt=CORRUPT,
            params=params, seed=2,
        )
        assert result.live
        decided_values = {d for _, d in result.returned_values if d is not None}
        est_values = {e for e, _ in result.returned_values}
        # Graded agreement at round granularity: at most one decided
        # value, and if someone decided v, every estimate is v.
        assert len(decided_values) <= 1
        if decided_values:
            assert est_values == decided_values
        assert BOT not in est_values  # estimates are always binary

    def test_round_never_calls_ctx_decide(self, params):
        result = run_protocol(
            N, F, one_round(lambda ctx: 1, params), corrupt=CORRUPT,
            params=params, seed=3,
        )
        # Decisions belong to the protocol layer above agreement_round.
        assert result.decisions == {}


class TestLayering:
    def test_byzantine_agreement_decides_via_round_result(self, params):
        from repro.sim.runner import stop_when_all_decided

        result = run_protocol(
            N, F, lambda ctx: byzantine_agreement(ctx, 1), corrupt=CORRUPT,
            params=params, stop_condition=stop_when_all_decided, seed=4,
        )
        assert result.decided_values == {1}
        rounds = {n["decision_round"] for n in result.notes.values() if "decision_round" in n}
        assert rounds == {0}  # unanimity decides in the very first round
