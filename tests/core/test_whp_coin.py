"""Algorithm 2, the committee-based WHP coin."""

from __future__ import annotations

import random

import pytest

from repro.core.committees import sample, sample_committee
from repro.core.messages import (
    CoinValue,
    FirstMsg,
    SecondMsg,
    coin_value_alpha,
)
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput
from repro.sim.adversary import (
    Adversary,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol


N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def coin_protocol(round_id=0):
    return lambda ctx: whp_coin(ctx, round_id)


class TestLiveness:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_correct_return(self, params, seed):
        result = run_protocol(
            N, F, coin_protocol(), corrupt=CORRUPT, params=params, seed=seed
        )
        assert result.live
        assert len(result.returns) == N - F
        assert result.returned_values <= {0, 1}

    def test_under_targeted_delay(self, params):
        adversary = Adversary(
            scheduler=TargetedDelayScheduler(set(range(10)), random.Random(4)),
            corruption=StaticCorruption(CORRUPT),
        )
        result = run_protocol(
            N, F, coin_protocol(), adversary=adversary, params=params, seed=4
        )
        assert result.live


class TestWordComplexity:
    def test_only_committee_members_speak(self, params):
        pki = PKI.create(N, rng=random.Random(0))
        result = run_protocol(
            N, 0, coin_protocol(), pki=pki, params=params, seed=5
        )
        instance = ("whp_coin", 0)
        first = sample_committee(pki, instance, "first", params)
        second = sample_committee(pki, instance, "second", params)
        sent = result.metrics.messages_sent_correct
        # Every first member broadcasts once, every second member at most once.
        assert sent <= (len(first) + len(second)) * N
        assert sent >= len(first) * N  # all firsts fire before any return

    def test_subquadratic_vs_full_coin_at_larger_n(self):
        # Sub-quadratic behaviour is asymptotic: with thin committees
        # (lam = O(log n), here the feasibility-inflated default) the coin
        # must beat the all-to-all coin's 2*2*n*n words by n = 200, both
        # in words and (much more dramatically) in messages.
        n, f = 200, 2
        thin = ProtocolParams.simulation_scale(n=n, f=f)
        assert thin.lam < n / 2
        result = run_protocol(
            n, f, lambda ctx: whp_coin(ctx, 0), corrupt={0, 1}, params=thin, seed=6
        )
        assert result.live
        full_coin_words = 2 * n * n * 2
        full_coin_messages = 2 * n * n
        assert result.words < full_coin_words
        assert result.metrics.messages_sent_correct < full_coin_messages / 2


class TestAgreement:
    def test_agreement_rate_high_under_oblivious_scheduler(self, params):
        agreements = 0
        trials = 15
        for seed in range(trials):
            result = run_protocol(
                N, F, coin_protocol(), corrupt=CORRUPT, params=params, seed=seed
            )
            assert result.live
            if len(result.returned_values) == 1:
                agreements += 1
        # The paper's whp bound at our d is tiny; random scheduling should
        # agree almost always.  Require a solid majority of runs.
        assert agreements >= trials * 0.6


class TestByzantineResistance:
    def test_non_first_committee_value_injection_rejected(self, params):
        """The colluder attack: a Byzantine second-committee member relays
        the genuine VRF value of a Byzantine process that is NOT in the
        first committee.  Without origin-membership validation this could
        bias the minimum; with it, the value must be ignored."""
        instance = ("whp_coin", 0)

        # Find keys where some corrupted process is in the second committee
        # (the relayer) and another corrupted process is outside the first
        # committee (the value donor).
        pki = None
        relayer = donor = None
        for key_seed in range(300):
            candidate = PKI.create(N, rng=random.Random(2000 + key_seed))
            first = sample_committee(candidate, instance, "first", params)
            second = sample_committee(candidate, instance, "second", params)
            relayers = [pid for pid in CORRUPT if pid in second]
            donors = [pid for pid in CORRUPT if pid not in first]
            if relayers and donors:
                pki = candidate
                relayer, donor = relayers[0], donors[0]
                break
        assert pki is not None

        donor_output = pki.vrf_scheme.prove(
            pki.vrf_private(donor), coin_value_alpha(instance)
        )

        def attack(ctx):
            if ctx.pid != relayer:
                return
            _, membership = sample(ctx, instance, "second", params)
            injected = CoinValue(
                value=donor_output.value,
                origin=donor,
                vrf=donor_output,
                origin_membership=None,
            )
            ctx.broadcast(
                SecondMsg(instance, coin_value=injected, membership=membership)
            )

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(9)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=attack),
        )
        result = run_protocol(
            N, F, coin_protocol(), adversary=adversary, pki=pki, params=params, seed=9
        )
        # The run deadlocks only if W seconds never arrive; with only one
        # fake second-sender the correct committee still delivers.
        assert result.live
        # No correct process may output the donor's LSB *because of* the
        # injection: the donor's value must not appear as any process's
        # minimum unless it genuinely entered via the first committee
        # (which it cannot -- the donor is not a member).  We verify the
        # stronger property that outputs match a clean run with the same
        # keys and silent Byzantine processes.
        clean = run_protocol(
            N, F, coin_protocol(), corrupt=CORRUPT, pki=pki, params=params, seed=9
        )
        assert result.returned_values == clean.returned_values

    def test_forged_first_membership_rejected(self, params):
        instance = ("whp_coin", 0)
        pki = PKI.create(N, rng=random.Random(3000))

        def forge(ctx):
            output = ctx.vrf(coin_value_alpha(instance))
            fake_membership = VRFOutput(value=0, proof=b"\x00" * 32)
            mine = CoinValue(
                value=output.value,
                origin=ctx.pid,
                vrf=output,
                origin_membership=fake_membership,
            )
            ctx.broadcast(
                FirstMsg(instance, coin_value=mine, membership=fake_membership)
            )

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(10)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=forge),
        )
        result = run_protocol(
            N, F, coin_protocol(), adversary=adversary, pki=pki, params=params, seed=10
        )
        clean = run_protocol(
            N, F, coin_protocol(), corrupt=CORRUPT, pki=pki, params=params, seed=10
        )
        assert result.live
        assert result.returned_values == clean.returned_values
