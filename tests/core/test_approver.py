"""Algorithm 3, the approver: validity, graded agreement, termination,
and committee-forgery resistance."""

from __future__ import annotations

import random

import pytest

from repro.core.approver import approve
from repro.core.committees import sample, sample_committee
from repro.core.messages import InitMsg, OkMsg, echo_signing_bytes
from repro.core.params import ProtocolParams
from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}
INSTANCE = ("approver-test",)


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def approver(value_fn):
    return lambda ctx: approve(ctx, INSTANCE, value_fn(ctx))


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_input_returns_singleton(self, params, value):
        result = run_protocol(
            N, F, approver(lambda ctx: value), corrupt=CORRUPT, params=params, seed=value,
        )
        assert result.live
        assert result.returned_values == {frozenset({value})}

    def test_bot_input_flows_through(self, params):
        result = run_protocol(
            N, F, approver(lambda ctx: None), corrupt=CORRUPT, params=params, seed=2,
        )
        assert result.live
        assert result.returned_values == {frozenset({None})}


class TestGradedAgreementAndTermination:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_inputs_terminate_consistently(self, params, seed):
        result = run_protocol(
            N, F, approver(lambda ctx: ctx.pid % 2), corrupt=CORRUPT,
            params=params, seed=seed,
        )
        assert result.live
        returned = list(result.returned_values)
        # Non-empty sets, subsets of {0, 1}.
        assert all(rv and set(rv) <= {0, 1} for rv in returned)
        # Graded agreement: no two distinct singletons.
        singletons = {next(iter(rv)) for rv in returned if len(rv) == 1}
        assert len(singletons) <= 1

    def test_under_targeted_delay(self, params):
        adversary = Adversary(
            scheduler=TargetedDelayScheduler(set(range(8)), random.Random(7)),
            corruption=StaticCorruption(CORRUPT),
        )
        result = run_protocol(
            N, F, approver(lambda ctx: 1), adversary=adversary, params=params, seed=7,
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}


class TestByzantineResistance:
    def _run(self, behavior_factory, pki, params, seed):
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(seed)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=behavior_factory,
        )
        return run_protocol(
            N, F, approver(lambda ctx: 1), adversary=adversary, pki=pki,
            params=params, seed=seed,
        )

    def test_init_equivocator_cannot_break_validity(self, params):
        """Byzantine init members broadcast BOTH values; with f=4 corrupted
        they cannot reach B+1 init senders for the wrong value, so all
        correct processes still return {1}."""
        pki = PKI.create(N, rng=random.Random(4000))
        assert params.committee_byzantine_bound >= F  # attack cannot echo 0

        def equivocate(ctx):
            sampled, proof = sample(ctx, INSTANCE, "init", params)
            if sampled:
                ctx.broadcast(InitMsg(INSTANCE, value=0, membership=proof))
                ctx.broadcast(InitMsg(INSTANCE, value=1, membership=proof))

        result = self._run(
            lambda pid: ScriptedBehavior(on_start=equivocate), pki, params, seed=11
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}

    def test_unjustified_ok_rejected(self, params):
        """A Byzantine ok-committee member broadcasts OK(0) with no echo
        justification; correct processes must ignore it."""
        pki = PKI.create(N, rng=random.Random(4100))

        def fake_ok(ctx):
            sampled, proof = sample(ctx, INSTANCE, "ok", params)
            if sampled:
                ctx.broadcast(
                    OkMsg(INSTANCE, value=0, membership=proof, justification=())
                )

        result = self._run(
            lambda pid: ScriptedBehavior(on_start=fake_ok), pki, params, seed=12
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}

    def test_ok_with_forged_echo_signatures_rejected(self, params):
        """Justification entries must carry valid signatures from valid
        echo-committee members."""
        pki = PKI.create(N, rng=random.Random(4200))

        def forged_ok(ctx):
            sampled, proof = sample(ctx, INSTANCE, "ok", params)
            if not sampled:
                return
            w = params.committee_quorum
            junk = tuple((i, proof, b"\x00" * 32) for i in range(w))
            ctx.broadcast(
                OkMsg(INSTANCE, value=0, membership=proof, justification=junk)
            )

        result = self._run(
            lambda pid: ScriptedBehavior(on_start=forged_ok), pki, params, seed=13
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}

    def test_double_ok_counted_once(self, params):
        """A Byzantine ok member that sends several (valid-looking but
        unjustified) oks is counted at most once per sender anyway."""
        pki = PKI.create(N, rng=random.Random(4300))

        def spam(ctx):
            sampled, proof = sample(ctx, INSTANCE, "ok", params)
            if sampled:
                for _ in range(5):
                    ctx.broadcast(
                        OkMsg(INSTANCE, value=0, membership=proof, justification=())
                    )

        result = self._run(
            lambda pid: ScriptedBehavior(on_start=spam), pki, params, seed=14
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}


class TestEchoCommitteesArePerValue:
    def test_value_specific_committees_differ(self, params):
        pki = PKI.create(N, rng=random.Random(4400))
        echo0 = sample_committee(pki, INSTANCE, ("echo", 0), params)
        echo1 = sample_committee(pki, INSTANCE, ("echo", 1), params)
        assert echo0 != echo1

    def test_signing_bytes_bind_instance_and_value(self):
        assert echo_signing_bytes(INSTANCE, 0) != echo_signing_bytes(INSTANCE, 1)
        assert echo_signing_bytes(("a",), 0) != echo_signing_bytes(("b",), 0)
