"""Parameter windows, thresholds, and feasibility logic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import ProtocolParams, paper_d_window, paper_epsilon_window


class TestBasicConstruction:
    def test_quorum_and_epsilon(self):
        params = ProtocolParams(n=30, f=5)
        assert params.quorum == 25
        assert params.epsilon == pytest.approx(1 / 3 - 5 / 30)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=0, f=0)
        with pytest.raises(ValueError):
            ProtocolParams(n=5, f=5)
        with pytest.raises(ValueError):
            ProtocolParams(n=5, f=-1)

    def test_lam_and_d_must_come_together(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, f=1, lam=5.0)
        with pytest.raises(ValueError):
            ProtocolParams(n=10, f=1, d=0.05)

    def test_d_range_checked(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, f=1, lam=5.0, d=0.5)
        with pytest.raises(ValueError):
            ProtocolParams(n=10, f=1, lam=5.0, d=0.0)

    def test_committee_properties_require_lam(self):
        params = ProtocolParams(n=10, f=1)
        with pytest.raises(ValueError):
            _ = params.committee_quorum
        with pytest.raises(ValueError):
            _ = params.sample_probability


class TestThresholds:
    def test_w_and_b_formulas(self):
        params = ProtocolParams(n=100, f=5, lam=30.0, d=0.05)
        assert params.committee_quorum == math.ceil((2 / 3 + 0.15) * 30)
        assert params.committee_byzantine_bound == math.floor((1 / 3 - 0.05) * 30)

    def test_sample_probability_caps_at_one(self):
        params = ProtocolParams(n=10, f=1, lam=50.0, d=0.05)
        assert params.sample_probability == 1.0

    @given(
        n=st.integers(10, 5000),
        f_frac=st.floats(0.0, 0.30),
        lam_frac=st.floats(0.05, 1.0),
        d=st.floats(0.001, 0.33, exclude_max=True),
    )
    def test_threshold_invariants(self, n, f_frac, lam_frac, d):
        f = int(f_frac * n)
        lam = max(1.0, lam_frac * n)
        params = ProtocolParams(n=n, f=f, lam=lam, d=d)
        W = params.committee_quorum
        B = params.committee_byzantine_bound
        # W > 2B: the quorum always out-votes twice the Byzantine bound --
        # this is what makes 'first value to reach W echoes' well defined.
        assert W > 2 * B
        # Intersection property shape (S5): two W-quorums inside a
        # committee of at most (1+d)λ overlap in more than B members.
        assert 2 * W - (1 + d) * lam > B

    def test_paper_example_thresholds(self):
        # λ = 8 ln n at n = 10^4, d mid-window: W/λ ≈ 2/3+3d, B/λ ≈ 1/3-d.
        params = ProtocolParams.from_paper(10_000)
        assert params.lam == pytest.approx(8 * math.log(10_000))
        assert params.committee_quorum / params.lam == pytest.approx(
            2 / 3 + 3 * params.d, abs=0.02
        )


class TestPaperWindows:
    def test_epsilon_window_shrinks_with_n(self):
        low_small, _ = paper_epsilon_window(100)
        low_big, _ = paper_epsilon_window(10**9)
        assert low_big < low_small
        assert low_big > 0.109  # the constant floor persists

    def test_epsilon_window_nonempty_for_large_n(self):
        low, high = paper_epsilon_window(10**6)
        assert low < high

    def test_d_window_matches_paper_constants(self):
        lam = 8 * math.log(10**6)
        low, high = paper_d_window(0.2, lam)
        assert low == pytest.approx(max(1 / lam, 0.0362))
        assert high == pytest.approx(0.2 / 3 - 1 / (3 * lam))

    def test_from_paper_large_n_satisfies_everything(self):
        params = ProtocolParams.from_paper(10**7)
        assert params.paper_violations() == []

    def test_from_paper_moderate_n_already_satisfiable(self):
        # The paper's windows are non-empty surprisingly early; what fails
        # at small n is *statistical concentration*, not the constraints.
        assert ProtocolParams.from_paper(50).paper_violations() == []

    def test_from_paper_tiny_n_reports_violations(self):
        params = ProtocolParams.from_paper(3)
        assert params.paper_violations()  # the epsilon window is empty

    def test_violations_mention_lambda_when_wrong(self):
        params = ProtocolParams(n=1000, f=100, lam=10.0, d=0.05)
        assert any("lam" in v for v in params.paper_violations())


class TestSimulationScale:
    def test_default_lambda_escalates_to_feasibility(self):
        params = ProtocolParams.simulation_scale(n=200, f=5)
        # At least the paper's 8 ln n, inflated until a 3-sigma d exists.
        assert params.lam >= 8 * math.log(200)
        assert params.lam <= 200
        assert params.d > 0

    def test_chooses_feasible_d(self, committee_params):
        # The fixture (n=60, f=4, lam=45) must leave the promised margins.
        p = committee_params.sample_probability
        mu_correct = (committee_params.n - committee_params.f) * p
        sigma = math.sqrt(mu_correct * (1 - p))
        assert committee_params.committee_quorum <= mu_correct - 3 * sigma + 1

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            ProtocolParams.simulation_scale(n=30, f=9, lam=10)

    def test_explicit_d_passes_through(self):
        params = ProtocolParams.simulation_scale(n=100, f=2, lam=60, d=0.04)
        assert params.d == 0.04

    def test_lam_capped_at_n(self):
        params = ProtocolParams.simulation_scale(n=20, f=0, lam=500)
        assert params.lam == 20.0


class TestDescribe:
    def test_describe_full(self, committee_params):
        text = committee_params.describe()
        for token in ("n=60", "f=4", "W=", "B="):
            assert token in text

    def test_describe_quorum_only(self):
        text = ProtocolParams(n=10, f=2).describe()
        assert "W=" not in text
        assert "n=10" in text
