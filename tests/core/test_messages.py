"""Protocol message word accounting and coin-value validation."""

from __future__ import annotations

import random

import pytest

from repro.core.committees import committee_seed, sample_committee
from repro.core.messages import (
    CoinValue,
    EchoMsg,
    FirstMsg,
    InitMsg,
    OkMsg,
    SecondMsg,
    coin_value_alpha,
    validate_coin_value,
)
from repro.core.params import ProtocolParams
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput


@pytest.fixture(scope="module")
def pki():
    return PKI.create(20, rng=random.Random(70))


@pytest.fixture(scope="module")
def params():
    return ProtocolParams(n=20, f=2, lam=14.0, d=0.05)


def make_value(pki, pid, instance, membership=None):
    output = pki.vrf_scheme.prove(pki.vrf_private(pid), coin_value_alpha(instance))
    return CoinValue(
        value=output.value, origin=pid, vrf=output, origin_membership=membership
    )


class TestWordSizes:
    def test_first_msg_plain(self, pki):
        cv = make_value(pki, 0, "i")
        assert FirstMsg("i", coin_value=cv).words() == 2

    def test_first_msg_with_membership(self, pki):
        cv = make_value(pki, 0, "i")
        proof = VRFOutput(value=1, proof=b"p")
        assert FirstMsg("i", coin_value=cv, membership=proof).words() == 4

    def test_second_msg_counts_origin_membership(self, pki):
        proof = VRFOutput(value=1, proof=b"p")
        cv = make_value(pki, 0, "i", membership=proof)
        msg = SecondMsg("i", coin_value=cv, membership=proof)
        assert msg.words() == 6

    def test_init_and_echo_sizes(self):
        proof = VRFOutput(value=1, proof=b"p")
        assert InitMsg("i", value=0, membership=proof).words() == 3
        assert EchoMsg("i", value=0, membership=proof, signature=b"s").words() == 4

    def test_ok_size_scales_with_justification(self):
        proof = VRFOutput(value=1, proof=b"p")
        justification = tuple((i, proof, b"s") for i in range(10))
        msg = OkMsg("i", value=0, membership=proof, justification=justification)
        assert msg.words() == 1 + 2 + 3 * 10

    def test_value_property_exposed_for_scheduler(self, pki):
        cv = make_value(pki, 3, "i")
        assert FirstMsg("i", coin_value=cv).value == cv.value
        assert SecondMsg("i", coin_value=cv).value == cv.value


class TestValidateCoinValue:
    def test_genuine_value_accepted(self, pki, params):
        cv = make_value(pki, 1, "inst")
        assert validate_coin_value(pki, cv, "inst", params, None)

    def test_value_field_must_match_vrf(self, pki, params):
        cv = make_value(pki, 1, "inst")
        tampered = CoinValue(value=(cv.value ^ 1), origin=1, vrf=cv.vrf)
        assert not validate_coin_value(pki, tampered, "inst", params, None)

    def test_wrong_instance_rejected(self, pki, params):
        cv = make_value(pki, 1, "inst")
        assert not validate_coin_value(pki, cv, "other", params, None)

    def test_wrong_origin_rejected(self, pki, params):
        cv = make_value(pki, 1, "inst")
        relabelled = CoinValue(value=cv.value, origin=2, vrf=cv.vrf)
        assert not validate_coin_value(pki, relabelled, "inst", params, None)

    def test_junk_vrf_rejected(self, pki, params):
        cv = CoinValue(value=0, origin=1, vrf="garbage")
        assert not validate_coin_value(pki, cv, "inst", params, None)

    def test_committee_mode_requires_membership(self, pki, params):
        cv = make_value(pki, 1, "inst")  # no origin_membership
        assert not validate_coin_value(pki, cv, "inst", params, "first")

    def test_committee_mode_accepts_member(self, pki, params):
        members = sample_committee(pki, "inst", "first", params)
        pid = next(iter(members))
        membership = pki.vrf_scheme.prove(
            pki.vrf_private(pid), committee_seed("inst", "first")
        )
        cv = make_value(pki, pid, "inst", membership=membership)
        assert validate_coin_value(pki, cv, "inst", params, "first")

    def test_committee_mode_rejects_non_member(self, pki, params):
        members = sample_committee(pki, "inst", "first", params)
        outsider = next(pid for pid in range(pki.n) if pid not in members)
        membership = pki.vrf_scheme.prove(
            pki.vrf_private(outsider), committee_seed("inst", "first")
        )
        cv = make_value(pki, outsider, "inst", membership=membership)
        assert not validate_coin_value(pki, cv, "inst", params, "first")


class TestCoinValueCheckerCounterIdentity:
    """coin_value_checker's identity memo replays verdicts with exactly the
    counters the direct path (answered from the verify cache) would."""

    def _pair(self, seed=71):
        return (
            PKI.create(20, rng=random.Random(seed)),
            PKI.create(20, rng=random.Random(seed)),
        )

    def test_repeat_checks_match_validate_coin_value(self):
        from repro.core.messages import coin_value_checker

        direct_pki, memo_pki = self._pair()
        params = ProtocolParams(n=20, f=2, lam=14.0, d=0.05)
        direct_value = make_value(direct_pki, 4, "c")
        memo_value = make_value(memo_pki, 4, "c")
        check = coin_value_checker(memo_pki, "c", params, None)
        for _ in range(5):
            direct_verdict = validate_coin_value(
                direct_pki, direct_value, "c", params, None
            )
            memo_verdict = check(memo_value)
            assert memo_verdict is direct_verdict is True
            assert memo_pki.verification_counters() == (
                direct_pki.verification_counters()
            )

    def test_committee_variant_counts_membership_verification(self):
        from repro.core.committees import membership_checker, sample_committee
        from repro.core.messages import coin_value_checker

        direct_pki, memo_pki = self._pair()
        params = ProtocolParams(n=20, f=2, lam=14.0, d=0.05)
        member = next(iter(sample_committee(direct_pki, "c", "first", params)))

        def proof_for(pki):
            return pki.vrf_scheme.prove(
                pki.vrf_private(member), committee_seed("c", "first")
            )

        direct_value = make_value(direct_pki, member, "c", proof_for(direct_pki))
        memo_value = make_value(memo_pki, member, "c", proof_for(memo_pki))
        check = coin_value_checker(memo_pki, "c", params, "first")
        for _ in range(4):
            assert validate_coin_value(
                direct_pki, direct_value, "c", params, "first"
            )
            assert check(memo_value)
            assert memo_pki.verification_counters() == (
                direct_pki.verification_counters()
            )

    def test_different_object_same_origin_takes_full_path(self):
        """A Byzantine per-receiver variant (same origin, different object)
        is re-validated, not replayed."""
        from repro.core.messages import coin_value_checker

        _, pki = self._pair()
        params = ProtocolParams(n=20, f=2, lam=14.0, d=0.05)
        genuine = make_value(pki, 4, "c")
        check = coin_value_checker(pki, "c", params, None)
        assert check(genuine)
        forged = CoinValue(
            value=genuine.value + 1, origin=4, vrf=genuine.vrf
        )
        assert check(forged) is False  # value != vrf.value
        assert check(genuine)  # and the genuine verdict still replays

    def test_uncached_mode_identical_verdicts_no_memo(self):
        from repro.core.messages import coin_value_checker

        pki = PKI.create(20, rng=random.Random(72), verify_cache=False)
        params = ProtocolParams(n=20, f=2, lam=14.0, d=0.05)
        value = make_value(pki, 3, "c")
        check = coin_value_checker(pki, "c", params, None)
        assert check(value) and check(value)
        assert pki.shared_validation_memo == {}
