"""Validated committee sampling: the sample / committee-val contract."""

from __future__ import annotations

import random

import pytest

from repro.core.committees import (
    committee_seed,
    committee_val,
    sample_committee,
    sampling_threshold,
)
from repro.core.params import ProtocolParams
from repro.crypto.pki import PKI
from repro.crypto.vrf import VRF_OUTPUT_BITS, VRFOutput


@pytest.fixture(scope="module")
def pki():
    return PKI.create(40, rng=random.Random(60))


@pytest.fixture(scope="module")
def params():
    return ProtocolParams(n=40, f=3, lam=12.0, d=0.05)


def member_proof(pki, pid, instance, role):
    return pki.vrf_scheme.prove(pki.vrf_private(pid), committee_seed(instance, role))


class TestSeeds:
    def test_distinct_roles_distinct_seeds(self):
        assert committee_seed("i", "init") != committee_seed("i", "ok")

    def test_distinct_instances_distinct_seeds(self):
        assert committee_seed(("ba", 1), "init") != committee_seed(("ba", 2), "init")

    def test_value_specific_echo_committees(self):
        assert committee_seed("i", ("echo", 0)) != committee_seed("i", ("echo", 1))


class TestSamplingThreshold:
    def test_probability_mapping(self, params):
        threshold = sampling_threshold(params)
        assert threshold == int(12 / 40 * (1 << VRF_OUTPUT_BITS))

    def test_full_participation(self):
        params = ProtocolParams(n=10, f=0, lam=10.0, d=0.05)
        assert sampling_threshold(params) == 1 << VRF_OUTPUT_BITS


class TestCommitteeVal:
    def test_genuine_membership_verifies(self, pki, params):
        members = sample_committee(pki, "inst", "init", params)
        assert members  # sanity: expected size 12
        pid = next(iter(members))
        proof = member_proof(pki, pid, "inst", "init")
        assert committee_val(pki, "inst", "init", pid, proof, params)

    def test_non_member_claim_rejected(self, pki, params):
        members = sample_committee(pki, "inst", "init", params)
        outsider = next(pid for pid in range(pki.n) if pid not in members)
        proof = member_proof(pki, outsider, "inst", "init")
        # The proof is a valid VRF output but above the threshold.
        assert not committee_val(pki, "inst", "init", outsider, proof, params)

    def test_replayed_proof_rejected_across_roles(self, pki, params):
        members = sample_committee(pki, "inst", "init", params)
        pid = next(iter(members))
        proof = member_proof(pki, pid, "inst", "init")
        assert not committee_val(pki, "inst", "ok", pid, proof, params)

    def test_replayed_proof_rejected_across_instances(self, pki, params):
        members = sample_committee(pki, "inst", "init", params)
        pid = next(iter(members))
        proof = member_proof(pki, pid, "inst", "init")
        assert not committee_val(pki, "other", "init", pid, proof, params)

    def test_stolen_proof_rejected(self, pki, params):
        members = sample_committee(pki, "inst", "init", params)
        pid = next(iter(members))
        proof = member_proof(pki, pid, "inst", "init")
        impostor = (pid + 1) % pki.n
        assert not committee_val(pki, "inst", "init", impostor, proof, params)

    def test_forged_low_value_rejected(self, pki, params):
        forged = VRFOutput(value=0, proof=b"\x00" * 32)
        assert not committee_val(pki, "inst", "init", 0, forged, params)

    def test_non_vrf_proof_rejected(self, pki, params):
        assert not committee_val(pki, "inst", "init", 0, "not-a-proof", params)


class TestSampleCommitteeStatistics:
    def test_deterministic(self, pki, params):
        assert sample_committee(pki, "a", "r", params) == sample_committee(
            pki, "a", "r", params
        )

    def test_different_seeds_different_committees(self, pki, params):
        committees = {
            frozenset(sample_committee(pki, ("seed", i), "init", params))
            for i in range(6)
        }
        assert len(committees) > 1

    def test_expected_size(self, pki, params):
        sizes = [
            len(sample_committee(pki, ("size", i), "init", params)) for i in range(40)
        ]
        mean = sum(sizes) / len(sizes)
        # E = lam = 12, sigma ~ 2.9; mean of 40 draws within ~4 sigma/sqrt(40).
        assert 9.5 <= mean <= 14.5

    def test_full_participation_samples_everyone(self, pki):
        params = ProtocolParams(n=40, f=3, lam=40.0, d=0.05)
        assert sample_committee(pki, "x", "init", params) == set(range(40))

    def test_independence_across_roles(self, pki, params):
        init = sample_committee(pki, "x", "init", params)
        ok = sample_committee(pki, "x", "ok", params)
        assert init != ok  # astronomically unlikely to coincide


class TestProcessSideSampling:
    def test_sample_matches_trusted_view(self, pki, params):
        """ctx.sample agrees with the committee computed from the registry."""
        from repro.sim.adversary import Adversary
        from repro.sim.network import Simulation
        from repro.core.committees import sample

        sim = Simulation(n=40, f=0, pki=pki, adversary=Adversary(), seed=0, params=params)
        members = sample_committee(pki, "proc", "init", params)
        for pid in range(pki.n):
            sampled, proof = sample(sim.contexts[pid], "proc", "init", params)
            assert sampled == (pid in members)
            if sampled:
                assert committee_val(pki, "proc", "init", pid, proof, params)


class TestArrayCensus:
    """The array-backed census is a bit-exact drop-in for the scalar view."""

    def _fresh(self, n=40, seed=61):
        from repro.core.committees import ArrayCensus

        pki = PKI.create(n, rng=random.Random(seed))
        return pki, ArrayCensus(pki)

    def test_members_match_sample_committee(self):
        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        for instance in ("x", ("ba", 2)):
            for role in ("init", "ok", ("echo", 1)):
                assert census.members(instance, role, params) == sample_committee(
                    pki, instance, role, params
                )

    def test_census_matches_committee_census(self):
        from repro.core.committees import committee_census

        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        corrupted = {0, 1, 2}
        for role in ("init", "ok"):
            assert census.census("x", role, params, corrupted) == committee_census(
                pki, "x", role, params, corrupted
            )

    def test_is_member_per_pid(self):
        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        members = sample_committee(pki, "m", "init", params)
        for pid in range(40):
            assert census.is_member("m", "init", params, pid) == (pid in members)

    def test_full_participation_threshold_overflow_branch(self):
        """lam = n makes the threshold exceed the top-64-bit compare range;
        the ones-mask branch must fire and report everyone a member."""
        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=40.0, d=0.05)
        assert census.members("x", "init", params) == set(range(40))

    def test_queries_do_not_perturb_verification_counters(self):
        """Census views use VRF *proofs*, never verifications: attaching
        one to a live run's PKI must not shift the gated counters."""
        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        before = pki.verification_counters()
        census.members("x", "init", params)
        census.census("x", "ok", params, {0})
        assert pki.verification_counters() == before

    def test_mask_cached_across_queries(self):
        pki, census = self._fresh()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        first = census.member_mask("x", "init", params)
        assert census.member_mask("x", "init", params) is first


class TestMembershipCheckerCounterIdentity:
    """The identity memo replays verdicts with *exactly* the counters the
    direct path (all answered from the verify cache) would produce."""

    def _pair(self, n=40, seed=62):
        return (
            PKI.create(n, rng=random.Random(seed)),
            PKI.create(n, rng=random.Random(seed)),
        )

    def test_repeat_checks_match_committee_val_counters(self):
        from repro.core.committees import membership_checker

        direct_pki, memo_pki = self._pair()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        member = next(iter(sample_committee(direct_pki, "x", "init", params)))
        proof = member_proof(memo_pki, member, "x", "init")
        direct_proof = member_proof(direct_pki, member, "x", "init")
        check = membership_checker(memo_pki, "x", "init", params)
        # Simulate n receivers each validating the same broadcast proof.
        for _ in range(5):
            direct_verdict = committee_val(
                direct_pki, "x", "init", member, direct_proof, params
            )
            memo_verdict = check(member, proof)
            assert memo_verdict is direct_verdict is True
            assert memo_pki.verification_counters() == (
                direct_pki.verification_counters()
            )

    def test_negative_verdict_replayed_with_identical_counters(self):
        from repro.core.committees import membership_checker

        direct_pki, memo_pki = self._pair()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        non_member = next(
            pid for pid in range(40)
            if pid not in sample_committee(direct_pki, "x", "init", params)
        )
        proof = member_proof(memo_pki, non_member, "x", "init")
        direct_proof = member_proof(direct_pki, non_member, "x", "init")
        check = membership_checker(memo_pki, "x", "init", params)
        for _ in range(3):
            assert not committee_val(
                direct_pki, "x", "init", non_member, direct_proof, params
            )
            assert not check(non_member, proof)
            assert memo_pki.verification_counters() == (
                direct_pki.verification_counters()
            )

    def test_different_proof_object_takes_full_path(self):
        """A Byzantine re-proof (structurally equal, different object) must
        not replay the memoized verdict blindly."""
        from repro.core.committees import membership_checker

        _, pki = self._pair()
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        member = next(iter(sample_committee(pki, "x", "init", params)))
        proof = member_proof(pki, member, "x", "init")
        clone = VRFOutput(value=proof.value, proof=proof.proof)
        check = membership_checker(pki, "x", "init", params)
        assert check(member, proof)
        assert check(member, clone)  # same bits, new object: re-verified
        assert check(member, VRFOutput(value=proof.value, proof=b"forged")) is False

    def test_uncached_mode_never_memoizes(self):
        from repro.core.committees import membership_checker

        pki = PKI.create(40, rng=random.Random(63), verify_cache=False)
        params = ProtocolParams(n=40, f=3, lam=12.0, d=0.05)
        member = next(iter(sample_committee(pki, "x", "init", params)))
        proof = member_proof(pki, member, "x", "init")
        check = membership_checker(pki, "x", "init", params)
        assert check(member, proof)
        assert check(member, proof)
        assert pki.shared_validation_memo == {}
        # Two full verifications, zero cache hits.
        assert pki.verification_counters()[:2] == (2, 0)
