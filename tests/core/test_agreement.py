"""Algorithm 4, Byzantine Agreement WHP: the Definition 6.6 properties."""

from __future__ import annotations

import random

import pytest

from repro.core.agreement import byzantine_agreement
from repro.core.params import ProtocolParams
from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    Adversary,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def ba(value_fn):
    return lambda ctx: byzantine_agreement(ctx, value_fn(ctx))


def run_ba(value_fn, params, seed, adversary=None, corrupt=CORRUPT, n=N, f=F):
    kwargs = {"adversary": adversary} if adversary else {"corrupt": corrupt}
    return run_protocol(
        n, f, ba(value_fn), params=params,
        stop_condition=stop_when_all_decided, seed=seed, **kwargs,
    )


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, params, value):
        result = run_ba(lambda ctx: value, params, seed=value)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}


class TestAgreementAndTermination:
    @pytest.mark.parametrize("seed", range(3))
    def test_split_inputs_agree(self, params, seed):
        result = run_ba(lambda ctx: ctx.pid % 2, params, seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        assert result.decided_values <= {0, 1}

    def test_decision_depth_bounded(self, params):
        # O(1) expected rounds: the causal decision depth should be far
        # below what tens of rounds would produce (each round is ~10 hops).
        result = run_ba(lambda ctx: ctx.pid % 2, params, seed=5)
        assert result.live
        assert result.duration < 400

    def test_rejects_non_binary_input(self, params):
        with pytest.raises(ValueError):
            run_ba(lambda ctx: 2, params, seed=0)


class TestAdversaries:
    def test_targeted_delay_scheduler(self, params):
        adversary = Adversary(
            scheduler=TargetedDelayScheduler(set(range(10)), random.Random(21)),
            corruption=StaticCorruption(CORRUPT),
        )
        result = run_ba(lambda ctx: ctx.pid % 2, params, seed=21, adversary=adversary)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement

    def test_adaptive_corruption(self, params):
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(22)),
            corruption=AdaptiveFirstSpeakersCorruption(),
        )
        result = run_ba(lambda ctx: ctx.pid % 2, params, seed=22, adversary=adversary)
        assert result.live
        assert len(result.corrupted) == F
        # Everyone still correct decided consistently.
        assert result.all_correct_decided
        assert result.agreement

    def test_no_byzantine_at_all(self, params):
        result = run_ba(lambda ctx: ctx.pid % 2, params, seed=23, corrupt=set())
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestMaxRounds:
    def test_bounded_rounds_returns(self, params):
        def bounded(ctx):
            return byzantine_agreement(ctx, ctx.pid % 2, max_rounds=3)

        result = run_protocol(
            N, F, bounded, corrupt=CORRUPT, params=params, seed=24,
        )
        # With 3 rounds everyone returns (decided or not); whp they decided.
        assert result.live
        assert len(result.returns) == N - F


class TestDecisionConsistencyAcrossRounds:
    def test_early_and_late_deciders_agree(self, params):
        # Run several seeds; whenever decisions happen in different rounds
        # (visible as different decision depths) they must still agree.
        saw_spread = False
        for seed in range(3):
            result = run_ba(lambda ctx: ctx.pid % 2, params, seed=130 + seed)
            assert result.agreement
            depths = set(result.decision_depths.values())
            if len(depths) > 1:
                saw_spread = True
        assert saw_spread  # asynchrony should actually spread decisions
