"""Quorum-arithmetic properties the protocol proofs lean on, checked as
pure math over the parameter space (no simulation)."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import ProtocolParams


class TestFullParticipationQuorums:
    @given(st.integers(4, 10_000))
    def test_two_quorums_intersect_in_a_correct_process_iff_n_gt_3f(self, n):
        # The classical fact the baselines (and the paper's n-f waits)
        # stand on: for f < n/3, any two (n-f)-quorums share f+1 members.
        f = (n - 1) // 3
        params = ProtocolParams(n=n, f=f)
        overlap = 2 * params.quorum - n
        assert overlap >= f + 1

    @given(st.integers(2, 10_000))
    def test_quorum_reachable_despite_f_silent(self, n):
        f = (n - 1) // 3
        params = ProtocolParams(n=n, f=f)
        assert params.quorum <= n - f  # n-f correct senders exist


class TestCommitteeQuorumArithmetic:
    """The S5/S6 intersection corollaries as deterministic arithmetic,
    assuming the S1/S2 size band (which is what the paper does too)."""

    @given(
        lam=st.floats(10, 10_000),
        d=st.floats(0.005, 0.33, exclude_max=True),
    )
    def test_s5_two_w_quorums_intersect_beyond_b(self, lam, d):
        params = ProtocolParams(n=100_000, f=1, lam=lam, d=d)
        W = params.committee_quorum
        B = params.committee_byzantine_bound
        max_committee = (1 + d) * lam
        # |P1 ∩ P2| >= 2W - |C| must exceed B (Corollary 5.1) whenever the
        # committee size is in band AND d > 1/lam (the paper's window).
        if d > 1 / lam:
            assert 2 * W - max_committee > B

    @given(
        lam=st.floats(10, 10_000),
        d=st.floats(0.005, 0.33, exclude_max=True),
    )
    def test_s6_b_plus_one_holders_meet_any_w_quorum(self, lam, d):
        params = ProtocolParams(n=100_000, f=1, lam=lam, d=d)
        W = params.committee_quorum
        B = params.committee_byzantine_bound
        max_committee = (1 + d) * lam
        if d > 1 / lam:
            # |P2| - |C \ P1| >= W - (|C| - (B+1)) >= 1 (Corollary 5.2).
            assert W - (max_committee - (B + 1)) > 0

    @given(lam=st.floats(4, 10_000), d=st.floats(0.001, 0.33, exclude_max=True))
    def test_w_half_exceeds_b(self, lam, d):
        # Used by the approver's termination proof: W/2 > B, so among W
        # correct init values of at most 2 kinds, one reaches B+1.
        params = ProtocolParams(n=100_000, f=1, lam=lam, d=d)
        if d > 1 / lam:
            assert params.committee_quorum / 2 > params.committee_byzantine_bound


class TestPaperConstantsConsistency:
    def test_d_window_nonempty_needs_epsilon_above_0109(self):
        # max{1/lam, 0.0362} < eps/3 - 1/(3 lam) requires, at the 0.0362
        # floor and lam -> inf, eps > 3*0.0362 ~ 0.109: the paper's magic
        # constant in the epsilon window.
        assert math.isclose(3 * 0.0362, 0.1086, abs_tol=1e-4)

    def test_window_feasible_example(self):
        # A concrete (n, f) the paper's constraints admit.
        params = ProtocolParams.from_paper(10**6)
        assert params.paper_violations() == []
        assert params.committee_quorum > 2 * params.committee_byzantine_bound
