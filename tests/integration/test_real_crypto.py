"""End-to-end runs over the *real* RSA-FDH crypto (small keys, small n).

Everything else in the suite uses the fast simulated backend; these tests
pin that the genuine number-theoretic path drives the same protocol logic.
"""

from __future__ import annotations

import random

import pytest

from repro.core.agreement import byzantine_agreement
from repro.core.approver import approve
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.sim.runner import run_protocol, stop_when_all_decided


@pytest.fixture(scope="module")
def pki_8():
    return PKI.create(8, backend="rsa", rng=random.Random(500), modulus_bits=256)


class TestRealCryptoPaths:
    def test_shared_coin_over_rsa(self, pki_8):
        params = ProtocolParams(n=8, f=1)
        result = run_protocol(
            8, 1, lambda ctx: shared_coin(ctx, 0), corrupt={0},
            pki=pki_8, params=params, seed=1,
        )
        assert result.live
        assert len(result.returned_values) == 1
        assert result.returned_values <= {0, 1}

    def test_approver_over_rsa(self, pki_8):
        # Fat committees (lam = n) so tiny n stays live.
        params = ProtocolParams(n=8, f=0, lam=8.0, d=0.05)
        result = run_protocol(
            8, 0, lambda ctx: approve(ctx, ("rsa-approve",), 1, params),
            pki=pki_8, params=params, seed=2,
        )
        assert result.live
        assert result.returned_values == {frozenset({1})}

    def test_agreement_over_rsa(self, pki_8):
        params = ProtocolParams(n=8, f=0, lam=8.0, d=0.05)
        result = run_protocol(
            8, 0, lambda ctx: byzantine_agreement(ctx, ctx.pid % 2, params),
            pki=pki_8, params=params,
            stop_condition=stop_when_all_decided, seed=3,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
