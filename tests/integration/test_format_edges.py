"""Formatting/reporting edge paths of the experiment modules."""

from __future__ import annotations

import math

from repro.experiments.fig1 import CommitteeStats, format_fig1
from repro.experiments.rounds import RoundsPoint, format_rounds
from repro.experiments.scaling import ScalingCurve, format_scaling
from repro.experiments.table1 import Table1Row, format_table1
from repro.experiments.whp_coin_sweep import WhpCoinPoint, format_whp_coin
from repro.analysis.stats import BernoulliEstimate
from repro.core.params import ProtocolParams

NAN = float("nan")


class TestTable1Formatting:
    def test_nan_rows_render(self):
        row = Table1Row(
            protocol="whp_ba", n=40, f=3, trials=3, terminated=0, agreed=0,
            mean_words=NAN, mean_duration=NAN, mean_rounds=NAN,
        )
        text = format_table1([row])
        assert "whp_ba" in text
        assert "0/3" in text
        assert "-" in text  # the agreement column placeholder


class TestScalingFormatting:
    def test_partial_nan_curve_renders_with_plot(self):
        curve = ScalingCurve(
            protocol="whp_ba",
            n_values=(30, 60),
            mean_words=(100.0, NAN),       # n=60 runs all failed
            mean_messages=(50.0, NAN),
            mean_rounds=(2.0, NAN),
            words_per_round=(50.0, NAN),
            slope_words=NAN,
            slope_words_per_round=NAN,
            model_words=(120.0, 240.0),
        )
        text = format_scaling([curve])
        assert "whp_ba" in text
        assert "legend" in text  # the ASCII plot still renders the finite point


class TestRoundsFormatting:
    def test_empty_histogram(self):
        point = RoundsPoint(
            n=40, f=3, trials=2, completed=0,
            mean_rounds=NAN, max_rounds=0, histogram={},
        )
        text = format_rounds([point])
        assert "0/2" in text


class TestWhpCoinFormatting:
    def test_zero_live_runs(self):
        params = ProtocolParams(n=20, f=1, lam=10.0, d=0.05)
        point = WhpCoinPoint(
            params=params, live=0, trials=5,
            agreement=BernoulliEstimate(successes=0, trials=1),
            paper_bound=-0.1,
        )
        text = format_whp_coin([point])
        assert "0/5" in text
        assert "0" in text  # negative bound clamps to 0


class TestFig1Formatting:
    def test_roles_render_with_counts(self):
        params = ProtocolParams(n=100, f=5, lam=20.0, d=0.05)
        stat = CommitteeStats(
            role="init", mean_size=20.0, min_size=15, max_size=25,
            mean_correct=19.0, min_correct=14, mean_byzantine=1.0,
            max_byzantine=3, s1_violations=1, s2_violations=2,
            s3_violations=0, s4_violations=0, trials=10,
        )
        text = format_fig1(params, [stat])
        assert "1/10" in text and "2/10" in text
        assert "band" in text


class TestNanSafety:
    def test_render_cell_handles_special_floats(self):
        from repro.experiments.tables import _render_cell

        assert _render_cell(NAN) == "nan"
        assert _render_cell(math.inf) == "inf"
        assert _render_cell(0.0) == "0"
        assert _render_cell(-12345.6) == "-12,346"
