"""The ASCII log-log plotter used by the scaling artefact."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import loglog_plot


class TestLogLogPlot:
    def test_renders_all_series(self):
        text = loglog_plot({"alpha": [(1, 1), (10, 100)], "beta": [(1, 2), (10, 20)]})
        assert "o=alpha" in text
        assert "x=beta" in text
        assert text.count("o") >= 2

    def test_axis_ranges_in_labels(self):
        text = loglog_plot({"s": [(10, 100), (1000, 10000)]}, x_label="n", y_label="w")
        assert "10 .. 1e+03" in text
        assert "100 .. 1e+04" in text

    def test_degenerate_single_point(self):
        text = loglog_plot({"s": [(5, 5)]})
        assert "o" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            loglog_plot({})

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_plot({"s": [(0, 1)]})
        with pytest.raises(ValueError):
            loglog_plot({"s": [(1, -1)]})

    def test_monotone_series_fills_diagonal(self):
        text = loglog_plot(
            {"s": [(10**k, 10**k) for k in range(1, 5)]}, width=20, height=10
        )
        rows = [line for line in text.splitlines() if line.startswith("|")]
        marker_cols = [row.index("o") for row in rows if "o" in row]
        assert marker_cols == sorted(marker_cols, reverse=True)

    def test_nan_holes_are_dropped_not_fatal(self):
        """A scaling sweep where one n failed still plots the rest."""
        text = loglog_plot(
            {"s": [(10, 100), (100, float("nan")), (1000, 10000)]}
        )
        assert "o" in text
        assert "10 .. 1e+03" in text  # the NaN point did not widen the axes

    def test_all_nan_series_is_nothing_to_plot(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            loglog_plot({"s": [(10, float("nan")), (float("nan"), 5)]})


class TestScalingFitDiagnostic:
    """E4's fit helper names the curve it drops instead of silent NaN."""

    def test_too_few_usable_points_prints_one_line(self, capsys):
        from repro.experiments.scaling import _fit

        slope = _fit([16, 32, 64], [120.0, float("nan"), float("nan")],
                     "cachin", "words")
        assert slope != slope  # NaN
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cachin/words" in err
        assert "dropped n=[32, 64]" in err

    def test_nan_holes_are_skipped_but_slope_still_fits(self, capsys):
        from repro.experiments.scaling import _fit

        slope = _fit([16, 32, 64], [16.0**2, float("nan"), 64.0**2],
                     "cachin", "words")
        assert slope == pytest.approx(2.0)
        assert capsys.readouterr().err == ""
