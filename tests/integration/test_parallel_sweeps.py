"""The parallel sweep executor: determinism, ordering, worker resolution.

The invariant the drivers rely on: a sweep aggregates identical numbers
whether it runs serially, in a process pool, or re-runs one index alone
-- per-run seeds are derived, never drawn from shared state.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import coin_success
from repro.experiments.parallel import (
    chunk_counts,
    derive_sweep_seeds,
    parallel_map,
    resolve_workers,
)


def _square(x: int) -> int:
    return x * x


def _add(x: int, y: int) -> int:
    return x + y


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_nonpositive_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(-2) == (os.cpu_count() or 1)

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers() == 1


class TestDeriveSweepSeeds:
    def test_deterministic_and_distinct(self):
        a = derive_sweep_seeds(42, 10, "e3", 0.01)
        b = derive_sweep_seeds(42, 10, "e3", 0.01)
        assert a == b
        assert len(set(a)) == 10

    def test_labels_and_root_separate_streams(self):
        assert derive_sweep_seeds(42, 5, "x") != derive_sweep_seeds(42, 5, "y")
        assert derive_sweep_seeds(1, 5, "x") != derive_sweep_seeds(2, 5, "x")

    def test_prefix_stability(self):
        # Growing a sweep keeps the existing runs' seeds.
        assert derive_sweep_seeds(7, 3, "e1") == derive_sweep_seeds(7, 6, "e1")[:3]


class TestParallelMap:
    def test_serial_matches_input_order(self):
        assert parallel_map(_square, [(i,) for i in range(6)]) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_pool_matches_serial(self):
        jobs = [(i, 10 * i) for i in range(8)]
        serial = parallel_map(_add, jobs, workers=1)
        pooled = parallel_map(_add, jobs, workers=2)
        assert pooled == serial

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_job_runs_inline(self):
        assert parallel_map(_square, [(9,)], workers=8) == [81]


class TestChunkCounts:
    def test_sums_and_balance(self):
        for total in (0, 1, 7, 16):
            for parts in (1, 2, 5):
                chunks = chunk_counts(total, parts)
                assert sum(chunks) == total
                if chunks:
                    assert max(chunks) - min(chunks) <= 1
                    assert all(c > 0 for c in chunks)


class TestDriverEquivalence:
    def test_coin_success_point_is_worker_count_invariant(self):
        serial = coin_success.run_point(8, 0, range(4), workers=1)
        pooled = coin_success.run_point(8, 0, range(4), workers=2)
        assert serial == pooled
