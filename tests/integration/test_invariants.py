"""Cross-protocol invariants, enforced uniformly through the registry.

Every protocol in the harness must satisfy kernel-level conservation and
determinism properties regardless of its internal structure; violations
here have historically meant kernel bugs, not protocol bugs.
"""

from __future__ import annotations

import pytest

from repro.experiments.protocols import PROTOCOLS, make_runner
from repro.sim.runner import run_protocol, stop_when_all_decided

SMOKE_N = 16


def run_once(name: str, seed: int, stop=stop_when_all_decided):
    factory, params, f = make_runner(name, SMOKE_N, seed=seed)
    return run_protocol(
        SMOKE_N, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop, seed=seed,
    )


@pytest.mark.parametrize("name", PROTOCOLS)
class TestPerProtocolInvariants:
    def test_deterministic_under_seed(self, name):
        a = run_once(name, seed=3)
        b = run_once(name, seed=3)
        assert a.decisions == b.decisions
        assert a.words == b.words
        assert a.deliveries == b.deliveries

    def test_different_seeds_differ_somewhere(self, name):
        a = run_once(name, seed=4)
        b = run_once(name, seed=5)
        # Different keys + scheduling: byte-identical runs would indicate
        # a seed-plumbing bug.
        assert (a.deliveries, a.words) != (b.deliveries, b.words)

    def test_safety_and_liveness(self, name):
        result = run_once(name, seed=6)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        assert result.decided_values <= {0, 1}

    def test_byzantine_words_never_counted(self, name):
        result = run_once(name, seed=7)
        assert result.metrics.words_correct <= result.metrics.words_total
        assert (
            result.metrics.messages_sent_correct
            <= result.metrics.messages_sent_total
        )

    def test_causal_depth_bounded_by_deliveries(self, name):
        result = run_once(name, seed=8)
        assert 0 < result.duration <= result.deliveries

    def test_decision_rounds_recorded(self, name):
        result = run_once(name, seed=9)
        recorded = [
            notes["decision_round"]
            for notes in result.notes.values()
            if "decision_round" in notes
        ]
        assert recorded  # every protocol notes its deciding round
        assert all(r >= 0 for r in recorded)


class TestStopConditionIndependence:
    @pytest.mark.parametrize("name", ["mmr", "cachin", "whp_ba"])
    def test_decisions_identical_regardless_of_when_we_stop(self, name):
        """Letting the run continue past all-decided must not change any
        decision (irrevocability surfacing at the harness level)."""
        early = run_once(name, seed=10)

        decided_runs = {"count": 0}

        def stop_later(simulation):
            if all(
                pid in simulation.decided for pid in simulation.correct_pids
            ):
                decided_runs["count"] += 1
                return decided_runs["count"] > 2000  # run on for a while
            return False

        late = run_once(name, seed=10, stop=stop_later)
        assert early.decisions.items() <= late.decisions.items()
