"""The degradation observatory: scenario zoo + lossy-rate sweep curves.

End-to-end coverage for DESIGN.md section 14: every zoo scenario is
recordable and replayable by name, a scenario name's ``@rate`` suffix
round-trips through a recording header, the sweep is deterministic and
estimates a knee, the CLI wires it all together (including the failing
cell exports ``repro explain`` consumes), the dashboard renders the
curve panel, and a zoo recording is accepted as a fuzzer seed.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.degradation import (
    format_degradation,
    smoke_degradation,
    sweep_degradation,
)
from repro.experiments.forensics import explain_recording
from repro.experiments.report import record_run
from repro.experiments.scenarios import (
    SCENARIOS,
    describe_scenarios,
    is_scenario,
    make_scenario,
    parse_scenario_name,
)
from repro.sim.flightrecorder import load_recording

N = 8  # smallest n with feasible whp_ba committee parameters


@pytest.fixture(scope="module")
def smoke_payload():
    return smoke_degradation()


@pytest.fixture(scope="module")
def lossy_recording(tmp_path_factory):
    """One recorded swept cell: lossy_uniform pinned at rate 0.1."""
    out = tmp_path_factory.mktemp("zoo") / "flight_lossy.jsonl"
    path, result = record_run(
        out, name="lossy_uniform@0.1", n=N, seed=0,
        profile=False, telemetry=False,
    )
    return path, result


class TestScenarioZoo:
    def test_registry_is_self_describing(self):
        assert set(SCENARIOS) >= {
            "byz_split", "lossy_uniform", "targeted_committee_drop",
            "coin_partition", "dup_storm", "reorder_heavy",
        }
        listing = describe_scenarios()
        for name in SCENARIOS:
            assert name in listing

    def test_unknown_scenario_error_carries_the_listing(self):
        with pytest.raises(ValueError) as excinfo:
            make_scenario("nope", N)
        message = str(excinfo.value)
        for name in SCENARIOS:
            assert name in message

    def test_parse_scenario_name(self):
        assert parse_scenario_name("lossy_uniform") == ("lossy_uniform", None)
        assert parse_scenario_name("lossy_uniform@0.1") == ("lossy_uniform", 0.1)
        with pytest.raises(ValueError):
            parse_scenario_name("lossy_uniform@lots")
        with pytest.raises(ValueError):
            parse_scenario_name("lossy_uniform@1.5")
        assert is_scenario("dup_storm@0.2")
        assert not is_scenario("whp_ba")

    def test_explicit_rate_wins_over_suffix(self):
        spec = make_scenario("lossy_uniform@0.1", N, rate=0.2)
        assert spec.rate == 0.2
        assert spec.name == "lossy_uniform@0.2"
        # The default rate produces the bare name (recordings of the
        # default cell need no suffix to replay right).
        assert make_scenario("lossy_uniform", N).name == "lossy_uniform"

    def test_every_scenario_records(self, tmp_path):
        for name in SCENARIOS:
            path, result = record_run(
                tmp_path / f"flight_{name}.jsonl", name=name, n=N, seed=0,
                profile=False, telemetry=False,
            )
            assert path.exists()
            assert result.deliveries > 0
            header = load_recording(path).header
            # byz_split's default rate is 0 -> bare name; the rest record
            # under their default-rate bare names too.
            assert header["protocol"] == name

    def test_rate_suffix_round_trips_and_replays(self, lossy_recording):
        path, _ = lossy_recording
        assert load_recording(path).header["protocol"] == "lossy_uniform@0.1"
        payload = explain_recording(path, minimize=False)
        assert payload["protocol"] == "lossy_uniform@0.1"
        # Seq-exact replay rebuilt the same lossy config from the name:
        # the event logs (including fault effects) match bit for bit.
        assert payload["replay_identical"] is True


class TestSweep:
    def test_smoke_sweep_is_deterministic(self, smoke_payload):
        twin = smoke_degradation()
        assert json.dumps(smoke_payload, sort_keys=True) == json.dumps(
            twin, sort_keys=True
        )

    def test_healthy_origin_and_knee(self, smoke_payload):
        origin = smoke_payload["points"][0]
        assert origin["rate"] == 0.0
        assert origin["decide_rate"] == 1.0
        assert origin["link_faults"] == {
            "drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0,
        }
        low, high = origin["decide_rate_interval"]
        assert 0.0 <= low <= origin["decide_rate"] <= high <= 1.0
        # At rate 0.3 the smoke sweep's runs all deadlock: the knee lands
        # on the first sub-threshold point.
        knee = smoke_payload["knee"]
        assert knee is not None and knee["rate"] == 0.3
        assert knee["decide_rate"] < smoke_payload["threshold"]
        assert "knee" in format_degradation(smoke_payload)

    def test_exports_failing_cells_for_explain(self, tmp_path):
        payload = sweep_degradation(
            scenario="lossy_uniform", n=N, rates=(0.3,), seeds=1,
            export_dir=tmp_path,
        )
        assert payload["exports"] == ["cell_lossy_uniform_r0.3_s0.jsonl"]
        cell = tmp_path / payload["exports"][0]
        assert load_recording(cell).header["protocol"] == "lossy_uniform@0.3"
        explained = explain_recording(cell, minimize=False)
        assert explained["replay_identical"] is True

    def test_rejects_zero_seeds(self):
        with pytest.raises(ValueError):
            sweep_degradation(seeds=0)


class TestCLI:
    def test_degrade_writes_curve_artifact(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main([
            "degrade", "--scenario", "lossy_uniform",
            "--rates", "0,0.3", "--seeds", "2", "--n", str(N),
        ]) == 0
        out = capsys.readouterr().out
        assert "knee: rate 0.3" in out
        artifact = tmp_path / "degradation_lossy_uniform.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["kind"] == "degradation"
        assert [point["rate"] for point in payload["points"]] == [0.0, 0.3]
        cells = tmp_path / "degradation_lossy_uniform_cells"
        assert any(cells.glob("cell_*.jsonl"))

    def test_degrade_rejects_bad_rates(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["degrade", "--rates", "0,lots"])
        assert "comma-separated" in str(excinfo.value)

    def test_record_unknown_protocol_lists_the_zoo(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["record", "--protocol", "nope", "--n", str(N)])
        message = str(excinfo.value)
        assert "unknown" in message
        for name in SCENARIOS:
            assert name in message

    def test_report_shows_link_fault_section(self, lossy_recording, capsys):
        path, _ = lossy_recording
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "link faults (lossy model)" in out
        assert "sent by correct" in out
        assert "drops" in out


class TestDashboard:
    def test_renders_degradation_panel(self, smoke_payload):
        from repro.experiments.dashboard import build_dashboard

        html, _ = build_dashboard(
            degradation=smoke_payload,
            degradation_path="degradation_lossy_uniform.json",
        )
        assert "Degradation curves" in html
        assert "knee 0.3" in html

    def test_degrades_to_diagnostic_without_a_sweep(self, tmp_path):
        from repro.experiments.dashboard import build_dashboard
        from repro.experiments.trends import TrendStore

        html, diagnostics = build_dashboard(
            store=TrendStore(tmp_path / "BENCH_trends.jsonl")
        )
        assert "no degradation sweep" in html
        assert any("degrad" in note for note in diagnostics)


class TestFuzzSeeding:
    def test_zoo_recording_accepted_as_fuzz_seed(self, lossy_recording, tmp_path):
        from repro.experiments.fuzzing import fuzz_recording

        path, _ = lossy_recording
        payload = fuzz_recording(
            path, budget=6, atlas_root=tmp_path,
            out=str(tmp_path / "corpus.json"),
        )
        # The lossy seed replays clean (its faults are part of the
        # baseline run, not violations) and fuzzing from it stays green.
        assert payload["baseline_violations"] == []
        assert payload["ok"] is True
        assert payload["realizable"] + payload["unrealizable"] + payload[
            "skipped"
        ] == 6
