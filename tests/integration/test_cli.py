"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["pbft"])

    def test_e1_tiny(self, capsys):
        assert main(["e1", "--n", "10", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert "agreement rate" in out

    def test_e6_quick(self, capsys):
        assert main(["e6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "content-aware" in out

    def test_f1_tiny(self, capsys):
        assert main(["f1", "--n", "60", "--seeds", "3"]) == 0
        assert "committee" in capsys.readouterr().out

    def test_record_then_report(self, capsys, tmp_path):
        out = str(tmp_path / "flight.jsonl")
        assert main(["record", "--n", "16", "--seed", "2", "--out", out]) == 0
        recorded = capsys.readouterr().out
        assert "recorded" in recorded and out in recorded

        assert main(["report", out]) == 0
        report = capsys.readouterr().out
        for section in (
            "round timeline",
            "word complexity by kind / layer",
            "coin",
            "committee sizes (observed)",
            "phase timings",
            "critical path (deepest decision)",
        ):
            assert section in report
        assert "DECIDES" in report

    def test_report_without_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["report"])
