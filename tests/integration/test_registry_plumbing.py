"""make_runner plumbing: value functions, round bounds, sigma overrides."""

from __future__ import annotations

from repro.experiments.protocols import make_runner
from repro.sim.runner import run_protocol, stop_when_all_decided


class TestValueFnPlumbing:
    def test_unanimous_value_fn_reaches_protocol(self):
        factory, params, f = make_runner(
            "mmr", 13, seed=1, value_fn=lambda ctx: 1
        )
        result = run_protocol(
            13, f, factory, corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=1,
        )
        assert result.decided_values == {1}

    def test_max_rounds_reaches_protocol(self):
        factory, params, f = make_runner(
            "benor", 13, seed=2, max_rounds=1, value_fn=lambda ctx: ctx.pid % 2
        )
        result = run_protocol(
            13, f, factory, corrupt=set(range(f)), params=params, seed=2,
        )
        # One Ben-Or round on split inputs: everyone returns (mostly
        # undecided), nobody blocks.
        assert result.live
        assert len(result.returns) == 13 - f


class TestSigmaOverride:
    def test_whp_sigmas_changes_thresholds(self):
        _, loose, _ = make_runner("whp_ba", 200, f=2, whp_sigmas=3.0)
        _, tight, _ = make_runner("whp_ba", 200, f=2, whp_sigmas=4.0)
        # More sigmas -> smaller d -> W closer to the committee mean, and
        # (often) a larger lambda; either way the margin must widen.
        loose_margin = (200 - 2) * loose.sample_probability - loose.committee_quorum
        tight_margin = (200 - 2) * tight.sample_probability - tight.committee_quorum
        assert tight_margin >= loose_margin

    def test_sigma_ignored_for_baselines(self):
        _, a, _ = make_runner("mmr", 20, whp_sigmas=3.0)
        _, b, _ = make_runner("mmr", 20, whp_sigmas=4.0)
        assert a == b


class TestDealerDeterminism:
    def test_same_seed_same_dealer_coin(self):
        results = []
        for _ in range(2):
            factory, params, f = make_runner("rabin", 22, seed=9)
            result = run_protocol(
                22, f, factory, corrupt=set(range(f)), params=params,
                stop_condition=stop_when_all_decided, seed=9,
            )
            results.append(result.decided_values)
        assert results[0] == results[1]
